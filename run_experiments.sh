#!/bin/bash
# Regenerates every table and figure; tee'd into results/*.txt.
set -u
cd "$(dirname "$0")"
SHRINK="${1:-2}"
mkdir -p results
for bin in table1 table2 table3 fig5 fig6_7 fig8 table4 table5 fig9 ablations make_report; do
  echo "=== $bin (shrink $SHRINK) ==="
  ./target/release/$bin --shrink "$SHRINK" --seeds 11,22 > "results/$bin.txt" 2> "results/$bin.log"
  echo "--- done $bin ($(date +%H:%M:%S))"
done
echo ALL_DONE
