//! Offline vendored shim for `rand_chacha` 0.3: a bit-compatible
//! [`ChaCha8Rng`] (plus the 12- and 20-round variants for completeness).
//!
//! Compatibility notes (all verified against the upstream design):
//!
//! * The core is D. J. Bernstein's original ChaCha variant: a 64-bit block
//!   counter in state words 12–13 and a 64-bit stream id in words 14–15
//!   (both zero for `from_seed`).
//! * The upstream implementation (via `ppv-lite86`) refills **four blocks
//!   at a time**, so the `BlockRng` buffer is 64 u32 words. This matters
//!   for bit-compatibility of `next_u64` calls that straddle a refill:
//!   the straddle happens at word 63→64, not 15→16.
//! * `next_u32`/`next_u64` follow rand_core 0.6 `BlockRng` semantics:
//!   `next_u64` at the last buffered word consumes that word as the low
//!   half and word 0 of the fresh buffer as the high half.
//!
//! The ChaCha quarter-round and block function are pinned by the RFC 7539
//! test vectors in the test module below.

use rand::{RngCore, SeedableRng};

const BUF_WORDS: usize = 64; // four 16-word ChaCha blocks per refill
const BLOCKS_PER_REFILL: u64 = 4;

/// A ChaCha RNG with a const number of double rounds.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter for the *next* refill.
    counter: u64,
    /// 64-bit stream id (state words 14..15).
    stream: u64,
    /// Buffered output words.
    buf: [u32; BUF_WORDS],
    /// Next unread index into `buf`; `BUF_WORDS` means empty.
    index: usize,
}

/// ChaCha with 8 rounds (4 double rounds) — the repository's standard RNG.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: input state → 16 output words.
fn chacha_block<const DOUBLE_ROUNDS: usize>(input: &[u32; 16]) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..DOUBLE_ROUNDS {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (xi, ii) in x.iter_mut().zip(input.iter()) {
        *xi = xi.wrapping_add(*ii);
    }
    x
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    /// Refills the 4-block buffer at the current counter.
    fn refill(&mut self) {
        for blk in 0..BLOCKS_PER_REFILL {
            let ctr = self.counter.wrapping_add(blk);
            let input: [u32; 16] = [
                SIGMA[0],
                SIGMA[1],
                SIGMA[2],
                SIGMA[3],
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                ctr as u32,
                (ctr >> 32) as u32,
                self.stream as u32,
                (self.stream >> 32) as u32,
            ];
            let out = chacha_block::<DOUBLE_ROUNDS>(&input);
            self.buf[blk as usize * 16..(blk as usize + 1) * 16].copy_from_slice(&out);
        }
        self.counter = self.counter.wrapping_add(BLOCKS_PER_REFILL);
    }

    /// Refills and positions the read index (rand_core's
    /// `generate_and_set`).
    fn refill_and_set(&mut self, index: usize) {
        self.refill();
        self.index = index;
    }

    /// The stream id (always 0 for `from_seed`).
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Selects a different stream (resets buffered output).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = BUF_WORDS;
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaRng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill_and_set(0);
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core 0.6 BlockRng::next_u64 semantics.
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
        } else if index == BUF_WORDS - 1 {
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.refill_and_set(1);
            (u64::from(self.buf[0]) << 32) | lo
        } else {
            self.refill_and_set(2);
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // rand_core BlockRng::fill_bytes: consume whole words, little-endian.
        let mut read = 0;
        while read < dest.len() {
            if self.index >= BUF_WORDS {
                self.refill_and_set(0);
            }
            let word = self.buf[self.index].to_le_bytes();
            let n = (dest.len() - read).min(4);
            dest[read..read + n].copy_from_slice(&word[..n]);
            self.index += 1;
            read += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// RFC 7539 §2.1.1 quarter-round test vector.
    #[test]
    fn rfc7539_quarter_round() {
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    /// RFC 7539 §2.3.2 ChaCha20 block function test vector, mapped onto
    /// the djb state layout (counter ∥ nonce occupy words 12..16 in both).
    #[test]
    fn rfc7539_chacha20_block() {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&SIGMA);
        for i in 0..8 {
            let b = [
                (4 * i) as u8,
                (4 * i + 1) as u8,
                (4 * i + 2) as u8,
                (4 * i + 3) as u8,
            ];
            input[4 + i] = u32::from_le_bytes(b);
        }
        input[12] = 1; // counter
        input[13] = u32::from_le_bytes([0x00, 0x00, 0x00, 0x09]);
        input[14] = u32::from_le_bytes([0x00, 0x00, 0x00, 0x4a]);
        input[15] = 0;
        let out = chacha_block::<10>(&input);
        let expect: [u32; 16] = [
            0xe4e7_f110,
            0x1559_3bd1,
            0x1fdd_0f50,
            0xc471_20a3,
            0xc7f4_d1c7,
            0x0368_c033,
            0x9aaa_2204,
            0x4e6c_d4c3,
            0x4664_82d2,
            0x09aa_9f07,
            0x05d7_c214,
            0xa202_8bd9,
            0xd19c_12b5,
            0xb94e_16de,
            0xe883_d0cb,
            0x4e3c_50a2,
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn u32_u64_word_sharing_matches_blockrng() {
        // Consume 63 u32s, then a u64: it must take word 63 as the low
        // half and word 0 of the next refill as the high half.
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let words: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let mut b = ChaCha8Rng::seed_from_u64(3);
        let next_word = {
            let mut t = ChaCha8Rng::seed_from_u64(3);
            for _ in 0..64 {
                t.next_u32();
            }
            t.next_u32()
        };
        for _ in 0..63 {
            b.next_u32();
        }
        let v = b.next_u64();
        assert_eq!(v as u32, words[63]);
        assert_eq!((v >> 32) as u32, next_word);
    }

    #[test]
    fn gen_f64_in_unit_range() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            let w = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&w));
        }
    }
}
