//! Offline vendored shim for the `bytes` crate: the `Buf`/`BufMut`/
//! `Bytes`/`BytesMut` subset used by the binary CSR container. Plain
//! `Vec<u8>`-backed — no refcounted slabs — which is fine for the
//! file-serialization use here.

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Current readable slice.
    fn chunk(&self) -> &[u8];
    /// Advances the read cursor.
    fn advance(&mut self, cnt: usize);

    /// Copies exactly `dst.len()` bytes out.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    /// Little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Big-endian u32 (for completeness).
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// One byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// Write-side byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// One byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// Growable byte buffer (the mutable builder).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer with an internal read cursor (sufficient for the
/// `impl Buf` consumers here).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Vec::new(),
            pos: 0,
        }
    }

    /// Copies from a slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Sub-slice by byte range (indices relative to the unread portion).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let all = self.as_ref();
        let start = match range.start_bound() {
            std::ops::Bound::Included(&i) => i,
            std::ops::Bound::Excluded(&i) => i + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&i) => i + 1,
            std::ops::Bound::Excluded(&i) => i,
            std::ops::Bound::Unbounded => all.len(),
        };
        Bytes {
            data: all[start..end].to_vec(),
            pos: 0,
        }
    }

    /// Length in bytes (unread portion).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.pos += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"HDR!");
        b.put_u64_le(77);
        b.put_u32_le(5);
        b.put_f64_le(1.5);
        let frozen = b.freeze();
        let mut r: &[u8] = frozen.as_ref();
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u64_le(), 77);
        assert_eq!(r.get_u32_le(), 5);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_implements_buf_directly() {
        let mut b = BytesMut::new();
        b.put_u32_le(9);
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 4);
        assert_eq!(frozen.get_u32_le(), 9);
        assert_eq!(frozen.remaining(), 0);
    }
}
