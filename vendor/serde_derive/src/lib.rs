//! Offline vendored shim for `serde_derive`: `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` for the serde *shim* (value-tree model), built
//! without `syn`/`quote` by walking the raw `TokenStream`.
//!
//! Supported input shapes — exactly what this workspace derives on:
//!
//! * structs with named fields, no generics, no `#[serde(..)]` attributes;
//! * enums whose variants are unit or have named fields (externally-tagged
//!   representation, like upstream serde's default).
//!
//! Anything else panics at compile time with a clear message, which is the
//! right failure mode for a vendored shim: loud, at build time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

enum Body {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

/// Consumes leading `#[...]` attributes and visibility modifiers.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 2,
                _ => panic!("serde_derive shim: `#` not followed by an attribute"),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses `name: Type` fields from a brace-group body, returning the names.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field name, got `{other}`"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_enum_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got `{other}`"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple variant `{name}` is unsupported")
            }
            _ => None,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is unsupported");
        }
    }
    let body_group = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("serde_derive shim: `{name}` must have a braced body (named fields)"),
    };
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(body_group)),
        "enum" => Body::Enum(parse_enum_variants(body_group)),
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    };
    Item { name, body }
}

/// `#[derive(Serialize)]` — generates a `serde::Serialize` (shim) impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vn} => \
                             serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Some(fields) => {
                            let pat = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {pat} }} => serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let code = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    );
    code.parse()
        .expect("serde_derive shim: generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` — generates a `serde::Deserialize` (shim) impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::get_field(__m, \"{f}\")?)?")
                })
                .collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                     serde::Error::custom(\"expected map for {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let struct_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (&v.name, fields)))
                .map(|(vn, fields)| {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: serde::Deserialize::from_value(\
                                 serde::get_field(__m, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "\"{vn}\" => {{\n\
                             let __m = __inner.as_map().ok_or_else(|| \
                                 serde::Error::custom(\"expected map body for {name}::{vn}\"))?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{ {} }})\n\
                         }}",
                        inits.join(", ")
                    )
                })
                .collect();
            let str_arm = format!(
                "serde::Value::Str(__s) => match __s.as_str() {{\n\
                     {}\n\
                     __other => ::core::result::Result::Err(serde::Error::custom(\
                         format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},",
                unit_arms.join("\n")
            );
            let map_arm = if struct_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => ::core::result::Result::Err(serde::Error::custom(\
                                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }},",
                    struct_arms.join("\n")
                )
            };
            format!(
                "match __v {{\n\
                     {str_arm}\n\
                     {map_arm}\n\
                     __other => ::core::result::Result::Err(serde::Error::custom(\
                         format!(\"expected enum {name}, got {{__other:?}}\"))),\n\
                 }}"
            )
        }
    };
    let code = format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> \
                 ::core::result::Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    );
    code.parse()
        .expect("serde_derive shim: generated Deserialize impl parses")
}
