//! Offline vendored shim for `proptest`: the subset this workspace's
//! property tests use — `proptest!`, range/tuple/`collection::vec`/
//! `bool::ANY` strategies, `prop_map`/`prop_flat_map`, the `prop_assert*`
//! and `prop_assume!` macros, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberate for an offline test shim:
//!
//! * No shrinking. A failing case reports its inputs via the assertion
//!   message and the (deterministic) case seed instead of a minimized
//!   reproduction.
//! * Generation is driven by a fixed splitmix64 stream keyed on the test
//!   name and case index, so every run explores the same cases — failures
//!   reproduce without a persistence file.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the deterministic RNG stream.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then draws from the strategy
        /// `f` builds from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn new_value(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u128) - (self.start as u128);
                    self.start + (rng.next_u64() as u128 % width) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let width = (*self.end() as u128) - (*self.start() as u128) + 1;
                    self.start() + (rng.next_u64() as u128 % width) as $ty
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = self.start + frac * (self.end - self.start);
            v.min(self.end - f64::EPSILON * self.end.abs().max(1.0))
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            let wide = (self.start as f64)..(self.end as f64);
            wide.new_value(rng) as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! `proptest::collection::vec` — random-length vectors.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = self.size.max - self.size.min + 1;
            let len = self.size.min + (rng.next_u64() as usize % width);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates `Vec`s with lengths in `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    //! `proptest::bool::ANY`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner and its RNG.

    /// Per-test configuration (`cases` is the only knob this shim honors).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — skip the case, draw another.
        Reject(String),
        /// `prop_assert*` failed — the property is violated.
        Fail(String),
    }

    /// Deterministic generation stream (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one (test, case) pair.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    fn name_seed(name: &str) -> u64 {
        // FNV-1a, just to decorrelate streams across properties.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runs `f` until `config.cases` cases pass; panics on the first
    /// failing case or when rejection (via `prop_assume!`) starves the run.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = name_seed(name);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let max_rejects = config.cases.saturating_mul(20).max(1000);
        let mut case: u64 = 0;
        while passed < config.cases {
            let mut rng = TestRng::new(base ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d));
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected} rejects for {passed} passes)"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case seed {case}: {msg}");
                }
            }
            case += 1;
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: an optional `#![proptest_config(..)]` followed
/// by `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..2000 {
            let v = (3usize..17).new_value(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5u64..=5).new_value(&mut rng);
            assert_eq!(w, 5);
            let f = (-2.0f64..3.0).new_value(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let v = crate::collection::vec(0u32..10, 2..6).new_value(&mut rng);
            assert!((2..=5).contains(&v.len()));
            let w = crate::collection::vec(0u32..10, 4usize..=4).new_value(&mut rng);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (1usize..9)
            .prop_flat_map(|n| crate::collection::vec(0u32..100, n..=n).prop_map(move |v| (n, v)));
        let a = strat.new_value(&mut TestRng::new(42));
        let b = strat.new_value(&mut TestRng::new(42));
        assert_eq!(a, b);
        assert_eq!(a.0, a.1.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline itself: patterns, tuples, assume, asserts.
        #[test]
        fn macro_roundtrip((a, b) in (0u32..50, 0u32..50), flip in crate::bool::ANY) {
            prop_assume!(a != 49 || b != 49);
            let sum = a + b;
            prop_assert!(sum < 100, "{a} + {b} overflowed the bound");
            prop_assert_eq!(sum, b + a);
            if flip {
                prop_assert_ne!(sum + 1, sum);
            }
        }
    }
}
