//! Offline vendored shim for `serde_json`: `to_string` / `from_str` over
//! the serde shim's [`serde::Value`] tree. Emits standard JSON (struct
//! field order preserved, floats via Rust's shortest round-trip `Display`
//! with a `.0` suffix for integral values) and parses the full JSON
//! grammar including escapes and scientific notation, so anything this
//! shim writes it can read back losslessly.

pub use serde::Error;
use serde::Value;

/// Serializes a value as a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(x) => render_f64(*x, out),
        Value::Str(s) => render_str(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_str(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

fn render_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        // Upstream serde_json errors on non-finite floats; for the
        // experiment rows here, null is the pragmatic stand-in (read back
        // as NaN by the f64 Deserialize impl).
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("bad unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("bad unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
                .and_then(|u| {
                    i64::try_from(u)
                        .map(|i| Value::I64(-i))
                        .map_err(|_| Error::custom(format!("number `{text}` out of range")))
                })
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&5.0f64).unwrap(), "5.0");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u32>(" 17 ").unwrap(), 17);
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
        assert_eq!(from_str::<f64>("1e-3").unwrap(), 1e-3);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("7").unwrap(), 7.0);
        assert_eq!(from_str::<Vec<u64>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(from_str::<String>("\"h\\u0069\"").unwrap(), "hi");
    }

    #[test]
    fn float_roundtrip_is_lossless() {
        for &x in &[0.0, -0.0, 1.5e-300, std::f64::consts::PI, 1e16, 123456.75] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
