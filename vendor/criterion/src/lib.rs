//! Offline vendored shim for `criterion`: real wall-clock measurement
//! behind criterion's macro/API surface (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `BenchmarkId`, `Throughput`).
//!
//! Reporting is deliberately simple: each benchmark prints its median
//! time per iteration (and throughput when configured) to stdout. The
//! `--test` flag (as in `cargo bench -- --test`) switches to a smoke run
//! that executes each benchmark body once — the CI mode. Positional
//! arguments act as substring filters on `group/name`, like criterion.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// A parameter-only id (used inside parameterized groups upstream).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Median duration of one iteration, filled by `iter`.
    median: Option<Duration>,
    samples: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, storing the median over several multi-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.median = Some(Duration::ZERO);
            self.samples = 1;
            self.iters_per_sample = 1;
            return;
        }
        // Calibrate: aim for ~10ms per sample, at least one iteration.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        self.median = Some(samples[samples.len() / 2]);
        self.samples = self.sample_size;
        self.iters_per_sample = iters;
    }
}

/// The top-level harness handle.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
}

impl Criterion {
    /// Builds from CLI arguments (`--test` = smoke mode; positional args
    /// filter benchmark ids by substring).
    pub fn from_args() -> Criterion {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/criterion conventionally pass; accept and
                // ignore so `cargo bench` invocations don't error out.
                "--bench" | "--verbose" | "--quiet" | "-n" | "--noplot" => {}
                s if s.starts_with('-') => {}
                s => filters.push(s.to_string()),
            }
        }
        Criterion { test_mode, filters }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, None, &id.id, None, 20, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            self.criterion,
            Some(&self.name),
            &id.id,
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group (formatting no-op in this shim).
    pub fn finish(&mut self) {}
}

fn run_one<F>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if !criterion.matches(&full) {
        return;
    }
    let mut b = Bencher {
        test_mode: criterion.test_mode,
        sample_size,
        median: None,
        samples: 0,
        iters_per_sample: 0,
    };
    f(&mut b);
    match b.median {
        None => println!("{full}: no measurement (closure never called iter)"),
        Some(_) if criterion.test_mode => println!("{full}: ok (smoke)"),
        Some(med) => {
            let ns = med.as_nanos();
            let rate = throughput.and_then(|t| {
                let secs = med.as_secs_f64();
                if secs <= 0.0 {
                    return None;
                }
                Some(match t {
                    Throughput::Elements(n) => format!(" ({:.3e} elem/s)", n as f64 / secs),
                    Throughput::Bytes(n) => format!(" ({:.3e} B/s)", n as f64 / secs),
                })
            });
            println!(
                "{full}: median {ns} ns/iter{} [{} samples x {} iters]",
                rate.unwrap_or_default(),
                b.samples,
                b.iters_per_sample
            );
        }
    }
}

/// Declares a benchmark group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export-style helper mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_smokes() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            median: None,
            samples: 0,
            iters_per_sample: 0,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            std::hint::black_box(count)
        });
        assert!(b.median.is_some());
        assert!(count > 0);

        let mut s = Bencher {
            test_mode: true,
            sample_size: 3,
            median: None,
            samples: 0,
            iters_per_sample: 0,
        };
        let mut ran = 0;
        s.iter(|| ran += 1);
        assert_eq!(ran, 1);
        assert_eq!(s.median, Some(Duration::ZERO));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("csr", 100).id, "csr/100");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
