//! Offline vendored shim for the `rand` crate (version 0.8 semantics).
//!
//! The build environment for this repository has no network access and no
//! crates-io mirror, so the real `rand` cannot be fetched. This shim
//! reimplements exactly the API subset the workspace uses, **bit-compatibly**
//! with rand 0.8.5 for every sampling algorithm involved:
//!
//! * `SeedableRng::seed_from_u64` — the PCG-based seed expansion of
//!   rand_core 0.6.
//! * `Rng::gen::<f64>()` — the 53-bit multiply-based `Standard` sampler.
//! * `Rng::gen::<u8>()` / `u32` / `u64` — low-word casts of `next_u32` /
//!   `next_u64`.
//! * `Rng::gen_range` on integer ranges — widening-multiply rejection with
//!   the `leading_zeros` zone, drawing one `u32` (types ≤ 32 bits) or one
//!   `u64` (64-bit types) per attempt.
//! * `Rng::gen_range` on `f64` ranges — the `[1, 2)` exponent-trick sampler
//!   (`bits >> 12` into the mantissa).
//! * `SliceRandom::shuffle` / `choose` — reverse Fisher–Yates over
//!   `seq::gen_index` (a `u32` draw whenever the bound fits, as upstream).
//!
//! Bit-compatibility matters because every generated graph (and therefore
//! every stored result under `results/`) depends on these streams; see
//! `vendor/README.md`.

/// The core RNG abstraction (rand_core 0.6 subset).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction (rand_core 0.6 subset).
pub trait SeedableRng: Sized {
    /// The fixed-size seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 sequence used by
    /// rand_core 0.6 (bit-identical).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the `Standard` distribution (rand 0.8 algorithms).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // Multiply-based [0, 1) with 53 bits of precision.
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}

impl StandardSample for u8 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl StandardSample for u16 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        (rng.next_u32() as i32) < 0
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_impl {
    // $ty: result type; $uty: its unsigned twin; $large: working draw type
    // (u32 for ≤32-bit types, u64 for 64-bit); $wide: 2x-width multiply.
    ($ty:ty, $uty:ty, $large:ty, $wide:ty, $draw:ident) => {
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let range = self.end.wrapping_sub(self.start) as $uty as $large;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $large = rng.$draw() as $large;
                    let wide = v as $wide * range as $wide;
                    let hi = (wide >> (<$large>::BITS)) as $large;
                    let lo = wide as $large;
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $ty);
                    }
                }
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo_b, hi_b) = (*self.start(), *self.end());
                assert!(lo_b <= hi_b, "empty inclusive range in gen_range");
                let range = (hi_b.wrapping_sub(lo_b) as $uty as $large).wrapping_add(1);
                if range == 0 {
                    // Full type range.
                    return rng.$draw() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $large = rng.$draw() as $large;
                    let wide = v as $wide * range as $wide;
                    let hi = (wide >> (<$large>::BITS)) as $large;
                    let lo = wide as $large;
                    if lo <= zone {
                        return lo_b.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u8, u8, u32, u64, next_u32);
uniform_int_impl!(u16, u16, u32, u64, next_u32);
uniform_int_impl!(u32, u32, u32, u64, next_u32);
uniform_int_impl!(u64, u64, u64, u128, next_u64);
uniform_int_impl!(usize, usize, u64, u128, next_u64);
uniform_int_impl!(i8, u8, u32, u64, next_u32);
uniform_int_impl!(i16, u16, u32, u64, next_u32);
uniform_int_impl!(i32, u32, u32, u64, next_u32);
uniform_int_impl!(i64, u64, u64, u128, next_u64);
uniform_int_impl!(isize, usize, u64, u128, next_u64);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range in gen_range");
        let scale = self.end - self.start;
        loop {
            // Mantissa trick: 52 random bits with exponent 0 → [1, 2).
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 range in gen_range");
        let scale = self.end - self.start;
        loop {
            let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

/// The user-facing sampling extension trait (rand 0.8 subset).
pub trait Rng: RngCore {
    /// Samples from the `Standard` distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw (rand 0.8: 64-bit integer threshold comparison).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        if p == 1.0 {
            self.next_u64();
            return true;
        }
        let p_int = (p * (1u128 << 64) as f64) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers (rand 0.8 `SliceRandom` subset).

    use super::{Rng, RngCore};

    /// rand 0.8's `seq::gen_index`: index draws go through a **u32**
    /// sample whenever the bound fits (which it always does here), not a
    /// `usize` one — a different word-consumption pattern, so matching it
    /// exactly is what keeps shuffles on the upstream stream.
    #[inline]
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle, bit-identical to rand 0.8
        /// (reverse iteration, `gen_index` draws).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }
}

pub mod distributions {
    //! Minimal distributions module for API compatibility.

    pub use super::StandardSample;

    /// Marker for the standard distribution.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;
}

pub mod rngs {
    //! Placeholder module (no `StdRng`/`ThreadRng` in the shim — the
    //! workspace pins all randomness to `ChaCha8Rng` for determinism).
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A replaying stub RNG for algorithm-shape tests.
    struct Fixed(Vec<u64>, usize);
    impl RngCore for Fixed {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let v = self.0[self.1 % self.0.len()];
            self.1 += 1;
            v
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn standard_f64_is_53_bit_multiply() {
        let mut r = Fixed(vec![u64::MAX], 0);
        let v: f64 = r.gen();
        assert_eq!(v, (((1u64 << 53) - 1) as f64) / (1u64 << 53) as f64);
        let mut r = Fixed(vec![0], 0);
        let v: f64 = r.gen();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn gen_range_int_uses_widening_multiply() {
        // v = 0 → hi = 0 → low end; v = MAX → hi = range-1 → high end.
        let mut r = Fixed(vec![0], 0);
        assert_eq!(r.gen_range(5usize..10), 5);
        // v = 2^64 - 2^61: wide = v*5 = 4*2^64 + 3*2^61, so lo = 3*2^61 is
        // inside the zone (5*2^61 - 1) and hi = 4 -> high end of the range.
        // (u64::MAX itself is *rejected* by the zone check - by design.)
        let mut r = Fixed(vec![u64::MAX - (1 << 61) + 1], 0);
        assert_eq!(r.gen_range(5usize..10), 9);
        let mut r = Fixed(vec![0], 0);
        assert_eq!(r.gen_range(3u32..7), 3);
    }

    #[test]
    fn f64_range_hits_bounds() {
        let mut r = Fixed(vec![0], 0);
        assert_eq!(r.gen_range(-1.0..1.0), -1.0);
        let mut r = Fixed(vec![u64::MAX], 0);
        let v = r.gen_range(-1.0..1.0);
        assert!(v < 1.0 && v > 0.999_999);
    }

    #[test]
    fn shuffle_is_reverse_fisher_yates() {
        let mut r = Fixed(vec![0], 0);
        let mut v = vec![1, 2, 3, 4];
        use super::seq::SliceRandom;
        v.shuffle(&mut r);
        // i=3: swap(3,0) → [4,2,3,1]; i=2: swap(2,0) → [3,2,4,1];
        // i=1: swap(1,0) → [2,3,4,1].
        assert_eq!(v, vec![2, 3, 4, 1]);
    }

    #[test]
    fn seed_from_u64_expansion_is_pcg32() {
        struct Cap([u8; 32]);
        impl RngCore for Cap {
            fn next_u32(&mut self) -> u32 {
                0
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
            fn fill_bytes(&mut self, _: &mut [u8]) {}
        }
        impl SeedableRng for Cap {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Cap {
                Cap(seed)
            }
        }
        let a = Cap::seed_from_u64(0);
        let b = Cap::seed_from_u64(0);
        let c = Cap::seed_from_u64(1);
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, c.0);
        let expect0 = {
            let state = 0u64
                .wrapping_mul(6364136223846793005)
                .wrapping_add(11634580027462260723);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            xorshifted.rotate_right((state >> 59) as u32)
        };
        assert_eq!(&a.0[..4], &expect0.to_le_bytes());
    }
}
