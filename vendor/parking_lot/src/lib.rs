//! Offline vendored shim for `parking_lot`: `Mutex`/`RwLock` with
//! parking_lot's poison-free `lock()`/`read()`/`write()` signatures,
//! implemented over `std::sync`. Declared in the workspace dependency
//! list; kept tiny until something actually needs more surface.

/// Poison-free mutex (panics while locked just propagate on next lock).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning like parking_lot does.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
