//! Offline vendored shim for `serde`: a value-tree serialization framework
//! covering exactly what this workspace needs — `#[derive(Serialize,
//! Deserialize)]` on plain structs and enums, plus `serde_json`
//! string round-trips.
//!
//! Instead of upstream's visitor-based zero-copy architecture, types
//! convert to/from a small [`Value`] tree and `serde_json` renders that
//! tree. The derive macros (in the sibling `serde_derive` shim) generate
//! `to_value`/`from_value` impls with serde's standard representations:
//! structs as maps, unit enum variants as strings, struct variants as
//! externally-tagged single-entry maps.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (parser only produces this for values < 0).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion (struct-field) order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }
}

/// (De)serialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a struct field in a decoded map.
pub fn get_field<'v>(map: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Mirror of `serde::de` for the `DeserializeOwned` bound.

    /// Marker for deserializable types with no borrowed data. Every type in
    /// this shim qualifies (the data model is owned).
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    //! Mirror of `serde::ser`.
    pub use super::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<$ty, Error> {
                let wide = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$ty>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::U64(i as u64)
                } else {
                    Value::I64(i)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<$ty, Error> {
                let wide: i64 = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected signed integer, got {other:?}"
                        )))
                    }
                };
                <$ty>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

/// `&'static str` fields (e.g. `Machine::name`) deserialize by leaking the
/// decoded string — the tiny per-parse leak is acceptable for the
/// experiment-row round-trips this repo does.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<&'static str, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        let s: &'static str = Deserialize::from_value(&Value::Str("cab".into())).unwrap();
        assert_eq!(s, "cab");
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(get_field(&[("a".to_string(), Value::Null)], "b").is_err());
    }
}
