//! Offline vendored shim for the `crossbeam` facade, implementing the
//! subset the workspace uses (`channel::unbounded` and `scope`) on top of
//! `std::sync::mpsc` and `std::thread::scope`. Behavioral, not
//! performance-tuned; the simulator only relies on the message-passing
//! contract, not on crossbeam's lock-free internals.

use std::any::Any;

pub mod channel {
    //! MPMC-ish channel subset (multi-producer, single-consumer is all the
    //! workspace needs; `Receiver` is also iterable like crossbeam's).

    use std::sync::mpsc;

    /// Sending half (clonable).
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error on send to a disconnected channel (mirrors crossbeam's).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; `Err` when the channel is empty and all
        /// senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                std::sync::mpsc::TryRecvError::Empty => TryRecvError::Empty,
                std::sync::mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Drains remaining messages until disconnect (like crossbeam's
        /// `into_iter`).
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.0.recv().ok())
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = std::sync::mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Error for [`Receiver::recv`] on a closed empty channel.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped-thread handle passed to the closure of [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle
    /// (crossbeam's signature) so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Crossbeam-style scope: runs `f` with a handle that can spawn scoped
/// threads; joins them all before returning. Returns `Err` if any spawned
/// thread panicked (capturing the payload), like crossbeam.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod thread {
    //! Alias module: `crossbeam::thread::scope` is the canonical path in
    //! crossbeam; re-export the facade implementation.
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip_multi_producer() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn scope_joins_and_collects() {
        let mut data = vec![0u64; 4];
        let res = scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 + 1);
            }
            42
        });
        assert_eq!(res.unwrap(), 42);
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn scope_reports_panics_as_err() {
        let res = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
