//! Determinism guarantees and failure-injection tests: the simulator must
//! refuse to mask broken plans, and every pipeline stage must be exactly
//! reproducible.

use std::sync::Arc;

use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{bter, rmat, BterConfig, RmatConfig};
use sf2d_core::sf2d_sim::route_sequential;
use sf2d_core::sf2d_spmv::CommPlan;

#[test]
fn full_pipeline_is_deterministic() {
    let run = || -> (Vec<f64>, f64) {
        let a = rmat(&RmatConfig::graph500(7), 21);
        let mut builder = LayoutBuilder::new(&a, 9);
        let dist = builder.dist(Method::TwoDGp, 8);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let x = DistVector::random(Arc::clone(&dm.vmap), 5);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(Machine::cab());
        spmv(&dm, &x, &mut y, &mut ledger);
        (y.to_global(), ledger.total)
    };
    let (y1, t1) = run();
    let (y2, t2) = run();
    assert_eq!(y1, y2, "bitwise-identical results required");
    assert_eq!(t1, t2);
}

#[test]
fn generators_stable_across_calls() {
    assert_eq!(
        bter(&BterConfig::paper(300, 30), 5),
        bter(&BterConfig::paper(300, 30), 5)
    );
    assert_eq!(
        rmat(&RmatConfig::graph500(8), 9),
        rmat(&RmatConfig::graph500(8), 9)
    );
}

#[test]
fn partition_cache_is_reused_not_recomputed_differently() {
    let a = rmat(&RmatConfig::graph500(7), 2);
    let mut b = LayoutBuilder::new(&a, 4);
    let first = b.dist(Method::TwoDGp, 8).rpart().to_vec();
    // Interleave other requests, then re-request: identical rpart.
    let _ = b.dist(Method::OneDRandom, 8);
    let _ = b.dist(Method::TwoDHp, 8);
    let second = b.dist(Method::OneDGp, 8).rpart().to_vec();
    assert_eq!(first, second);
}

#[test]
#[should_panic(expected = "invalid rank")]
fn router_rejects_out_of_range_destination() {
    route_sequential(2, vec![vec![(7, vec![1.0])], vec![]]);
}

#[test]
#[should_panic(expected = "one send list per rank")]
fn router_rejects_wrong_rank_count() {
    route_sequential(3, vec![vec![], vec![]]);
}

#[test]
#[should_panic(expected = "must be sorted")]
fn comm_plan_rejects_unsorted_needs() {
    // Debug builds verify the needed lists are sorted (binary-search
    // correctness depends on it).
    let d = MatrixDist::block_1d(10, 2);
    let map = sf2d_core::sf2d_spmv::VectorMap::from_dist(&d);
    let _ = CommPlan::gather(&[vec![7, 3], vec![]], &map);
}

#[test]
#[should_panic(expected = "layout dimension mismatch")]
fn dist_matrix_rejects_wrong_dimension_layout() {
    let a = rmat(&RmatConfig::graph500(6), 1);
    let d = MatrixDist::block_1d(a.nrows() + 5, 4);
    let _ = DistCsrMatrix::from_global(&a, &d);
}

#[test]
#[should_panic(expected = "length mismatch")]
fn dist_vector_rejects_wrong_length() {
    let d = MatrixDist::block_1d(10, 2);
    let map = Arc::new(sf2d_core::sf2d_spmv::VectorMap::from_dist(&d));
    let _ = DistVector::from_global(map, &[0.0; 7]);
}

#[test]
fn simulated_time_is_schedule_independent() {
    // The threaded router and the sequential router carry the same traffic;
    // the ledger, which is computed from the static plan, cannot differ.
    use sf2d_core::sf2d_sim::{route_threaded, RankMessage};
    let sends = |salt: u64| -> Vec<Vec<(u32, Vec<f64>)>> {
        (0..8u64)
            .map(|src| {
                (0..8u64)
                    .filter(|dst| (src * 3 + dst + salt).is_multiple_of(3) && *dst != src)
                    .map(|dst| (dst as u32, vec![src as f64, dst as f64]))
                    .collect()
            })
            .collect()
    };
    for salt in 0..5 {
        let a: Vec<Vec<RankMessage>> = route_sequential(8, sends(salt));
        let b: Vec<Vec<RankMessage>> = route_threaded(8, sends(salt));
        assert_eq!(a, b, "salt {salt}");
    }
}
