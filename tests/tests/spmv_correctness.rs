//! End-to-end correctness: distributed SpMV equals sequential SpMV for
//! every layout, every generator family, and randomized configurations.

use std::sync::Arc;

use proptest::prelude::*;
use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{bter, grid_2d, preferential_attachment, rmat, BterConfig, RmatConfig};

fn check_all_layouts(a: &CsrMatrix, p: usize, seed: u64) {
    let x_global: Vec<f64> = (0..a.nrows())
        .map(|i| ((i * 37 + 11) % 17) as f64 - 8.0)
        .collect();
    let want = a.spmv_dense(&x_global);
    let mut builder = LayoutBuilder::new(a, seed);
    let mut methods = Method::eigen_set(false);
    methods.push(Method::OneDHp);
    methods.push(Method::TwoDHp);
    for m in methods {
        let dist = builder.dist(m, p);
        let dm = DistCsrMatrix::from_global(a, &dist);
        let x = DistVector::from_global(Arc::clone(&dm.vmap), &x_global);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(Machine::cab());
        spmv(&dm, &x, &mut y, &mut ledger);
        let got = y.to_global();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                "{} p={p} row {i}: {g} vs {w}",
                m.name()
            );
        }
        // Every nonzero placed exactly once.
        assert_eq!(dm.nnz(), a.nnz(), "{}", m.name());
    }
}

#[test]
fn all_layouts_on_rmat() {
    let a = rmat(&RmatConfig::graph500(8), 5);
    for p in [2usize, 6, 16] {
        check_all_layouts(&a, p, 1);
    }
}

#[test]
fn all_layouts_on_bter() {
    let a = bter(&BterConfig::paper(400, 40), 3);
    check_all_layouts(&a, 8, 2);
}

#[test]
fn all_layouts_on_preferential_attachment() {
    let a = preferential_attachment(500, 3, 7);
    check_all_layouts(&a, 12, 3);
}

#[test]
fn all_layouts_on_mesh() {
    let a = grid_2d(20, 17);
    check_all_layouts(&a, 9, 4);
}

#[test]
fn more_ranks_than_rows() {
    let a = grid_2d(3, 4);
    check_all_layouts(&a, 24, 5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random symmetric matrices x random rank counts x both 2D variants.
    #[test]
    fn random_matrices_random_layouts(
        n in 4usize..40,
        p in 1usize..12,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..120),
        seed in 0u64..1000,
    ) {
        let mut coo = CooMatrix::new(n, n);
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            coo.push_sym(u, v, 1.0 + (u as f64) * 0.1);
        }
        let a = CsrMatrix::from_coo(&coo);
        let x_global: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let want = a.spmv_dense(&x_global);

        let (pr, pc) = grid_shape(p);
        for dist in [
            MatrixDist::block_1d(n, p),
            MatrixDist::random_1d(n, p, seed),
            MatrixDist::block_2d(n, pr, pc),
            MatrixDist::random_2d(n, pr, pc, seed),
            MatrixDist::random_2d(n, pr, pc, seed).interchanged(),
        ] {
            let dm = DistCsrMatrix::from_global(&a, &dist);
            let x = DistVector::from_global(Arc::clone(&dm.vmap), &x_global);
            let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
            let mut ledger = CostLedger::new(Machine::cab());
            spmv(&dm, &x, &mut y, &mut ledger);
            let got = y.to_global();
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()));
            }
        }
    }

    /// The 2D message bound pr + pc - 2 holds for every matrix and grid.
    #[test]
    fn two_d_message_bound_structural(
        n in 8usize..48,
        edges in proptest::collection::vec((0u32..48, 0u32..48), 1..200),
        pr in 1u32..5,
        pc in 1u32..5,
    ) {
        let mut coo = CooMatrix::new(n, n);
        for (u, v) in edges {
            coo.push_sym(u % n as u32, v % n as u32, 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let dist = MatrixDist::block_2d(n, pr, pc);
        let m = LayoutMetrics::compute(&a, &dist);
        prop_assert!(m.max_msgs() <= (pr + pc) as usize - 2 + usize::from(pr * pc == 1));
    }
}
