//! The paper's §6 nonsymmetric extension: directed matrices are
//! partitioned on the symmetrized pattern `A + Aᵀ` and distributed with
//! the same Algorithm 2 map. Verifies correctness and the message bound on
//! genuinely unsymmetric inputs.

use std::sync::Arc;

use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{chung_lu, powerlaw_degrees};
use sf2d_core::sf2d_graph::adjacency_to_pagerank;

/// A directed scale-free link matrix (each undirected proxy edge kept in
/// one direction only, chosen by parity).
fn directed_web(n: usize, edges: usize, seed: u64) -> CsrMatrix {
    let degs = powerlaw_degrees(n, 2.1, 2, n / 4, seed);
    let sym = chung_lu(&degs, edges, 50, 0.5, seed);
    let mut coo = CooMatrix::new(n, n);
    for (i, j, v) in sym.iter() {
        if (i as usize + j as usize) % 2 == (i < j) as usize {
            coo.push(i, j, v);
        }
    }
    CsrMatrix::from_coo(&coo)
}

#[test]
fn unsymmetric_spmv_matches_sequential_under_all_layouts() {
    let a = directed_web(400, 1500, 3);
    assert!(
        !a.is_structurally_symmetric(),
        "test needs a directed matrix"
    );
    let x_global: Vec<f64> = (0..a.nrows()).map(|i| ((i % 11) as f64) - 5.0).collect();
    let want = a.spmv_dense(&x_global);

    let mut builder = LayoutBuilder::new_unsymmetric(&a, 1);
    for m in [
        Method::OneDBlock,
        Method::OneDGp,
        Method::OneDHp,
        Method::TwoDBlock,
        Method::TwoDGp,
        Method::TwoDHp,
    ] {
        let dist = builder.dist(m, 9);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let x = DistVector::from_global(Arc::clone(&dm.vmap), &x_global);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut ledger = CostLedger::new(Machine::cab());
        spmv(&dm, &x, &mut y, &mut ledger);
        let got = y.to_global();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()), "{}", m.name());
        }
    }
}

#[test]
fn unsymmetric_two_d_keeps_message_bound() {
    let a = directed_web(500, 2500, 7);
    let mut builder = LayoutBuilder::new_unsymmetric(&a, 0);
    let dist = builder.dist(Method::TwoDGp, 16);
    let m = LayoutMetrics::compute(&a, &dist);
    assert!(m.max_msgs() <= 6, "msgs {} exceed pr+pc-2", m.max_msgs());
}

#[test]
fn pagerank_on_partitioned_directed_graph() {
    // End to end: directed links -> Google matrix -> 2D-GP layout from the
    // symmetrized pattern -> PageRank; ranks must sum to 1 and match the
    // 1D-Block reference bitwise-insensitively.
    let links = directed_web(300, 1200, 11);
    let p_matrix = adjacency_to_pagerank(&links).unwrap();
    let mut ranks = Vec::new();
    let mut builder = LayoutBuilder::new_unsymmetric(&p_matrix, 0);
    for m in [Method::OneDBlock, Method::TwoDGp] {
        let dist = builder.dist(m, 8);
        let dm = DistCsrMatrix::from_global(&p_matrix, &dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let res = sf2d_core::sf2d_eigen::pagerank(&dm, 0.85, 1e-10, 400, &mut ledger);
        let r = res.ranks.to_global();
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-8, "{}", m.name());
        ranks.push(r);
    }
    for (a, b) in ranks[0].iter().zip(&ranks[1]) {
        assert!((a - b).abs() < 1e-8);
    }
}
