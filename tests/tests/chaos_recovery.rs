//! The chaos battery: workspace-level properties of the fault-injection
//! engine (see `crates/chaos` and `sf2d_sim::fault`).
//!
//! * **Identity** — chaos at rate 0 is byte-identical to the plain
//!   runtime: same delivered values, same ledger totals, same superstep
//!   count, for sequential and threaded transports at p ∈ {4, 16, 64}.
//! * **Determinism** — a fixed (seed, rate) produces the identical fault
//!   schedule, costs, and recovered results for any transport thread
//!   count (the `SF2D_THREADS` independence guarantee).
//! * **Recovery** — a scripted drop + rank crash into the Table 3 SpMV
//!   cell recovers output matching the fault-free gold byte-for-byte,
//!   with the retransmission surcharge visible in the ledger's phase
//!   breakdown.
//! * **Serving** — the resident engine's batches ride the same chaos
//!   wire: rate 0 is byte-identical (replies *and* ledger) on the new
//!   spmv expand/fold wire paths, and a scripted drop + crash mid-batch
//!   heals to the fault-free bits with the crash replay itemized.

use std::sync::Arc;

use sf2d_core::prelude::*;
use sf2d_gen::{rmat, RmatConfig};
use sf2d_serve::{Engine, EngineConfig};
use sf2d_sim::sf2d_chaos::{FaultKind, FaultScript};
use sf2d_sim::{ChaosRuntime, Phase};
use sf2d_spmv::reference::spmv_ref;

fn dist_matrix(p: usize) -> DistCsrMatrix {
    let a = rmat(&RmatConfig::graph500(8), 3);
    let dist = LayoutBuilder::new(&a, 0).dist(Method::TwoDBlock, p);
    DistCsrMatrix::from_global(&a, &dist)
}

#[test]
fn rate_zero_spmv_is_byte_identical_to_plain_for_all_p() {
    for p in [4usize, 16, 64] {
        let dm = dist_matrix(p);
        let x = DistVector::random(Arc::clone(&dm.vmap), 5);
        let mut y_plain = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut led_plain = CostLedger::new(Machine::cab());
        spmv_ref(&dm, &x, &mut y_plain, &mut led_plain);

        for threads in [1usize, 8] {
            let mut rt = ChaosRuntime::seeded(0xFEED, 0.0).with_threads(threads);
            let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
            let mut ledger = CostLedger::new(Machine::cab());
            spmv_chaos(&dm, &x, &mut y, &mut ledger, &mut rt);
            assert_eq!(y.locals, y_plain.locals, "p={p} threads={threads}");
            assert_eq!(
                ledger.total.to_bits(),
                led_plain.total.to_bits(),
                "p={p} threads={threads}"
            );
            assert_eq!(ledger.steps, led_plain.steps, "p={p} threads={threads}");
            assert_eq!(
                ledger.by_phase, led_plain.by_phase,
                "p={p} threads={threads}"
            );
            assert!(!rt.stats.any(), "rate 0 must inject nothing");
        }
    }
}

#[test]
fn fixed_seed_and_rate_is_schedule_identical_across_thread_counts() {
    // The determinism guarantee: the fault schedule is a pure function of
    // (seed, coordinates), so transport threading — the knob SF2D_THREADS
    // turns — cannot shift a single fault, cost, or output bit.
    let dm = dist_matrix(16);
    let x0 = DistVector::random(Arc::clone(&dm.vmap), 9);

    let mut gold_led = CostLedger::new(Machine::cab());
    let gold = power_iterate(&dm, &x0, 30, &mut gold_led);

    let mut reference: Option<(Vec<Vec<f64>>, u64, usize, sf2d_sim::sf2d_chaos::FaultStats)> = None;
    for threads in [1usize, 2, 8] {
        let mut rt = ChaosRuntime::seeded(0xC0FFEE, 0.25).with_threads(threads);
        let mut ledger = CostLedger::new(Machine::cab());
        let got = power_iterate_chaos(&dm, &x0, 30, &mut ledger, &mut rt);
        assert_eq!(
            got.locals, gold.locals,
            "threads={threads} must recover gold"
        );
        let total_bits = ledger.total.to_bits();
        match &reference {
            None => reference = Some((got.locals, total_bits, ledger.steps, rt.stats)),
            Some((locals, bits, steps, stats)) => {
                assert_eq!(&got.locals, locals, "threads={threads}");
                assert_eq!(total_bits, *bits, "threads={threads}");
                assert_eq!(ledger.steps, *steps, "threads={threads}");
                assert_eq!(&rt.stats, stats, "threads={threads}");
            }
        }
    }
}

#[test]
fn golden_recovery_scripted_drop_and_crash_into_table3_cell() {
    // The Table 3 cell: 2D-GP layout, 100-iteration SpMV loop. Script one
    // message drop into the very first expand superstep plus a rank crash
    // at iteration 5, and require byte-for-byte recovery with the
    // surcharge itemized in the phase breakdown.
    let a = rmat(&RmatConfig::graph500(8), 3);
    let dist = LayoutBuilder::new(&a, 0).dist(Method::TwoDGp, 16);
    let dm = DistCsrMatrix::from_global(&a, &dist);
    let x0 = DistVector::random(Arc::clone(&dm.vmap), 7);

    let mut gold_led = CostLedger::new(Machine::cab());
    let gold = power_iterate(&dm, &x0, 100, &mut gold_led);

    let (src, dst) = dm
        .import
        .sends
        .iter()
        .enumerate()
        .find_map(|(r, out)| out.first().map(|(d, _)| (r as u32, *d)))
        .expect("2D-GP expand moves something at p=16");
    let script = FaultScript::default()
        .fault(0, src, dst, 0, FaultKind::Drop)
        .crash(5);
    let mut rt = ChaosRuntime::scripted(script);
    let mut ledger = CostLedger::new(Machine::cab());
    let got = power_iterate_chaos(&dm, &x0, 100, &mut ledger, &mut rt);

    assert_eq!(
        got.locals, gold.locals,
        "recovered output != fault-free gold"
    );
    assert_eq!(rt.stats.drops, 1);
    assert_eq!(rt.stats.crashes, 1);

    // The surcharge is visible — and exclusive: every other phase's
    // share matches the gold breakdown except for the replayed work.
    let breakdown = ledger.phase_breakdown();
    let retransmit = breakdown
        .iter()
        .find(|(ph, _)| *ph == Phase::Retransmit)
        .map(|(_, t)| *t)
        .expect("retransmit phase present in breakdown");
    assert!(retransmit > 0.0);
    let recovery = breakdown
        .iter()
        .find(|(ph, _)| *ph == Phase::Recovery)
        .map(|(_, t)| *t)
        .expect("recovery phase present in breakdown");
    assert!(recovery > 0.0);
    assert!(gold_led
        .phase_breakdown()
        .iter()
        .all(|(ph, _)| *ph != Phase::Retransmit && *ph != Phase::Recovery));
    assert!(ledger.total > gold_led.total);
}

#[test]
fn experiment_row_reports_the_surcharge() {
    // The core-level driver seen by the table3 harness: rate 0 is free
    // and bit-equal; a seeded run recovers with honest accounting.
    let a = rmat(&RmatConfig::graph500(7), 4);
    let dist = LayoutBuilder::new(&a, 0).dist(Method::TwoDGp, 16);

    let mut rt = ChaosRuntime::seeded(3, 0.0);
    let row = spmv_experiment_chaos(&a, &dist, Machine::cab(), 50, &mut rt);
    assert!(row.recovered);
    assert_eq!(row.sim_time.to_bits(), row.gold_time.to_bits());
    assert_eq!(row.retransmit_msgs, 0);

    let mut rt = ChaosRuntime::seeded(3, 0.3);
    let row = spmv_experiment_chaos(&a, &dist, Machine::cab(), 50, &mut rt);
    assert!(row.recovered);
    assert!(row.retransmit_time > 0.0);
    assert!(row.retransmit_bytes > 0);
    assert!(row.sim_time > row.gold_time);
}

#[test]
fn golden_recovery_scripted_drop_into_spgemm_exchange() {
    // The SpGEMM analogue of the Table 3 recovery cell: script a drop
    // into the product's expand exchange (routing step 0) and a
    // corruption into its fold exchange (step 1), and require the
    // recovered C to match the fault-free bits with the surcharge billed.
    let a = rmat(&RmatConfig::graph500(8), 3);
    let dist = LayoutBuilder::new(&a, 0).dist(Method::TwoDGp, 16);
    let dm = DistCsrMatrix::from_global(&a, &dist);
    let b = a.transpose();

    let mut gold_led = CostLedger::new(Machine::cab());
    let gold = spgemm_dist(&dm, &b, &mut gold_led);

    let (src, dst) = dm
        .import
        .sends
        .iter()
        .enumerate()
        .find_map(|(r, out)| out.first().map(|(d, _)| (r as u32, *d)))
        .expect("2D-GP expand moves something at p=16");
    let (fsrc, fdst) = dm
        .export
        .recvs
        .iter()
        .enumerate()
        .find_map(|(r, inbound)| inbound.first().map(|(o, _)| (r as u32, *o)))
        .expect("2D-GP fold moves something at p=16");
    let script = FaultScript::default()
        .fault(0, src, dst, 0, FaultKind::Drop)
        .fault(1, fsrc, fdst, 0, FaultKind::BitFlip);
    let mut rt = ChaosRuntime::scripted(script);
    let mut ledger = CostLedger::new(Machine::cab());
    let got = spgemm_chaos(&dm, &b, &mut ledger, &mut rt);

    assert_eq!(got.locals, gold.locals, "recovered C != fault-free gold");
    for (g, c) in gold.locals.iter().zip(&got.locals) {
        let gb: Vec<u64> = g.values().iter().map(|v| v.to_bits()).collect();
        let cb: Vec<u64> = c.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, cb, "value bits must survive recovery");
    }
    assert_eq!(rt.stats.drops, 1);
    assert_eq!(rt.stats.bit_flips, 1);
    assert!(
        ledger
            .phase_breakdown()
            .iter()
            .any(|(ph, t)| *ph == Phase::Retransmit && *t > 0.0),
        "retransmit surcharge must be itemized"
    );
    assert!(ledger.total > gold_led.total);

    // And at rate 0 the chaos path stays byte-identical, ledger included.
    let mut rt = ChaosRuntime::seeded(5, 0.0);
    let mut l0 = CostLedger::new(Machine::cab());
    let clean = spgemm_chaos(&dm, &b, &mut l0, &mut rt);
    assert_eq!(clean.locals, gold.locals);
    assert_eq!(l0.total.to_bits(), gold_led.total.to_bits());
    assert_eq!(l0.history, gold_led.history);
}

fn serve_queries(n: usize) -> Vec<Vec<f64>> {
    (0..6)
        .map(|q| {
            (0..n)
                .map(|i| ((i * (q + 2) + q) % 9) as f64 - 4.0)
                .collect()
        })
        .collect()
}

/// Fault-free serving gold: replies + ledger from a plain flush.
fn serve_gold(
    a: &sf2d_graph::CsrMatrix,
    cfg: &EngineConfig,
) -> (Vec<sf2d_serve::ServeReply>, CostLedger) {
    let mut engine = Engine::new(a, cfg.clone());
    for q in serve_queries(a.nrows()) {
        engine.submit(q);
    }
    let replies = engine.flush();
    (replies, engine.ledger)
}

#[test]
fn serve_rate_zero_is_byte_identical_on_the_new_wire_paths() {
    // The serving frontend routes every batch's expand *and* fold
    // exchange through the chaos wire — new wire paths this PR adds to
    // the spmv executor. Rate 0 must be byte-identical to the plain
    // flush: same reply bits, same phase history, same ledger total, for
    // several rank counts and transport thread counts.
    let a = rmat(&RmatConfig::graph500(8), 3);
    for p in [4usize, 16, 64] {
        let cfg = EngineConfig::new(Method::TwoDBlock, p).with_max_batch(4);
        let (want, gold_led) = serve_gold(&a, &cfg);
        for threads in [1usize, 8] {
            let mut rt = ChaosRuntime::seeded(0xFEED, 0.0).with_threads(threads);
            let mut engine = Engine::new(&a, cfg.clone());
            for q in serve_queries(a.nrows()) {
                engine.submit(q);
            }
            let got = engine.flush_chaos(&mut rt);
            assert_eq!(got, want, "p={p} threads={threads}: replies");
            assert_eq!(
                engine.ledger.history, gold_led.history,
                "p={p} threads={threads}: phase history"
            );
            assert_eq!(
                engine.ledger.total.to_bits(),
                gold_led.total.to_bits(),
                "p={p} threads={threads}: ledger total"
            );
            assert!(!rt.stats.any(), "rate 0 must inject nothing");
            assert_eq!(engine.metrics.crash_replays, 0);
        }
    }
}

#[test]
fn serve_scripted_drop_and_crash_mid_batch_heal_to_fault_free_bits() {
    // Script a drop into the first serving batch's expand exchange
    // (routing step 0) and crash that same batch (chaos-batch 0): the
    // batch replays from the retained queue, and every reply still
    // matches the fault-free gold bit-for-bit, with Retransmit and
    // Recovery itemized in the breakdown.
    let a = rmat(&RmatConfig::graph500(8), 3);
    let cfg = EngineConfig::new(Method::TwoDGp, 16).with_max_batch(3);
    let (want, gold_led) = serve_gold(&a, &cfg);

    let mut engine = Engine::new(&a, cfg);
    let (src, dst) = engine
        .active()
        .import
        .sends
        .iter()
        .enumerate()
        .find_map(|(r, out)| out.first().map(|(d, _)| (r as u32, *d)))
        .expect("2D-GP expand moves something at p=16");
    let script = FaultScript::default()
        .fault(0, src, dst, 0, FaultKind::Drop)
        .crash(0);
    let mut rt = ChaosRuntime::scripted(script);
    for q in serve_queries(a.nrows()) {
        engine.submit(q);
    }
    let got = engine.flush_chaos(&mut rt);
    assert_eq!(got, want, "healed replies != fault-free gold");
    assert_eq!(rt.stats.drops, 1);
    assert_eq!(rt.stats.crashes, 1);
    assert_eq!(engine.metrics.crash_replays, 1);
    let breakdown = engine.ledger.phase_breakdown();
    assert!(
        breakdown
            .iter()
            .any(|(ph, t)| *ph == Phase::Retransmit && *t > 0.0),
        "retransmit surcharge must be itemized"
    );
    assert!(
        breakdown
            .iter()
            .any(|(ph, t)| *ph == Phase::Recovery && *t > 0.0),
        "crash-replay restore must be itemized"
    );
    assert!(engine.ledger.total > gold_led.total);
}

#[test]
fn serve_seeded_faults_heal_identically_across_thread_counts() {
    // A seeded fault storm over the whole serving flush: every reply
    // heals to the fault-free bits, and the entire outcome — replies,
    // billed history, fault schedule — is a pure function of (seed, rate)
    // regardless of transport threads.
    let a = rmat(&RmatConfig::graph500(8), 3);
    let cfg = EngineConfig::new(Method::TwoDGp, 16).with_max_batch(4);
    let (want, gold_led) = serve_gold(&a, &cfg);

    let mut reference: Option<(
        Vec<sf2d_serve::ServeReply>,
        u64,
        sf2d_sim::sf2d_chaos::FaultStats,
    )> = None;
    for threads in [1usize, 2, 8] {
        let mut rt = ChaosRuntime::seeded(0xC0FFEE, 0.3).with_threads(threads);
        let mut engine = Engine::new(&a, cfg.clone());
        for q in serve_queries(a.nrows()) {
            engine.submit(q);
        }
        let got = engine.flush_chaos(&mut rt);
        assert_eq!(got, want, "threads={threads} must heal to gold");
        assert!(rt.stats.any(), "rate 0.3 should inject something");
        assert!(engine.ledger.total > gold_led.total);
        let bits = engine.ledger.total.to_bits();
        match &reference {
            None => reference = Some((got, bits, rt.stats)),
            Some((g, b, stats)) => {
                assert_eq!(&got, g, "threads={threads}: replies");
                assert_eq!(bits, *b, "threads={threads}: ledger bits");
                assert_eq!(&rt.stats, stats, "threads={threads}: fault schedule");
            }
        }
    }
}

/// Long soak across a seed × rate grid — not part of tier-1
/// (`cargo test -- --ignored` runs it; CI's chaos job keeps it out of
/// the default suite).
#[test]
#[ignore = "long soak; run with --ignored"]
fn soak_many_seeds_and_rates_always_recover() {
    let dm = dist_matrix(16);
    let x0 = DistVector::random(Arc::clone(&dm.vmap), 1);
    let mut gold_led = CostLedger::new(Machine::cab());
    let gold = power_iterate(&dm, &x0, 60, &mut gold_led);
    for seed in 0..20u64 {
        for &rate in &[0.05, 0.2, 0.35, 0.5] {
            let mut rt = ChaosRuntime::seeded(seed, rate);
            let mut ledger = CostLedger::new(Machine::cab());
            let got = power_iterate_chaos(&dm, &x0, 60, &mut ledger, &mut rt);
            assert_eq!(
                got.locals, gold.locals,
                "seed {seed} rate {rate} failed to recover"
            );
        }
    }
}
