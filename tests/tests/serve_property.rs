//! The serving property suite: for **random interleavings** of
//! {query, edge insert, edge delete, flush, forced repartition}, the
//! resident [`Engine`] must answer every query bitwise equal to a
//! from-scratch oracle evaluated at the query's submission epoch — and
//! do so for any `SF2D_THREADS`-style thread count, with a byte-identical
//! ledger.
//!
//! The oracle keeps a shadow edge map and a shadow layout basis (the
//! matrix the layout was last derived from — updated only on
//! repartition, exactly the engine's contract) and answers each query by
//! rebuilding everything from scratch: CSR from the shadow edges, layout
//! from `LayoutBuilder::new(basis, seed)`, a fresh [`DistCsrMatrix`],
//! one one-shot [`sf2d_spmv::spmv`]. Matching it pins the three
//! invariants the engine promises: mutations are epoch barriers (a query
//! answers against its submit-time state), plan swaps are atomic (no
//! batch ever mixes epochs), and epochs are monotonic (a cached plan can
//! never serve a stale answer).

use proptest::prelude::*;
use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::erdos_renyi;
use sf2d_graph::{CooMatrix, CsrMatrix};
use sf2d_serve::{Engine, EngineConfig, ServeReply};
use std::collections::BTreeMap;
use std::sync::Arc;

const SEED: u64 = 0;
const THREADS: [usize; 3] = [1, 2, 8];

#[derive(Debug, Clone)]
enum Op {
    /// Submit query vector `k` (answered at the *current* epoch, whenever
    /// the batch actually executes).
    Query(usize),
    /// Set edge `(i, j)` (and `(j, i)`) to weight `w`.
    Insert(u32, u32, f64),
    /// Delete edge `(i, j)` (and `(j, i)`) if present.
    Remove(u32, u32),
    /// Drain the queue into batches now.
    Flush,
    /// Force a layout rebuild + atomic plan swap.
    Repartition,
}

/// Weighted op mix (the vendored proptest shim has no `prop_oneof!`, so
/// the weights live in a selector range): 4/12 query, 3/12 insert, 2/12
/// remove, 2/12 flush, 1/12 repartition.
fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
    (0u32..12, 0u32..n, 0u32..n, 1u32..6, 0usize..4).prop_map(|(sel, i, j, w, k)| match sel {
        0..=3 => Op::Query(k),
        4..=6 => Op::Insert(i, j, w as f64 / 2.0),
        7..=8 => Op::Remove(i, j),
        9..=10 => Op::Flush,
        _ => Op::Repartition,
    })
}

fn queries_for(n: usize) -> Vec<Vec<f64>> {
    (0..4)
        .map(|q| {
            (0..n)
                .map(|i| ((i * (q + 2) + 3 * q) % 13) as f64 - 6.0)
                .collect()
        })
        .collect()
}

fn matrix_from(edges: &BTreeMap<(u32, u32), f64>, n: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for (&(i, j), &w) in edges {
        coo.push(i, j, w);
    }
    CsrMatrix::from_coo(&coo)
}

fn one_shot(dm: &DistCsrMatrix, x: &[f64]) -> Vec<f64> {
    let xd = DistVector::from_global(Arc::clone(&dm.vmap), x);
    let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
    spmv(dm, &xd, &mut y, &mut CostLedger::new(Machine::cab()));
    y.to_global()
}

/// Replays `ops` on a real engine. Returns the replies (execution order),
/// the billed history, the ledger-total bits, and the final epoch.
#[allow(clippy::type_complexity)]
fn run_engine(
    a: &CsrMatrix,
    ops: &[Op],
    method: Method,
    p: usize,
    threads: usize,
) -> (Vec<ServeReply>, Vec<(sf2d_sim::Phase, f64)>, u64, u64) {
    let queries = queries_for(a.nrows());
    let cfg = EngineConfig::new(method, p)
        .with_seed(SEED)
        .with_threads(threads)
        .with_max_batch(3)
        .with_auto_repartition(false);
    let mut engine = Engine::new(a, cfg);
    let mut replies = Vec::new();
    for op in ops {
        match *op {
            Op::Query(k) => {
                engine.submit(queries[k].clone());
            }
            Op::Insert(i, j, w) => {
                engine.insert_edge(i, j, w);
            }
            Op::Remove(i, j) => {
                engine.remove_edge(i, j);
            }
            Op::Flush => replies.extend(engine.flush()),
            Op::Repartition => engine.repartition_now(),
        }
    }
    replies.extend(engine.flush());

    // Shadow edge-map cross-check: the engine's resident matrix must be
    // exactly the CSR the mutation history implies.
    let shadow = shadow_edges(a, ops);
    assert_eq!(
        engine.global_matrix(),
        matrix_from(&shadow, a.nrows()),
        "resident matrix drifted from the mutation history"
    );
    (
        replies,
        engine.ledger.history.clone(),
        engine.ledger.total.to_bits(),
        engine.epoch(),
    )
}

/// The final shadow edge map after `ops` (mirroring the engine's
/// effective-mutation rules: bit-equal re-insert and absent delete are
/// no-ops; both orientations; self-loops single).
fn shadow_edges(a: &CsrMatrix, ops: &[Op]) -> BTreeMap<(u32, u32), f64> {
    let mut edges = BTreeMap::new();
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        for (j, v) in cols.iter().zip(vals) {
            edges.insert((i as u32, *j), *v);
        }
    }
    for op in ops {
        match *op {
            Op::Insert(i, j, w) => {
                let unchanged = edges
                    .get(&(i, j))
                    .is_some_and(|old: &f64| old.to_bits() == w.to_bits());
                if !unchanged {
                    edges.insert((i, j), w);
                    edges.insert((j, i), w);
                }
            }
            Op::Remove(i, j) => {
                edges.remove(&(i, j));
                edges.remove(&(j, i));
            }
            _ => {}
        }
    }
    edges
}

/// Replays `ops` against the from-scratch oracle: every query's expected
/// answer is computed at submit time (mutations are barriers, so that is
/// exactly when the engine's state is the query's state), rebuilding the
/// layout from the shadow basis and the matrix from the shadow edges.
/// Returns `(id, y)` in submission order plus the expected epoch count.
fn run_oracle(a: &CsrMatrix, ops: &[Op], method: Method, p: usize) -> (Vec<(u64, Vec<f64>)>, u64) {
    let n = a.nrows();
    let queries = queries_for(n);
    let mut edges = shadow_edges(a, &[]);
    let mut basis = a.clone();
    let mut expected = Vec::new();
    let mut next_id = 0u64;
    let mut epoch = 0u64;
    for op in ops {
        match *op {
            Op::Query(k) => {
                let m = matrix_from(&edges, n);
                let dist = LayoutBuilder::new(&basis, SEED).dist(method, p);
                let dm = DistCsrMatrix::from_global(&m, &dist);
                expected.push((next_id, one_shot(&dm, &queries[k])));
                next_id += 1;
            }
            Op::Insert(i, j, w) => {
                let unchanged = edges
                    .get(&(i, j))
                    .is_some_and(|old: &f64| old.to_bits() == w.to_bits());
                if !unchanged {
                    edges.insert((i, j), w);
                    edges.insert((j, i), w);
                    epoch += 1;
                }
            }
            Op::Remove(i, j) => {
                if edges.remove(&(i, j)).is_some() {
                    edges.remove(&(j, i));
                    epoch += 1;
                }
            }
            Op::Flush => {}
            Op::Repartition => {
                basis = matrix_from(&edges, n);
                epoch += 1;
            }
        }
    }
    (expected, epoch)
}

/// First-thread-count reference: (replies, ledger history, total bits).
type Gold = (Vec<ServeReply>, Vec<(sf2d_sim::Phase, f64)>, u64);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any interleaving, any thread count: replies bitwise equal to the
    /// submit-time oracle, ledger byte-identical across threads, epoch
    /// counter exactly the effective-mutation count.
    #[test]
    fn interleaved_ops_match_the_from_scratch_oracle_for_any_threads(
        n in 24usize..48,
        edge_factor in 2usize..5,
        graph_seed in 0u64..500,
        m_idx in 0usize..6,
        p_idx in 0usize..3,
        ops in proptest::collection::vec(op_strategy(24), 1..28),
    ) {
        let a = erdos_renyi(n, n * edge_factor, graph_seed);
        let method = Method::spmv_set(false)[m_idx];
        let p = [1usize, 4, 9][p_idx];
        let (expected, want_epoch) = run_oracle(&a, &ops, method, p);

        let mut gold: Option<Gold> = None;
        for threads in THREADS {
            let (replies, history, total_bits, epoch) = run_engine(&a, &ops, method, p, threads);
            prop_assert_eq!(epoch, want_epoch, "epoch = effective mutations (t={})", threads);
            prop_assert_eq!(replies.len(), expected.len(), "every query answered");
            for (reply, (id, want)) in replies.iter().zip(&expected) {
                prop_assert_eq!(reply.id, *id, "execution preserves submission order");
                let gb: Vec<u64> = reply.y.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(gb, wb, "reply {} vs submit-time oracle (t={})", id, threads);
            }
            match &gold {
                None => gold = Some((replies, history, total_bits)),
                Some((g_replies, g_history, g_bits)) => {
                    prop_assert_eq!(&replies, g_replies, "replies differ at t={}", threads);
                    prop_assert_eq!(&history, g_history, "history differs at t={}", threads);
                    prop_assert_eq!(total_bits, *g_bits, "ledger bits differ at t={}", threads);
                }
            }
        }
    }
}
