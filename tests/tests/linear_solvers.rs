//! The paper's §1 side-claim, end to end: the same distributed machinery
//! serves linear solvers (CG) and smallest-eigenpair computations
//! (spectral flip), not just the largest-eigenpair runs of §5.3.

use std::sync::Arc;

use sf2d_core::prelude::*;
use sf2d_core::sf2d_eigen::{conjugate_gradient, krylov_schur_largest, CgConfig};
use sf2d_core::sf2d_gen::grid_2d;
use sf2d_core::sf2d_graph::{combinatorial_laplacian, normalized_laplacian};
use sf2d_core::sf2d_spmv::{LinearOperator, PlainSpmvOp, ShiftedOp};

#[test]
fn cg_solves_a_laplacian_system_under_2d_gp() {
    // (L + I) x = b on a mesh, distributed with the paper's 2D-GP layout.
    let a = grid_2d(10, 10);
    let l = combinatorial_laplacian(&a).unwrap();
    let mut coo = l.to_coo();
    for i in 0..l.nrows() as u32 {
        coo.push(i, i, 1.0);
    }
    let spd = CsrMatrix::from_coo(&coo);

    let mut builder = LayoutBuilder::new(&spd, 0);
    let dist = builder.dist(Method::TwoDGp, 16);
    let op = PlainSpmvOp::new(DistCsrMatrix::from_global(&spd, &dist));

    let x_true: Vec<f64> = (0..spd.nrows())
        .map(|i| ((i * 3) % 11) as f64 - 5.0)
        .collect();
    let b_global = spd.spmv_dense(&x_true);
    let b = DistVector::from_global(Arc::clone(op.vmap()), &b_global);

    let mut ledger = CostLedger::new(Machine::cab());
    let res = conjugate_gradient(&op, &b, &CgConfig::default(), &mut ledger);
    assert!(res.converged, "residual {}", res.rel_residual);
    for (g, w) in res.x.to_global().iter().zip(&x_true) {
        assert!((g - w).abs() < 1e-6);
    }
    // The layout's message bound applies to the solver's SpMVs too.
    let m = LayoutMetrics::compute(&spd, &dist);
    assert!(m.max_msgs() <= 6);
}

#[test]
fn smallest_eigenpairs_via_spectral_flip() {
    // Smallest eigenvalues of L-hat: flip with shift 2 (the spectrum's
    // upper bound), find largest of (2I - L-hat), map back.
    let a = grid_2d(5, 8);
    let lhat = normalized_laplacian(&a).unwrap();
    let d = MatrixDist::block_2d(lhat.nrows(), 2, 2);
    let inner = PlainSpmvOp::new(DistCsrMatrix::from_global(&lhat, &d));
    let op = ShiftedOp {
        inner: &inner,
        shift: 2.0,
    };

    let cfg = KrylovSchurConfig {
        nev: 2,
        max_basis: 20,
        tol: 1e-9,
        max_restarts: 200,
        seed: 4,
    };
    let mut ledger = CostLedger::new(Machine::cab());
    let res = krylov_schur_largest(&op, &cfg, &mut ledger);
    assert!(res.converged, "{:?}", res.residuals);
    // Map back: smallest eigenvalues of L-hat = 2 - (flipped values).
    let smallest: Vec<f64> = res.values.iter().map(|v| 2.0 - v).collect();
    // A connected graph's smallest normalized-Laplacian eigenvalue is 0.
    assert!(smallest[0].abs() < 1e-7, "{smallest:?}");
    // The second one is the normalized algebraic connectivity: positive.
    assert!(smallest[1] > 1e-4, "{smallest:?}");
}
