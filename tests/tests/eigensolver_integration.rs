//! Cross-crate eigensolver integration: the full pipeline (generate →
//! partition → distribute → normalized Laplacian → Krylov-Schur) against
//! dense oracles and invariants.

use sf2d_core::prelude::*;
use sf2d_core::sf2d_eigen::dense::{symmetric_eig, DenseMat};
use sf2d_core::sf2d_eigen::krylov_schur_largest;
use sf2d_core::sf2d_gen::{chung_lu, grid_2d, powerlaw_degrees, rmat, RmatConfig};
use sf2d_core::sf2d_graph::normalized_laplacian;

fn dense_eigenvalues(a: &CsrMatrix) -> Vec<f64> {
    let n = a.nrows();
    let mut d = DenseMat::zeros(n);
    for (i, j, v) in a.iter() {
        d[(i as usize, j as usize)] = v;
    }
    let (vals, _) = symmetric_eig(&d);
    vals
}

fn solve_with(a: &CsrMatrix, method: Method, p: usize, nev: usize) -> Vec<f64> {
    let stripped = a.without_diagonal();
    let degrees: Vec<usize> = (0..stripped.nrows()).map(|i| stripped.row_nnz(i)).collect();
    let mut builder = LayoutBuilder::new(a, 0);
    let dist = builder.dist(method, p);
    let dm = DistCsrMatrix::from_global(&stripped, &dist);
    let op = NormalizedLaplacianOp::new(dm, &degrees);
    let cfg = KrylovSchurConfig {
        nev,
        max_basis: (4 * nev).max(nev + 8),
        tol: 1e-9,
        max_restarts: 400,
        seed: 3,
    };
    let mut ledger = CostLedger::new(Machine::cab());
    let res = krylov_schur_largest(&op, &cfg, &mut ledger);
    assert!(
        res.converged,
        "{}: residuals {:?}",
        method.name(),
        res.residuals
    );
    res.values
}

#[test]
fn distributed_solver_matches_dense_oracle() {
    // Rectangular grid: simple, non-degenerate spectrum.
    let a = grid_2d(6, 9);
    let lhat = normalized_laplacian(&a).unwrap();
    let dense = dense_eigenvalues(&lhat);
    let want: Vec<f64> = dense.iter().rev().take(4).copied().collect();
    for method in [Method::OneDBlock, Method::TwoDGp, Method::TwoDRandom] {
        let got = solve_with(&a, method, 6, 4);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-7, "{}: {g} vs {w}", method.name());
        }
    }
}

#[test]
fn eigenvalues_layout_invariant_on_scale_free_graph() {
    let a = rmat(&RmatConfig::graph500(7), 13);
    let reference = solve_with(&a, Method::OneDBlock, 4, 5);
    for method in [
        Method::OneDRandom,
        Method::TwoDBlock,
        Method::TwoDGp,
        Method::TwoDHp,
    ] {
        let got = solve_with(&a, method, 9, 5);
        for (g, r) in got.iter().zip(&reference) {
            assert!((g - r).abs() < 1e-7, "{}: {g} vs {r}", method.name());
        }
    }
}

#[test]
fn normalized_laplacian_spectrum_bounds_hold() {
    // Any graph: eigenvalues of L-hat lie in [0, 2].
    let d = powerlaw_degrees(300, 2.0, 2, 40, 5);
    let a = chung_lu(&d, 600, 0, 0.0, 5);
    let vals = solve_with(&a, Method::TwoDRandom, 6, 6);
    for v in vals {
        assert!(
            (-1e-9..=2.0 + 1e-9).contains(&v),
            "eigenvalue {v} out of [0,2]"
        );
    }
}

#[test]
fn solver_costs_reflect_layout_quality() {
    // Same solve, two layouts: the trajectory (op applies) is identical,
    // but the 1D layout pays more simulated communication at high p.
    let a = rmat(&RmatConfig::graph500(8), 17);
    let stripped = a.without_diagonal();
    let degrees: Vec<usize> = (0..stripped.nrows()).map(|i| stripped.row_nnz(i)).collect();
    let cfg = KrylovSchurConfig {
        nev: 3,
        max_basis: 16,
        tol: 1e-4,
        max_restarts: 60,
        seed: 1,
    };

    let mut times = Vec::new();
    let mut applies = Vec::new();
    for method in [Method::OneDBlock, Method::TwoDGp] {
        let mut builder = LayoutBuilder::new(&a, 0);
        let dist = builder.dist(method, 64);
        let dm = DistCsrMatrix::from_global(&stripped, &dist);
        let op = NormalizedLaplacianOp::new(dm, &degrees);
        let mut ledger = CostLedger::new(Machine::cab());
        let res = krylov_schur_largest(&op, &cfg, &mut ledger);
        times.push(ledger.total);
        applies.push(res.op_applies);
    }
    assert_eq!(
        applies[0], applies[1],
        "trajectory must be layout-invariant"
    );
    assert!(
        times[1] < times[0],
        "2D-GP {} should beat 1D-Block {} at 64 ranks",
        times[1],
        times[0]
    );
}

#[test]
fn pagerank_and_eigensolver_share_distributions() {
    // Both solvers run on the same distributed matrix infrastructure; a
    // PageRank on the symmetrized graph converges under any layout.
    let a = rmat(&RmatConfig::graph500(6), 19);
    let p_matrix = sf2d_core::sf2d_graph::adjacency_to_pagerank(&a).unwrap();
    let mut builder = LayoutBuilder::new(&a, 0);
    let mut totals = Vec::new();
    for method in [Method::OneDBlock, Method::TwoDGp] {
        let dist = builder.dist(method, 8);
        let dm = DistCsrMatrix::from_global(&p_matrix, &dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let res = sf2d_core::sf2d_eigen::pagerank(&dm, 0.85, 1e-10, 300, &mut ledger);
        let ranks = res.ranks.to_global();
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "{}: sum {sum}", method.name());
        totals.push(ranks);
    }
    for (x, y) in totals[0].iter().zip(&totals[1]) {
        assert!((x - y).abs() < 1e-8);
    }
}
