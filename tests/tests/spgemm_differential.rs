//! The SpGEMM differential battery: the distributed `C = A·B` kernel
//! against the serial CSR Gustavson oracle ([`sf2d_graph::spgemm`]).
//!
//! For every (generator, p, layout) cell the distributed product must
//! reassemble to a CSR with **identical row pointers, sorted identical
//! column indices, and bitwise-equal values** — achievable because the
//! generator matrices carry unit values, so every C entry is an exact
//! small-integer sum and no floating-point reassociation can show
//! through; the kernel's fixed rank-order reduction makes the bits
//! deterministic regardless. On top of the oracle match, the result and
//! the billed ledger must be byte-identical for workspace thread counts
//! {1, 2, 8} — the `SF2D_THREADS` independence guarantee the SpMV engine
//! already makes, extended to SpGEMM.
//!
//! The golden-row test at the bottom pins the `spgemm_experiment` driver
//! output to `results/spgemm.jsonl` (regenerate with `SF2D_BLESS=1`).

use sf2d_core::experiment::{labeled_spgemm, spgemm_experiment, SpgemmRow};
use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{chung_lu, erdos_renyi, powerlaw_degrees, rmat, RmatConfig};
use sf2d_graph::{spgemm, CsrMatrix};

const PROCS: [usize; 4] = [1, 4, 16, 64];
const THREADS: [usize; 3] = [1, 2, 8];

/// One differential cell: distribute `a` under `method`/`p`, run the
/// kernel at several thread counts, and demand the oracle's exact CSR
/// plus cross-thread byte-identity (values *and* ledger).
fn check_cell(a: &CsrMatrix, builder: &mut LayoutBuilder, method: Method, p: usize) {
    let label = format!("{} p={p}", method.name());
    let dist = builder.dist(method, p);
    let dm = DistCsrMatrix::from_global(a, &dist);
    let b = a.transpose();
    let want = spgemm(a, &b);

    type Gold = (CsrMatrix, u64, Vec<(sf2d_sim::Phase, f64)>);
    let mut gold: Option<Gold> = None;
    for threads in THREADS {
        let mut ws = SpgemmWorkspace::with_threads(threads);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_with(&dm, &b, &mut ledger, &mut ws);
        let got = c.to_global();

        assert_eq!(got.rowptr(), want.rowptr(), "{label}: row pointers");
        assert_eq!(got.colidx(), want.colidx(), "{label}: column indices");
        for i in 0..got.nrows() {
            let (cols, _) = got.row(i);
            assert!(
                cols.windows(2).all(|w| w[0] < w[1]),
                "{label}: row {i} columns not sorted"
            );
        }
        let got_bits: Vec<u64> = got.values().iter().map(|v| v.to_bits()).collect();
        let want_bits: Vec<u64> = want.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got_bits, want_bits, "{label}: values bitwise");
        assert_eq!(c.nnz, want.nnz() as u64, "{label}: allreduced nnz");

        match &gold {
            None => gold = Some((got, ledger.total.to_bits(), ledger.history.clone())),
            Some((g, bits, history)) => {
                let gb: Vec<u64> = g.values().iter().map(|v| v.to_bits()).collect();
                assert_eq!(got_bits, gb, "{label}: threads={threads} value bits");
                assert_eq!(
                    ledger.total.to_bits(),
                    *bits,
                    "{label}: threads={threads} ledger total"
                );
                assert_eq!(
                    &ledger.history, history,
                    "{label}: threads={threads} ledger history"
                );
            }
        }
    }
}

fn sweep(a: &CsrMatrix) {
    let mut builder = LayoutBuilder::new(a, 0);
    for p in PROCS {
        for method in Method::spmv_set(false) {
            check_cell(a, &mut builder, method, p);
        }
    }
}

#[test]
fn rmat_matches_oracle_on_all_layouts_and_procs() {
    sweep(&rmat(&RmatConfig::graph500(7), 11));
}

#[test]
fn chung_lu_matches_oracle_on_all_layouts_and_procs() {
    let degs = powerlaw_degrees(160, 2.2, 2, 40, 5);
    sweep(&chung_lu(&degs, 500, 0, 0.0, 5));
}

#[test]
fn erdos_renyi_matches_oracle_on_all_layouts_and_procs() {
    sweep(&erdos_renyi(150, 450, 13));
}

#[test]
fn rectangular_product_matches_oracle() {
    // A·B with B rectangular (ncols != n): the expand discipline and
    // merge must not assume a square product.
    let a = rmat(&RmatConfig::graph500(7), 3);
    let n = a.nrows();
    let mut coo = sf2d_graph::CooMatrix::new(n, 17);
    for i in 0..n as u32 {
        coo.push(i, i % 17, 1.0);
        coo.push(i, (i * 7 + 3) % 17, 2.0);
    }
    let b = CsrMatrix::from_coo(&coo);
    let want = spgemm(&a, &b);
    let mut builder = LayoutBuilder::new(&a, 0);
    for method in [Method::OneDRandom, Method::TwoDRandom, Method::TwoDGp] {
        let dm = DistCsrMatrix::from_global(&a, &builder.dist(method, 16));
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_dist(&dm, &b, &mut ledger);
        assert_eq!(c.to_global(), want, "{}", method.name());
        assert_eq!(c.ncols, 17);
    }
}

/// Golden pin of the `spgemm_experiment` driver: the six-layout row set
/// at p = 16 on a fixed R-MAT, compared field-for-field against the
/// checked-in `results/spgemm.jsonl`. Costs, traffic, and nnz are all
/// deterministic, so any drift is a real behaviour change — regenerate
/// deliberately with `SF2D_BLESS=1 cargo test -p sf2d-integration-tests
/// golden_spgemm`.
#[test]
fn golden_spgemm_experiment_rows_are_stable() {
    let a = rmat(&RmatConfig::graph500(7), 4);
    let mut builder = LayoutBuilder::new(&a, 0);
    let rows: Vec<SpgemmRow> = Method::spmv_set(false)
        .into_iter()
        .map(|m| {
            labeled_spgemm(
                spgemm_experiment(&a, &builder.dist(m, 16), Machine::cab()),
                "rmat-s7",
                m,
            )
        })
        .collect();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../results/spgemm.jsonl");
    if std::env::var_os("SF2D_BLESS").is_some() {
        let mut out = String::new();
        for row in &rows {
            out.push_str(&serde_json::to_string(row).expect("row serializes"));
            out.push('\n');
        }
        std::fs::write(&path, out).expect("write golden spgemm.jsonl");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden results/spgemm.jsonl present (bless with SF2D_BLESS=1)");
    let want: Vec<SpgemmRow> = golden
        .lines()
        .map(|l| serde_json::from_str(l).expect("golden line parses"))
        .collect();
    assert_eq!(rows, want, "spgemm_experiment drifted from the golden rows");
}
