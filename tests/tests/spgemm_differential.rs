//! The SpGEMM differential battery: **both** distributed `C = A·B`
//! kernels — the expand/fold path over the SpMV schedules and the
//! Sparse SUMMA stage-broadcast path — against the serial CSR Gustavson
//! oracle ([`sf2d_graph::spgemm`]) and against each other.
//!
//! For every (generator, p, layout) cell each distributed product must
//! reassemble to a CSR with **identical row pointers, sorted identical
//! column indices, and bitwise-equal values** — achievable because the
//! generator matrices carry unit values, so every C entry is an exact
//! small-integer sum and no floating-point reassociation can show
//! through; each kernel's fixed reduction order makes the bits
//! deterministic regardless. On top of the oracle match, the result and
//! the billed ledger must be byte-identical for workspace thread counts
//! {1, 2, 8} — the `SF2D_THREADS` independence guarantee the SpMV engine
//! already makes, extended to both SpGEMM paths — and the two kernels'
//! C values must agree bit-for-bit with each other (the property the
//! proptest at the bottom fuzzes over random Erdős–Rényi inputs).
//!
//! The golden-row test at the bottom pins the `spgemm_experiment` and
//! `summa_experiment` driver output to `results/spgemm.jsonl`
//! (regenerate with `SF2D_BLESS=1`).

use proptest::prelude::*;
use sf2d_core::experiment::{labeled_spgemm, spgemm_experiment, summa_experiment, SpgemmRow};
use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{chung_lu, erdos_renyi, powerlaw_degrees, rmat, RmatConfig};
use sf2d_graph::{spgemm, CsrMatrix};

const PROCS: [usize; 4] = [1, 4, 16, 64];
const THREADS: [usize; 3] = [1, 2, 8];

type Gold = (Vec<u64>, u64, Vec<(sf2d_sim::Phase, f64)>);

/// Shared per-kernel check: oracle CSR equality (pointers, sorted
/// columns, value bits) plus cross-thread byte-identity of values and
/// ledger, folded through `gold`.
fn check_against_oracle(
    label: &str,
    threads: usize,
    got: &CsrMatrix,
    nnz: u64,
    want: &CsrMatrix,
    ledger: &CostLedger,
    gold: &mut Option<Gold>,
) {
    assert_eq!(got.rowptr(), want.rowptr(), "{label}: row pointers");
    assert_eq!(got.colidx(), want.colidx(), "{label}: column indices");
    for i in 0..got.nrows() {
        let (cols, _) = got.row(i);
        assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "{label}: row {i} columns not sorted"
        );
    }
    let got_bits: Vec<u64> = got.values().iter().map(|v| v.to_bits()).collect();
    let want_bits: Vec<u64> = want.values().iter().map(|v| v.to_bits()).collect();
    assert_eq!(got_bits, want_bits, "{label}: values bitwise");
    assert_eq!(nnz, want.nnz() as u64, "{label}: allreduced nnz");

    match gold {
        None => *gold = Some((got_bits, ledger.total.to_bits(), ledger.history.clone())),
        Some((gb, bits, history)) => {
            assert_eq!(&got_bits, gb, "{label}: threads={threads} value bits");
            assert_eq!(
                ledger.total.to_bits(),
                *bits,
                "{label}: threads={threads} ledger total"
            );
            assert_eq!(
                &ledger.history, history,
                "{label}: threads={threads} ledger history"
            );
        }
    }
}

/// One differential cell: distribute `a` under `method`/`p`, run **both**
/// kernels at several thread counts, and demand the oracle's exact CSR,
/// cross-thread byte-identity (values *and* ledger) per kernel, and
/// bit-identical C between the two kernels.
fn check_cell(a: &CsrMatrix, builder: &mut LayoutBuilder, method: Method, p: usize) {
    let dist = builder.dist(method, p);
    let dm = DistCsrMatrix::from_global(a, &dist);
    let b = a.transpose();
    let want = spgemm(a, &b);

    let mut ef_gold: Option<Gold> = None;
    let mut su_gold: Option<Gold> = None;
    for threads in THREADS {
        let label = format!("{} p={p} expand/fold", method.name());
        let mut ws = SpgemmWorkspace::with_threads(threads);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_with(&dm, &b, &mut ledger, &mut ws);
        check_against_oracle(
            &label,
            threads,
            &c.to_global(),
            c.nnz,
            &want,
            &ledger,
            &mut ef_gold,
        );

        let label = format!("{} p={p} summa", method.name());
        let mut ws = SummaWorkspace::with_threads(threads);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = summa_with(&dm, &dist, &b, &mut ledger, &mut ws);
        check_against_oracle(
            &label,
            threads,
            &c.to_global(),
            c.nnz,
            &want,
            &ledger,
            &mut su_gold,
        );
    }
    // Both kernels reduce to the same bits (each matched the oracle, so
    // this is implied — stated directly because it is the cross-kernel
    // contract the SUMMA path promises).
    assert_eq!(
        ef_gold.as_ref().map(|g| &g.0),
        su_gold.as_ref().map(|g| &g.0),
        "{} p={p}: expand/fold vs SUMMA value bits",
        method.name()
    );
}

fn sweep(a: &CsrMatrix) {
    let mut builder = LayoutBuilder::new(a, 0);
    for p in PROCS {
        for method in Method::spmv_set(false) {
            check_cell(a, &mut builder, method, p);
        }
    }
}

#[test]
fn rmat_matches_oracle_on_all_layouts_and_procs() {
    sweep(&rmat(&RmatConfig::graph500(7), 11));
}

#[test]
fn chung_lu_matches_oracle_on_all_layouts_and_procs() {
    let degs = powerlaw_degrees(160, 2.2, 2, 40, 5);
    sweep(&chung_lu(&degs, 500, 0, 0.0, 5));
}

#[test]
fn erdos_renyi_matches_oracle_on_all_layouts_and_procs() {
    sweep(&erdos_renyi(150, 450, 13));
}

#[test]
fn rectangular_product_matches_oracle() {
    // A·B with B rectangular (ncols != n): neither the expand discipline
    // nor SUMMA's chunked column space may assume a square product.
    let a = rmat(&RmatConfig::graph500(7), 3);
    let n = a.nrows();
    let mut coo = sf2d_graph::CooMatrix::new(n, 17);
    for i in 0..n as u32 {
        coo.push(i, i % 17, 1.0);
        coo.push(i, (i * 7 + 3) % 17, 2.0);
    }
    let b = CsrMatrix::from_coo(&coo);
    let want = spgemm(&a, &b);
    let mut builder = LayoutBuilder::new(&a, 0);
    for method in [Method::OneDRandom, Method::TwoDRandom, Method::TwoDGp] {
        let dist = builder.dist(method, 16);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_dist(&dm, &b, &mut ledger);
        assert_eq!(c.to_global(), want, "{}", method.name());
        assert_eq!(c.ncols, 17);

        let mut ledger = CostLedger::new(Machine::cab());
        let c = summa_dist(&dm, &dist, &b, &mut ledger);
        assert_eq!(c.to_global(), want, "{} summa", method.name());
        assert_eq!(c.ncols, 17);
    }
}

/// Golden pin of the `spgemm_experiment` **and** `summa_experiment`
/// drivers: the six-layout row set at p = 16 on a fixed R-MAT, one row
/// per (layout, algo), compared field-for-field against the checked-in
/// `results/spgemm.jsonl`. Costs, traffic, and nnz are all
/// deterministic, so any drift is a real behaviour change — regenerate
/// deliberately with `SF2D_BLESS=1 cargo test -p sf2d-integration-tests
/// golden_spgemm`.
#[test]
fn golden_spgemm_experiment_rows_are_stable() {
    let a = rmat(&RmatConfig::graph500(7), 4);
    let mut builder = LayoutBuilder::new(&a, 0);
    let rows: Vec<SpgemmRow> = Method::spmv_set(false)
        .into_iter()
        .flat_map(|m| {
            let dist = builder.dist(m, 16);
            [
                labeled_spgemm(spgemm_experiment(&a, &dist, Machine::cab()), "rmat-s7", m),
                labeled_spgemm(summa_experiment(&a, &dist, Machine::cab()), "rmat-s7", m),
            ]
        })
        .collect();

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../results/spgemm.jsonl");
    if std::env::var_os("SF2D_BLESS").is_some() {
        let mut out = String::new();
        for row in &rows {
            out.push_str(&serde_json::to_string(row).expect("row serializes"));
            out.push('\n');
        }
        std::fs::write(&path, out).expect("write golden spgemm.jsonl");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden results/spgemm.jsonl present (bless with SF2D_BLESS=1)");
    let want: Vec<SpgemmRow> = golden
        .lines()
        .map(|l| serde_json::from_str(l).expect("golden line parses"))
        .collect();
    assert_eq!(rows, want, "spgemm_experiment drifted from the golden rows");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fuzzed cross-kernel contract: for random Erdős–Rényi inputs,
    /// random layouts, and random rank counts, Sparse SUMMA and
    /// expand/fold produce bit-identical C — and each kernel's value
    /// bits and billed ledger are byte-identical across SF2D_THREADS
    /// (the deterministic check_cell battery, driven by random inputs).
    #[test]
    fn summa_and_expand_fold_agree_bitwise_on_random_inputs(
        n in 24usize..96,
        edge_factor in 2usize..6,
        seed in 0u64..1000,
        p_idx in 0usize..3,
        m_idx in 0usize..6,
    ) {
        let a = erdos_renyi(n, n * edge_factor, seed);
        let p = [1usize, 4, 16][p_idx];
        let method = Method::spmv_set(false)[m_idx];
        let mut builder = LayoutBuilder::new(&a, seed);
        check_cell(&a, &mut builder, method, p);
    }
}
