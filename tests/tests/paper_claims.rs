//! Tests that the paper's *qualitative claims* hold in the reproduction —
//! the analysis of §3.2 and the empirical findings of §5 at test scale.

use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{grid_2d, rmat, RmatConfig};

/// §3.2 "Number of messages": 2D-GP's messages per process are bounded by
/// pr + pc − 2, while 1D layouts approach p − 1.
#[test]
fn message_counts_match_analysis() {
    let a = rmat(&RmatConfig::graph500(9), 1);
    let mut builder = LayoutBuilder::new(&a, 0);
    let p = 64;
    let one_d = LayoutMetrics::compute(&a, &builder.dist(Method::OneDRandom, p));
    let two_d = LayoutMetrics::compute(&a, &builder.dist(Method::TwoDGp, p));
    assert!(one_d.max_msgs() > 50, "1D msgs {}", one_d.max_msgs());
    assert!(two_d.max_msgs() <= 14, "2D msgs {}", two_d.max_msgs());
}

/// §3.2 "Communication volume": 2D-GP volume is similar to 1D-GP (same
/// rpart), and below 2D-Random's.
#[test]
fn volume_comparisons_match_analysis() {
    let a = rmat(
        &RmatConfig {
            edge_factor: 4,
            ..RmatConfig::graph500(11)
        },
        2,
    );
    let mut builder = LayoutBuilder::new(&a, 0);
    let p = 64;
    let gp1 = LayoutMetrics::compute(&a, &builder.dist(Method::OneDGp, p));
    let gp2 = LayoutMetrics::compute(&a, &builder.dist(Method::TwoDGp, p));
    let rand2 = LayoutMetrics::compute(&a, &builder.dist(Method::TwoDRandom, p));
    // "Similar" volume: within 2.5x either way (the paper says it "may vary
    // depending on the sparsity pattern").
    let ratio = gp2.total_comm_volume() as f64 / gp1.total_comm_volume() as f64;
    assert!(ratio < 2.5 && ratio > 0.4, "2D/1D GP volume ratio {ratio}");
    assert!(
        gp2.total_comm_volume() < rand2.total_comm_volume(),
        "2D-GP volume {} not below 2D-Random {}",
        gp2.total_comm_volume(),
        rand2.total_comm_volume()
    );
}

/// §3.2 "Load balance": the 2D-GP vector distribution equals 1D-GP's, and
/// nonzero balance is "roughly the same" as 1D.
#[test]
fn load_balance_matches_analysis() {
    let a = rmat(&RmatConfig::graph500(9), 3);
    let mut builder = LayoutBuilder::new(&a, 0);
    let d1 = builder.dist(Method::OneDGp, 16);
    let d2 = builder.dist(Method::TwoDGp, 16);
    let m1 = LayoutMetrics::compute(&a, &d1);
    let m2 = LayoutMetrics::compute(&a, &d2);
    assert_eq!(
        m1.vec_per_rank, m2.vec_per_rank,
        "vector distribution must coincide"
    );
    assert!(m2.nnz_imbalance() < 3.0 * m1.nnz_imbalance() + 0.5);
}

/// §2.4: randomization fixes block layouts' imbalance on skewed graphs
/// (the paper saw up to 130x block imbalance).
#[test]
fn randomization_fixes_block_imbalance() {
    let a = rmat(&RmatConfig::graph500(10), 4);
    let mut builder = LayoutBuilder::new(&a, 0);
    let p = 64;
    let block = LayoutMetrics::compute(&a, &builder.dist(Method::TwoDBlock, p));
    let random = LayoutMetrics::compute(&a, &builder.dist(Method::TwoDRandom, p));
    assert!(
        block.nnz_imbalance() > 2.0,
        "block imbalance {}",
        block.nnz_imbalance()
    );
    // At test scale a rank holds only ~16 rows, so the hub keeps the random
    // layout's imbalance near 1.6; what matters is the multiple vs block.
    assert!(
        2.0 * random.nnz_imbalance() < block.nnz_imbalance(),
        "random {} vs block {}",
        random.nnz_imbalance(),
        block.nnz_imbalance()
    );
    // But randomization costs volume (§2.4's trade-off).
    assert!(random.total_comm_volume() >= block.total_comm_volume());
}

/// §2.4: "randomization is a poor load balancing method for meshes" — on a
/// grid, GP crushes random in communication volume.
#[test]
fn randomization_is_poor_on_meshes() {
    let a = grid_2d(40, 40);
    let mut builder = LayoutBuilder::new(&a, 0);
    let gp = LayoutMetrics::compute(&a, &builder.dist(Method::OneDGp, 16));
    let rand = LayoutMetrics::compute(&a, &builder.dist(Method::OneDRandom, 16));
    assert!(
        5 * gp.total_comm_volume() < rand.total_comm_volume(),
        "gp volume {} vs random {}",
        gp.total_comm_volume(),
        rand.total_comm_volume()
    );
}

/// §5.2 second finding: at large p, 2D beats 1D in simulated SpMV time.
#[test]
fn two_d_wins_at_scale() {
    let a = rmat(
        &RmatConfig {
            edge_factor: 4,
            ..RmatConfig::graph500(12)
        },
        5,
    );
    let mut builder = LayoutBuilder::new(&a, 0);
    let machine = Machine::cab().with_workload_scale(64.0);
    let p = 1024;
    let t1 = spmv_experiment(&a, &builder.dist(Method::OneDGp, p), machine, 100).sim_time;
    let t2 = spmv_experiment(&a, &builder.dist(Method::TwoDGp, p), machine, 100).sim_time;
    assert!(t2 < t1, "2D-GP {t2} not below 1D-GP {t1} at p={p}");
}

/// Fig 2 equivalence: Algorithm 2 on a block rpart IS the 2D block-stripe
/// layout of Yoo et al. — verified structurally in `sf2d-partition`; here
/// we confirm the experiment pipeline treats them identically.
#[test]
fn two_d_block_is_algorithm2_on_block_rpart() {
    let a = rmat(&RmatConfig::graph500(7), 6);
    let n = a.nrows();
    let d1 = MatrixDist::block_2d(n, 4, 4);
    let part =
        sf2d_core::sf2d_partition::Partition::new(MatrixDist::block_1d(n, 16).rpart().to_vec(), 16);
    let d2 = MatrixDist::cartesian_2d(&part, 4, 4, false);
    let m1 = LayoutMetrics::compute(&a, &d1);
    let m2 = LayoutMetrics::compute(&a, &d2);
    assert_eq!(m1.nnz_per_rank, m2.nnz_per_rank);
    assert_eq!(m1.expand_send_vol, m2.expand_send_vol);
}

/// §3.2's message bound carries over to SpGEMM verbatim: the kernel's two
/// exchanges run on the SpMV's compiled plans, so under a 2D layout no
/// rank sends more than pr − 1 expand messages plus pc − 1 fold messages
/// per product. 1D-Random pays the documented blowup — its single
/// (expand) exchange approaches p − 1 sends per rank, because random row
/// scatter makes nearly every rank need B rows from nearly every other.
#[test]
fn spgemm_message_bound_matches_analysis() {
    let a = rmat(&RmatConfig::graph500(9), 1);
    let b = a.transpose();
    let mut builder = LayoutBuilder::new(&a, 0);
    let p = 64; // 8 x 8 grid: per-exchange bound pr - 1 = pc - 1 = 7
    for m in [Method::TwoDBlock, Method::TwoDRandom, Method::TwoDGp] {
        let dm = DistCsrMatrix::from_global(&a, &builder.dist(m, p));
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_dist(&dm, &b, &mut ledger);
        assert!(
            c.expand.max_send_msgs() <= 7,
            "{}: expand sends {}",
            m.name(),
            c.expand.max_send_msgs()
        );
        assert!(
            c.fold.max_send_msgs() <= 7,
            "{}: fold sends {}",
            m.name(),
            c.fold.max_send_msgs()
        );
    }
    let dm = DistCsrMatrix::from_global(&a, &builder.dist(Method::OneDRandom, p));
    let mut ledger = CostLedger::new(Machine::cab());
    let c = spgemm_dist(&dm, &b, &mut ledger);
    assert!(
        c.expand.max_send_msgs() > 50,
        "1D-Random expand sends {} should approach p - 1 = 63",
        c.expand.max_send_msgs()
    );
    assert_eq!(c.fold.max_send_msgs(), 0, "1D layouts own whole rows");
}

/// The communication-avoiding claim (Ballard et al., carried into the
/// Sparse SUMMA SpGEMM path): in **every** stage, **every** rank sends at
/// most (pr − 1) + (pc − 1) broadcast fragments — independent of the data
/// layout — so at p = 64 (8 × 8 grid) the per-stage bound is 14 and
/// SUMMA's *worst layout* stays below expand/fold's worst layout
/// (1D-Random, which approaches p − 1 = 63 sends in its one expand
/// exchange). Volume stays comparable — within a grid dimension either
/// way. Each stage block is re-sent to a whole grid row/column of peers
/// (an up-to-pr blowup), but unlike expand/fold, SUMMA never duplicates
/// a hub row of B per requesting rank — and on scale-free inputs the
/// dedup wins: the measured 2D-GP factor is *below* 1.
#[test]
fn summa_stage_bound_beats_expand_fold_worst_layout() {
    let a = rmat(&RmatConfig::graph500(9), 1);
    let b = a.transpose();
    let mut builder = LayoutBuilder::new(&a, 0);
    let p = 64; // 8 x 8 grid: stage bound (8 - 1) + (8 - 1) = 14

    let mut summa_worst = 0u64;
    let mut summa_gp_volume = 0u64;
    for m in Method::spmv_set(false) {
        let dist = builder.dist(m, p);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = summa_dist(&dm, &dist, &b, &mut ledger);
        let bound = c.grid.stage_message_bound();
        assert_eq!(bound, 14, "{}: 8 x 8 grid expected", m.name());
        let stage_max = c
            .stage_send_msgs
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0);
        assert!(
            stage_max <= bound,
            "{}: {stage_max} sends in one stage exceed the bound {bound}",
            m.name()
        );
        summa_worst = summa_worst.max(c.max_send_msgs());
        if m == Method::TwoDGp {
            summa_gp_volume = c.total_volume();
        }
    }

    // expand/fold's worst layout: 1D-Random approaches p − 1 sends.
    let d_rand = builder.dist(Method::OneDRandom, p);
    let dm = DistCsrMatrix::from_global(&a, &d_rand);
    let mut ledger = CostLedger::new(Machine::cab());
    let ef = spgemm_dist(&dm, &b, &mut ledger);
    let ef_worst = ef.expand.max_send_msgs() + ef.fold.max_send_msgs();
    assert!(ef_worst > 50, "1D-Random expand/fold sends {ef_worst}");
    assert!(
        summa_worst < ef_worst,
        "SUMMA worst-layout total sends {summa_worst} not below expand/fold's {ef_worst}"
    );

    // Volume comparison on the paper's layout of interest (2D-GP): the
    // two kernels stay within a grid dimension of each other. SUMMA's
    // broadcasts fan each block out to up to pr − 1 peers, but never
    // duplicate a B row per requesting rank the way the expand does, so
    // on a scale-free input (hub rows requested by almost everyone) the
    // factor actually lands *below* 1.
    let d_gp = builder.dist(Method::TwoDGp, p);
    let dm = DistCsrMatrix::from_global(&a, &d_gp);
    let mut ledger = CostLedger::new(Machine::cab());
    let ef_gp = spgemm_dist(&dm, &b, &mut ledger);
    let ef_gp_volume = ef_gp.expand.total_volume() + ef_gp.fold.total_volume();
    let factor = summa_gp_volume as f64 / ef_gp_volume as f64;
    eprintln!(
        "summa claims @ p=64: worst-layout max sends summa {summa_worst} vs expand/fold \
         {ef_worst}; 2D-GP volume summa {summa_gp_volume} vs expand/fold {ef_gp_volume} \
         (factor {factor:.2}, grid dim 8)"
    );
    assert!(
        factor > 1.0 / 8.0 && factor < 8.0,
        "2D-GP volume factor {factor} outside (1/pr, pr)"
    );
    assert!(
        factor < 1.0,
        "scale-free dedup should put SUMMA volume below expand/fold's, got {factor}"
    );
}
