//! The serving differential battery: every answer the resident
//! [`Engine`] produces — batched, plan-cached, budgeted, cache-hit or
//! cache-miss — must be **bitwise equal** to a from-scratch one-shot
//! [`sf2d_spmv::spmv`] of the same query against the same matrix.
//!
//! The sweep crosses batch widths {1, 3, 16} × p ∈ {1, 4, 16, 64} × all
//! six layouts × three generator families (R-MAT, Chung–Lu,
//! Erdős–Rényi). On top of the per-reply bits, each cell demands
//! **ledger/phase-shape identity**: the engine's billed history must
//! equal, superstep for superstep and bit for bit, a hand-rolled oracle
//! that chunks the same queries into the same SpMM batches — the engine
//! adds no hidden cost and loses no billed phase. Dedicated tests below
//! pin the cache-hit vs cache-miss paths (same bits either way) and the
//! budgeted wave-scheduled workspace cell.

use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{chung_lu, erdos_renyi, powerlaw_degrees, rmat, RmatConfig};
use sf2d_graph::CsrMatrix;
use sf2d_serve::{Engine, EngineConfig};
use std::sync::Arc;

const PROCS: [usize; 4] = [1, 4, 16, 64];
const BATCHES: [usize; 3] = [1, 3, 16];
const SEED: u64 = 0;
const NQUERIES: usize = 7;

fn queries_for(n: usize) -> Vec<Vec<f64>> {
    (0..NQUERIES)
        .map(|q| {
            (0..n)
                .map(|i| ((i * (q + 3) + 2 * q) % 11) as f64 - 5.0)
                .collect()
        })
        .collect()
}

/// One-shot oracle: a fresh distributed spmv of `x`, no engine anywhere.
fn one_shot(dm: &DistCsrMatrix, x: &[f64]) -> Vec<f64> {
    let xd = DistVector::from_global(Arc::clone(&dm.vmap), x);
    let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
    spmv(dm, &xd, &mut y, &mut CostLedger::new(Machine::cab()));
    y.to_global()
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
    let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
    assert_eq!(gb, wb, "{what}");
}

/// One differential cell: an engine at (`method`, `p`, `max_batch`)
/// versus the one-shot spmv oracle per reply, and versus a hand-batched
/// spmm oracle for the ledger phase shape.
fn check_cell(a: &CsrMatrix, dm: &DistCsrMatrix, want: &[Vec<f64>], method: Method, p: usize) {
    let queries = queries_for(a.nrows());
    for max_batch in BATCHES {
        let label = format!("{} p={p} batch={max_batch}", method.name());
        let cfg = EngineConfig::new(method, p)
            .with_seed(SEED)
            .with_max_batch(max_batch);
        let mut engine = Engine::new(a, cfg);
        let ids: Vec<u64> = queries.iter().map(|q| engine.submit(q.clone())).collect();
        let replies = engine.flush();
        assert_eq!(replies.len(), queries.len(), "{label}: reply count");
        for (reply, (id, w)) in replies.iter().zip(ids.iter().zip(want)) {
            assert_eq!(reply.id, *id, "{label}: submission order");
            assert_bits_eq(
                &reply.y,
                w,
                &format!("{label}: reply {id} vs one-shot spmv"),
            );
        }
        let nbatches = queries.len().div_ceil(max_batch) as u64;
        assert_eq!(engine.metrics.batches, nbatches, "{label}: batch count");
        assert_eq!(engine.metrics.cache_misses, 1, "{label}: warm plan only");
        assert_eq!(engine.metrics.cache_hits, nbatches, "{label}: all hits");

        // Ledger/phase-shape identity: chunk the same queries into the
        // same batches by hand and bill them on a fresh workspace. The
        // engine's history must match superstep-for-superstep.
        let mut ledger = CostLedger::new(Machine::cab());
        let mut ws = SpmvWorkspace::with_threads(1);
        for chunk in queries.chunks(max_batch) {
            let x = DistMultiVector::from_columns(Arc::clone(&dm.vmap), chunk);
            let mut y = DistMultiVector::zeros(Arc::clone(&dm.vmap), chunk.len());
            spmm_with(dm, &x, &mut y, &mut ledger, &mut ws);
        }
        assert_eq!(
            engine.ledger.history, ledger.history,
            "{label}: phase shape"
        );
        assert_eq!(
            engine.ledger.total.to_bits(),
            ledger.total.to_bits(),
            "{label}: ledger total bits"
        );
    }
}

fn sweep(a: &CsrMatrix) {
    let queries = queries_for(a.nrows());
    for p in PROCS {
        for method in Method::spmv_set(false) {
            // The oracle derives the layout exactly as the engine does:
            // same matrix, same seed, same LayoutBuilder.
            let dist = LayoutBuilder::new(a, SEED).dist(method, p);
            let dm = DistCsrMatrix::from_global(a, &dist);
            let want: Vec<Vec<f64>> = queries.iter().map(|q| one_shot(&dm, q)).collect();
            check_cell(a, &dm, &want, method, p);
        }
    }
}

#[test]
fn rmat_replies_match_one_shot_spmv_on_all_layouts_procs_and_batches() {
    sweep(&rmat(&RmatConfig::graph500(7), 11));
}

#[test]
fn chung_lu_replies_match_one_shot_spmv_on_all_layouts_procs_and_batches() {
    let degs = powerlaw_degrees(160, 2.2, 2, 40, 5);
    sweep(&chung_lu(&degs, 500, 0, 0.0, 5));
}

#[test]
fn erdos_renyi_replies_match_one_shot_spmv_on_all_layouts_procs_and_batches() {
    sweep(&erdos_renyi(150, 450, 13));
}

/// The two plan-resolution paths answer with the same bits: a cache hit
/// (warm plan), then a mutation forcing the miss/recompile path, then a
/// hit on the new plan — each compared to its own from-scratch oracle.
#[test]
fn cache_hit_and_cache_miss_paths_are_bitwise_identical() {
    let a = rmat(&RmatConfig::graph500(7), 11);
    let queries = queries_for(a.nrows());
    let cfg = EngineConfig::new(Method::TwoDGp, 16)
        .with_seed(SEED)
        .with_max_batch(4)
        .with_auto_repartition(false);
    let mut engine = Engine::new(&a, cfg);

    // Hit path: the construction-time plan serves the batch.
    let got = engine.query(&queries[0]);
    assert_eq!(engine.metrics.cache_hits, 1);
    let dist = LayoutBuilder::new(&a, SEED).dist(Method::TwoDGp, 16);
    let dm = DistCsrMatrix::from_global(&a, &dist);
    assert_bits_eq(&got, &one_shot(&dm, &queries[0]), "hit path");

    // Miss path: a mutation bumps the epoch; the next batch recompiles.
    let (i, mut j) = (0u32, 1u32);
    while engine.has_edge(i, j) {
        j += 1;
    }
    assert!(engine.insert_edge(i, j, 3.25));
    assert!(engine.active_is_stale());
    let misses = engine.metrics.cache_misses;
    let got = engine.query(&queries[1]);
    assert_eq!(
        engine.metrics.cache_misses,
        misses + 1,
        "took the miss path"
    );
    let mutated = engine.global_matrix();
    let dm = DistCsrMatrix::from_global(&mutated, &dist);
    assert_bits_eq(&got, &one_shot(&dm, &queries[1]), "miss path");

    // Hit on the recompiled plan: same bits as the miss that built it.
    let hits = engine.metrics.cache_hits;
    let again = engine.query(&queries[1]);
    assert_eq!(engine.metrics.cache_hits, hits + 1, "took the hit path");
    assert_bits_eq(&again, &got, "hit after miss");
}

/// The budgeted cell: a scratch budget small enough to force multi-wave
/// scheduling changes nothing observable — replies and the billed ledger
/// are byte-identical to the unbudgeted engine.
#[test]
fn budgeted_engine_is_bitwise_and_ledger_identical_to_unbudgeted() {
    let a = rmat(&RmatConfig::graph500(7), 11);
    let queries = queries_for(a.nrows());
    let base = EngineConfig::new(Method::TwoDBlock, 6)
        .with_seed(SEED)
        .with_max_batch(3);

    let mut plain = Engine::new(&a, base.clone());
    for q in &queries {
        plain.submit(q.clone());
    }
    let want = plain.flush();

    // 64 KiB is far below the width-3 working set of all six ranks at
    // once, so the wave scheduler must actually split.
    let mut tight = Engine::new(&a, base.with_budget(64 * 1024));
    for q in &queries {
        tight.submit(q.clone());
    }
    let got = tight.flush();
    assert_eq!(got, want, "budgeted replies");
    assert_eq!(
        tight.ledger.history, plain.ledger.history,
        "budgeted phase shape"
    );
    assert_eq!(
        tight.ledger.total.to_bits(),
        plain.ledger.total.to_bits(),
        "budgeted ledger total bits"
    );
}
