import json, statistics
from collections import defaultdict

rows = [json.loads(l) for l in open('results/table2.jsonl')]
probs = defaultdict(dict)
for r in rows:
    probs[(r['matrix'], r['p'])][r['method']] = r['sim_time']
red = {}
for k, methods in probs.items():
    gp = methods.get('2D-GP', methods.get('2D-HP'))
    others = [t for m, t in methods.items() if m not in ('2D-GP', '2D-HP')]
    red[k] = 100 * (min(others) - gp) / min(others)
vals = sorted(red.values())
best = sum(1 for k, methods in probs.items()
           if methods.get('2D-GP', methods.get('2D-HP')) <= min(methods.values()) * (1 + 1e-9))
win15 = sum(1 for k, methods in probs.items()
            if methods.get('2D-GP', methods.get('2D-HP')) <= min(methods.values()) * 1.5)
near = sum(1 for v in red.values() if v > -1)
print(f"instances={len(red)} best={best} ({100*best/len(red):.1f}%) within1.5x={win15}")
print(f"reductions: min={vals[0]:.1f} max={vals[-1]:.1f} mean={statistics.mean(vals):.1f} median={statistics.median(vals):.1f} cells>-1%={near}")
print("worst cells:", sorted(red.items(), key=lambda kv: kv[1])[:3])
print("best cells:", sorted(red.items(), key=lambda kv: kv[1])[-3:])
