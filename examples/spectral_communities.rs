//! Spectral analysis with the distributed eigensolver — the paper's §5.3
//! workload: the largest eigenpairs of the normalized Laplacian
//! `L̂ = I − D^{−1/2} A D^{−1/2}` reveal (near-)bipartite structure
//! (Kirkland & Paul \[23\]): an eigenvalue at 2 certifies a bipartite
//! component, and the matching eigenvector's sign pattern 2-colours it.
//!
//! We plant a bipartite subgraph inside a scale-free background, solve with
//! Block Krylov–Schur (block size 1, like the paper), and recover the
//! planted sides from the top eigenvector.
//!
//! Run with: `cargo run --release -p sf2d-examples --bin spectral_communities`

use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{erdos_renyi, rmat, RmatConfig};
use sf2d_core::sf2d_graph::CooMatrix;

fn main() {
    // Background: a small R-MAT graph on vertices [0, 1024).
    let background = rmat(&RmatConfig::graph500(10), 3);
    let n_bg = background.nrows();

    // Planted bipartite gadget: a complete-ish bipartite graph between two
    // 40-vertex sides appended after the background.
    let side = 40;
    let n = n_bg + 2 * side;
    let mut coo = CooMatrix::new(n, n);
    for (i, j, v) in background.iter() {
        coo.push(i, j, v);
    }
    let er = erdos_renyi(side * 2, 600, 9); // wiring pattern inside the gadget
    for (i, j, _) in er.iter() {
        // Keep only edges crossing the two sides: a pure bipartite gadget.
        if (i as usize) < side && (j as usize) >= side {
            coo.push_sym(n_bg as u32 + i, n_bg as u32 + j, 1.0);
        }
    }
    // One bridge so the graph is connected.
    coo.push_sym(0, n_bg as u32, 1.0);
    let a = CsrMatrix::from_coo(&coo);
    println!(
        "graph: {} vertices, bipartite gadget on the last {} of them",
        n,
        2 * side
    );

    // Distribute with 2D-GP on 16 ranks and solve for the 4 largest pairs.
    let mut builder = LayoutBuilder::new(&a, 0);
    let dist = builder.dist(Method::TwoDGp, 16);
    let stripped = a.without_diagonal();
    let degrees: Vec<usize> = (0..n).map(|i| stripped.row_nnz(i)).collect();
    let dm = DistCsrMatrix::from_global(&stripped, &dist);
    let op = NormalizedLaplacianOp::new(dm, &degrees);

    let cfg = KrylovSchurConfig {
        nev: 4,
        max_basis: 32,
        tol: 1e-8,
        max_restarts: 300,
        seed: 1,
    };
    let mut ledger = CostLedger::new(Machine::cab());
    let res = krylov_schur_largest(&op, &cfg, &mut ledger);

    println!("\nlargest eigenvalues of the normalized Laplacian:");
    for (v, r) in res.values.iter().zip(&res.residuals) {
        println!("  lambda = {v:.6}   (residual {r:.1e})");
    }
    println!("(an eigenvalue of ~2 certifies a bipartite component)");

    // The top eigenvector's signs 2-colour the gadget.
    let top = res.vectors[0].to_global();
    let mut correct = 0;
    for i in 0..side {
        let u = top[n_bg + i];
        let w = top[n_bg + side + i];
        if u * w < 0.0 {
            correct += 1;
        }
    }
    println!("\nsign test on the gadget: {correct}/{side} vertex pairs got opposite colours");
    println!("simulated solve time on 16 ranks: {:.4}s", ledger.total);
    assert!(res.values[0] > 1.95, "bipartite eigenvalue not found");
}
