//! The paper's recurring contrast, measured side by side: partitioning and
//! layout behave completely differently on **mesh-like** problems
//! (scientific computing) and **scale-free** graphs (data analysis).
//!
//! * On a mesh: GP crushes random layouts (locality exists and 1D
//!   partitioning finds it); randomization is a *bad* idea (§2.4).
//! * On a scale-free graph: block layouts collapse under load imbalance,
//!   message counts dominate at scale, and the 2D Cartesian GP layout is
//!   the only one that controls both.
//!
//! Run with: `cargo run --release -p sf2d-examples --bin mesh_vs_scalefree`

use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{grid_3d, rmat, RmatConfig};

fn report(label: &str, a: &CsrMatrix, p: usize) {
    println!(
        "### {label}: {} rows, {} nnz on {p} ranks",
        a.nrows(),
        a.nnz()
    );
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10}",
        "layout", "time (s)", "max msgs", "total CV", "nnz imbal"
    );
    let mut builder = LayoutBuilder::new(a, 0);
    for m in Method::spmv_set(false) {
        let dist = builder.dist(m, p);
        let row = spmv_experiment(a, &dist, Machine::cab(), 100);
        println!(
            "{:<12} {:>10.4} {:>10} {:>12} {:>10.2}",
            m.name(),
            row.sim_time,
            row.max_msgs,
            row.total_cv,
            row.nnz_imbalance
        );
    }
    println!();
}

fn main() {
    let p = 64;

    // A 3D finite-difference mesh: the scientific-computing regime.
    let mesh = grid_3d(22, 22, 22);
    report("3D mesh (22^3, 7-point stencil)", &mesh, p);

    // An R-MAT scale-free graph of comparable size.
    let sf = rmat(
        &RmatConfig {
            edge_factor: 3,
            ..RmatConfig::graph500(13)
        },
        9,
    );
    report("R-MAT scale-free graph", &sf, p);

    println!("reading guide:");
    println!("- mesh: 1D-GP's volume is a small fraction of 1D-Random's — locality");
    println!("  exists and the partitioner finds it (randomization is harmful here);");
    println!("- scale-free: every 1D layout pays ~p messages; the 2D layouts cap it");
    println!("  at 14, and among them the GP variant moves the fewest doubles —");
    println!("  the paper's 2D Cartesian graph partitioning.");
}
