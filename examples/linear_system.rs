//! Linear systems on scale-free graphs — the paper's §1 aside made
//! concrete: "our work applies immediately to iterative methods for linear
//! … systems of equations as well."
//!
//! Solves `(L + I) x = b` (a regularized graph Laplacian system, the kernel
//! of diffusion/semi-supervised-learning workloads) with distributed CG
//! under three layouts, showing that the layout changes the *cost* of every
//! iteration but not the mathematics.
//!
//! Run with: `cargo run --release -p sf2d-examples --bin linear_system`

use std::sync::Arc;

use sf2d_core::prelude::*;
use sf2d_core::sf2d_eigen::{conjugate_gradient, CgConfig};
use sf2d_core::sf2d_gen::{rmat, RmatConfig};
use sf2d_core::sf2d_graph::combinatorial_laplacian;
use sf2d_core::sf2d_spmv::{LinearOperator, PlainSpmvOp};

fn main() {
    // A scale-free graph and its regularized Laplacian.
    let a = rmat(
        &RmatConfig {
            edge_factor: 4,
            ..RmatConfig::graph500(12)
        },
        21,
    );
    let l = combinatorial_laplacian(&a).expect("square");
    let mut coo = l.to_coo();
    for i in 0..l.nrows() as u32 {
        coo.push(i, i, 1.0);
    }
    let spd = CsrMatrix::from_coo(&coo);
    println!(
        "system: (L + I) x = b on a {}-vertex scale-free graph ({} nonzeros)\n",
        spd.nrows(),
        spd.nnz()
    );

    // A ground-truth solution to check against.
    let x_true: Vec<f64> = (0..spd.nrows())
        .map(|i| ((i % 13) as f64 - 6.0) / 6.0)
        .collect();
    let b_global = spd.spmv_dense(&x_true);

    let p = 256;
    println!(
        "{:<12} {:>6} {:>14} {:>12} {:>12}",
        "layout", "iters", "sim time (s)", "max msgs", "max err"
    );
    let mut builder = LayoutBuilder::new(&spd, 0);
    for m in [Method::OneDBlock, Method::TwoDRandom, Method::TwoDGp] {
        let dist = builder.dist(m, p);
        let op = PlainSpmvOp::new(DistCsrMatrix::from_global(&spd, &dist));
        let b = DistVector::from_global(Arc::clone(op.vmap()), &b_global);
        let mut ledger = CostLedger::new(Machine::cab());
        let res = conjugate_gradient(
            &op,
            &b,
            &CgConfig {
                tol: 1e-10,
                max_iters: 500,
            },
            &mut ledger,
        );
        let err = res
            .x
            .to_global()
            .iter()
            .zip(&x_true)
            .map(|(g, w)| (g - w).abs())
            .fold(0.0f64, f64::max);
        let metrics = LayoutMetrics::compute(&spd, &dist);
        println!(
            "{:<12} {:>6} {:>14.4} {:>12} {:>12.2e}",
            m.name(),
            res.iterations,
            ledger.total,
            metrics.max_msgs(),
            err
        );
        assert!(res.converged);
    }
    println!("\nsame iteration count and same solution everywhere — only the");
    println!("per-iteration communication price changes with the layout.");
}
