//! Observability demo: trace the same SpMV under a 1D and a 2D layout and
//! let the critical-path analyzer explain *why* 2D wins — the per-superstep
//! bounding rank and bounding α/β/γ term, not just the total.
//!
//! Partitioning runs inside the trace window, so the report also shows the
//! host wall-clock cost of building each layout (the `gp:*` and `dist:*`
//! spans) next to the simulated SpMV time it buys.
//!
//! Run with: `cargo run --release -p sf2d-examples --bin trace_compare`
//!
//! Pass a directory argument to also dump the two Chrome traces there
//! (open them in Perfetto / `chrome://tracing`).

use std::sync::Arc;

use sf2d_core::prelude::*;
use sf2d_core::sf2d_obs as obs;

fn traced_spmv(a: &CsrMatrix, m: Method, p: usize) -> Vec<TraceEvent> {
    obs::enable();
    // A fresh builder per method: partitioning happens inside the trace
    // window, so its wall spans land in the report.
    let mut builder = LayoutBuilder::new(a, 0);
    let dist = builder.dist(m, p);
    let dm = DistCsrMatrix::from_global(a, &dist);
    let x = DistVector::random(Arc::clone(&dm.vmap), 1);
    let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
    let mut ledger = CostLedger::new(Machine::cab());
    spmv_with(&dm, &x, &mut y, &mut ledger, &mut SpmvWorkspace::new());
    obs::disable();
    obs::take_events()
}

fn main() {
    let out_dir = std::env::args().nth(1);
    let a = sf2d_core::sf2d_gen::rmat(&sf2d_core::sf2d_gen::RmatConfig::graph500(13), 42);
    let p = 64;
    let machine = Machine::cab();

    for m in [Method::OneDGp, Method::TwoDGp] {
        let events = traced_spmv(&a, m, p);
        println!("==== {} ====\n", m.name());
        println!(
            "{}",
            sf2d_core::report::trace_markdown(&events, &machine, 3)
        );
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create trace dir");
            let path = std::path::Path::new(dir).join(format!("{}.json", m.name()));
            obs::write_events(&path, obs::TraceFormat::Chrome, &events).expect("write trace");
            println!("chrome trace -> {}\n", path.display());
        }
    }
}
