//! Quickstart: generate a scale-free graph, lay it out six ways on 64
//! simulated ranks, and watch the paper's headline effect — **2D Cartesian
//! graph partitioning (2D-GP) cuts both message counts and communication
//! volume**, so its simulated SpMV time wins.
//!
//! Run with: `cargo run --release -p sf2d-examples --bin quickstart`

use sf2d_core::prelude::*;

fn main() {
    // Set SF2D_TRACE=trace.json to capture a Chrome trace of every
    // simulated superstep below (SF2D_TRACE_FORMAT=jsonl for raw events).
    sf2d_core::sf2d_obs::install_from_env();

    // An R-MAT graph with Graph500 parameters — a stand-in for a social
    // network: power-law degrees, hubs, little locality.
    let a = sf2d_core::sf2d_gen::rmat(&sf2d_core::sf2d_gen::RmatConfig::graph500(13), 42);
    let stats = sf2d_core::sf2d_graph::stats::DegreeStats::of(&a);
    println!(
        "graph: {} vertices, {} edges, max degree {} ({}x the average)\n",
        stats.nrows,
        stats.nnz / 2,
        stats.max_row_nnz,
        stats.skew.round()
    );

    let p = 64;
    let mut builder = LayoutBuilder::new(&a, 0);
    println!("simulated time for 100 SpMV on {p} ranks (Infiniband-class machine):\n");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "layout", "time (s)", "max msgs", "total CV", "nnz imbal"
    );
    let mut best: Option<(f64, &'static str)> = None;
    for m in Method::spmv_set(false) {
        let dist = builder.dist(m, p);
        let row = spmv_experiment(&a, &dist, Machine::cab(), 100);
        println!(
            "{:<12} {:>10.4} {:>10} {:>12} {:>12.2}",
            m.name(),
            row.sim_time,
            row.max_msgs,
            row.total_cv,
            row.nnz_imbalance
        );
        if best.map(|(t, _)| row.sim_time < t).unwrap_or(true) {
            best = Some((row.sim_time, m.name()));
        }
    }
    let (t, name) = best.unwrap();
    println!("\nwinner: {name} at {t:.4}s — 2D layouts cap messages at pr+pc-2 = 14,");
    println!("and the graph-partitioned ones move the fewest doubles.");

    if let Ok(Some((path, events))) = sf2d_core::sf2d_obs::finish() {
        println!("\ntrace: {} events -> {}", events.len(), path.display());
    }
}
