//! PageRank on a synthetic web crawl — the paper's opening workload ("a
//! well-known algorithm for web graphs is PageRank, which in its simplest
//! form is the power method applied to a matrix derived from the weblink
//! adjacency matrix", §1).
//!
//! Builds a host-structured web graph (the locality web crawls really
//! have), converts it to the column-stochastic Google matrix, and runs
//! distributed PageRank under two layouts to show the layout choice
//! changing the iteration cost but not the ranking.
//!
//! Run with: `cargo run --release -p sf2d-examples --bin pagerank`

use sf2d_core::prelude::*;
use sf2d_core::sf2d_eigen::pagerank;
use sf2d_core::sf2d_gen::{chung_lu, powerlaw_degrees};
use sf2d_core::sf2d_graph::adjacency_to_pagerank;

fn main() {
    // SF2D_TRACE=trace.json captures every simulated superstep of both
    // PageRank runs as a Chrome trace (one pid per simulated rank).
    sf2d_core::sf2d_obs::install_from_env();

    // A web-like graph: power-law in/out degrees, strong host locality.
    let n = 20_000;
    let degrees = powerlaw_degrees(n, 2.1, 2, 2_000, 7);
    let adj = chung_lu(&degrees, 60_000, 800, 0.7, 7);
    let p_matrix = adjacency_to_pagerank(&adj).expect("square matrix");
    println!(
        "web graph: {} pages, {} links",
        p_matrix.nrows(),
        p_matrix.nnz()
    );

    let p = 64;
    let mut ranks_by_layout = Vec::new();
    for method in [Method::OneDBlock, Method::TwoDGp] {
        let mut builder = LayoutBuilder::new(&adj, 0);
        let dist = builder.dist(method, p);
        let dm = DistCsrMatrix::from_global(&p_matrix, &dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let res = pagerank(&dm, 0.85, 1e-9, 500, &mut ledger);
        println!(
            "\n{}: converged in {} iterations, simulated time {:.4}s on {p} ranks",
            method.name(),
            res.iterations,
            ledger.total
        );
        ranks_by_layout.push(res.ranks.to_global());
    }

    // Rankings are layout-independent (the math doesn't care where the
    // nonzeros live) — verify, then show the top pages.
    let (a, b) = (&ranks_by_layout[0], &ranks_by_layout[1]);
    let max_diff = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    println!("\nmax rank difference between layouts: {max_diff:.2e}");

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| b[j].total_cmp(&b[i]));
    println!("\ntop 5 pages by PageRank:");
    for &i in order.iter().take(5) {
        println!("  page {:>6}: rank {:.6}", i, b[i]);
    }

    if let Ok(Some((path, events))) = sf2d_core::sf2d_obs::finish() {
        println!("\ntrace: {} events -> {}", events.len(), path.display());
    }
}
