//! Renders the paper's Figures 2–4 in ASCII: how the six layouts place the
//! nonzeros of one small scale-free matrix on a 2x3 process grid, the
//! permuted-matrix view of Figure 3, and the Algorithm 2 edge-assignment
//! table of Figure 4.
//!
//! Run with: `cargo run --release -p sf2d-examples --bin layout_explorer`

use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{rmat, RmatConfig};
use sf2d_core::sf2d_graph::Permutation;

/// One character per rank, `.` for structural zeros.
fn render(a: &CsrMatrix, dist: &MatrixDist, title: &str) {
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuv";
    println!("--- {title} (max msgs bound: {}) ---", dist.message_bound());
    for i in 0..a.nrows() {
        let mut line = String::with_capacity(a.ncols());
        for j in 0..a.ncols() as u32 {
            if a.get(i, j).is_some() {
                line.push(GLYPHS[dist.nonzero_owner(i as u32, j) as usize % 32] as char);
            } else {
                line.push('.');
            }
        }
        println!("{line}");
    }
    let m = LayoutMetrics::compute(a, dist);
    println!(
        "nnz imbal {:.2} | max msgs {} | total CV {}\n",
        m.nnz_imbalance(),
        m.max_msgs(),
        m.total_comm_volume()
    );
}

fn main() {
    let a = rmat(
        &RmatConfig {
            edge_factor: 3,
            ..RmatConfig::graph500(5)
        },
        11,
    );
    let n = a.nrows();
    let p = 6;
    let (pr, pc) = grid_shape(p);
    println!(
        "matrix: {}x{} with {} nonzeros; {} ranks as a {}x{} grid\n",
        n,
        n,
        a.nnz(),
        p,
        pr,
        pc
    );

    let mut builder = LayoutBuilder::new(&a, 0);
    render(
        &a,
        &builder.dist(Method::OneDBlock, p),
        "Figure 2 left: 1D block",
    );
    render(
        &a,
        &builder.dist(Method::TwoDBlock, p),
        "Figure 2 right: 2D block (stripes)",
    );
    let gp2 = builder.dist(Method::TwoDGp, p);
    render(
        &a,
        &gp2,
        "2D-GP on the natural ordering (looks scattered...)",
    );

    // Figure 3: permute rows/columns by part number — the block structure
    // appears, with dense diagonal blocks.
    let perm = Permutation::sort_by_part(gp2.rpart(), p);
    let pa = perm.permute_matrix(&a).expect("square");
    // The permuted layout maps permuted index k to the same rank its
    // original vertex had.
    let inv = perm.inverse();
    let permuted_rpart: Vec<u32> = (0..n).map(|k| gp2.rpart()[inv.apply(k)]).collect();
    let part = sf2d_core::sf2d_partition::Partition::new(permuted_rpart, p);
    let gp2_permuted = MatrixDist::cartesian_2d(&part, pr, pc, false);
    render(
        &pa,
        &gp2_permuted,
        "Figure 3: the same 2D-GP layout after the conceptual P^T A P permutation",
    );

    // Figure 4: where do cut edges between parts q1 and q2 go?
    println!("--- Figure 4: Algorithm 2 assignment of cut edges (part q_i -> part q_j) ---");
    print!("{:>6}", "");
    for q2 in 0..p as u32 {
        print!("{q2:>6}");
    }
    println!();
    let rpart_of_part: Vec<u32> = (0..p as u32).collect(); // part q = vertex in part q
    for q1 in 0..p as u32 {
        print!("{q1:>6}");
        for q2 in 0..p as u32 {
            // An edge from a vertex in part q1 to one in part q2 is owned by
            // rank phi(q1) + psi(q2)*pr.
            let rank = (rpart_of_part[q1 as usize] % pr) + (rpart_of_part[q2 as usize] / pr) * pr;
            print!("{rank:>6}");
        }
        println!();
    }
    println!("\nrows/columns aligned with a part keep their edges (diagonal = owner);");
    println!("'diagonal' grid moves land on third-party ranks — the volume the method");
    println!("trades for its O(sqrt p) message bound.");
}
