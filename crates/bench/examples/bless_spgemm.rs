//! Regenerates the golden SpGEMM experiment rows in `results/spgemm.jsonl`.
//!
//! Run after any change that legitimately moves the GP partitions (the
//! 1D/2D-GP rows depend on the partitioner's output bits):
//!
//! ```text
//! cargo run --release -p sf2d-bench --example bless_spgemm
//! ```
//!
//! The partitioner-independent rows (Block/Random layouts) must come out
//! byte-identical to the previous file — if they move, the *kernel* or
//! cost model changed and the diff needs explaining, not blessing.

use sf2d_core::experiment::labeled_spgemm;
use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{rmat, RmatConfig};

fn main() {
    let scale = 7u32;
    let p = 16usize;
    let a = rmat(&RmatConfig::graph500(scale), 4);
    let mut builder = LayoutBuilder::new(&a, 0);
    let label = format!("rmat-s{scale}");
    let mut out = String::new();
    for m in Method::spmv_set(false) {
        let dist = builder.dist(m, p);
        for row in [
            labeled_spgemm(spgemm_experiment(&a, &dist, Machine::cab()), &label, m),
            labeled_spgemm(summa_experiment(&a, &dist, Machine::cab()), &label, m),
        ] {
            out.push_str(&serde_json::to_string(&row).expect("row serializes"));
            out.push('\n');
        }
    }
    let path = "results/spgemm.jsonl";
    std::fs::write(path, out).expect("write results/spgemm.jsonl");
    eprintln!("bless_spgemm: wrote {path} ({label}, p = {p}, six layouts x two algos)");
}
