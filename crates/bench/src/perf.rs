//! Perf-regression comparison over `BENCH_*.json` tracker files — the
//! engine behind the `perf_diff` binary.
//!
//! A tracker file is an arbitrary JSON document; [`flatten`] turns it
//! into a flat `metric-path -> number` map (array elements are keyed by
//! their identifying fields — `name`, `method`, `algo`, `scenario`,
//! `scale`, `k`, `threads`, `p` — so a row keeps its identity when the
//! sweep order changes), and
//! [`compare`] diffs the intersection of two such maps under a tolerance.
//!
//! What counts as a regression depends on the metric's *direction*,
//! classified from its key ([`direction_of`]):
//!
//! * `median_ns` / `wall_ns` / `sim_time` / `latency` / `p50` / `p99` —
//!   wall-clock-like, **higher is worse**;
//! * `speedup` / `ratio` / `qps` — relative or rate metrics, **lower is
//!   worse**;
//! * everything else is informational (compared for the report, never a
//!   failure);
//! * `meta.*` (provenance) and `phases_*` (attribution of a single
//!   representative run, inherently noisy) are excluded outright.
//!
//! Two escape hatches keep the gate honest on weak hosts: speedup checks
//! are skipped loudly when the current run's `meta.host_cpus < 2` (one
//! core cannot demonstrate parallel speedup), and `relative_only` demotes
//! the machine-absolute metrics — wall-clock-like ones *and* `qps`
//! (throughput is as machine-bound as latency, just inverted) — to
//! informational. That is the right setting when baseline and current ran
//! on different machines; dimensionless `speedup`/`ratio` metrics keep
//! gating there, which is exactly why deterministic serving ratios
//! (cache-hit rate, gather amortization) are reported as `*_ratio`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::Value;

/// Which way a metric gets worse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Wall-clock-like: a rise beyond tolerance is a regression.
    HigherIsWorse,
    /// Speedup-like: a drop beyond tolerance is a regression.
    LowerIsWorse,
    /// Compared and reported, never a failure.
    Info,
}

/// Classifies `key` (a flattened metric path); `None` = excluded from
/// comparison entirely.
pub fn direction_of(key: &str) -> Option<Direction> {
    if key.starts_with("meta.") || key.contains(".meta.") || key.contains("phases_") {
        return None;
    }
    if key.contains("median_ns")
        || key.contains("wall_ns")
        || key.contains("sim_time")
        || key.contains("latency")
        || key.contains("p50")
        || key.contains("p99")
    {
        return Some(Direction::HigherIsWorse);
    }
    if key.contains("speedup") || key.contains("ratio") || key.contains("qps") {
        return Some(Direction::LowerIsWorse);
    }
    Some(Direction::Info)
}

/// Flattens a JSON document into `metric-path -> number`. Objects join
/// with `.`; array elements are keyed `[name=gp,scale=12,...]` from
/// their identifying fields when present, by index otherwise. Strings
/// are dropped; booleans flatten to 0/1.
pub fn flatten(doc: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(doc, String::new(), &mut out);
    out
}

fn walk(v: &Value, prefix: String, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::U64(n) => {
            out.insert(prefix, *n as f64);
        }
        Value::I64(n) => {
            out.insert(prefix, *n as f64);
        }
        Value::F64(f) => {
            out.insert(prefix, *f);
        }
        Value::Bool(b) => {
            out.insert(prefix, if *b { 1.0 } else { 0.0 });
        }
        Value::Map(entries) => {
            for (k, val) in entries {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                walk(val, key, out);
            }
        }
        Value::Seq(items) => {
            for (i, item) in items.iter().enumerate() {
                let seg = item
                    .as_map()
                    .and_then(|m| identity_of(m))
                    .unwrap_or_else(|| i.to_string());
                walk(item, format!("{prefix}[{seg}]"), out);
            }
        }
        Value::Null | Value::Str(_) => {}
    }
}

/// Builds a stable identity for an array-of-rows element from its
/// identifying fields, e.g. `name=gp,scale=12,threads=4`.
fn identity_of(row: &[(String, Value)]) -> Option<String> {
    const ID_FIELDS: [&str; 8] = [
        "name", "method", "algo", "scenario", "scale", "k", "threads", "p",
    ];
    let parts: Vec<String> = ID_FIELDS
        .iter()
        .filter_map(|f| {
            row.iter().find(|(k, _)| k == f).map(|(_, v)| match v {
                Value::Str(s) => format!("{f}={s}"),
                Value::U64(n) => format!("{f}={n}"),
                Value::I64(n) => format!("{f}={n}"),
                Value::F64(x) => format!("{f}={x}"),
                other => format!("{f}={other:?}"),
            })
        })
        .collect();
    (!parts.is_empty()).then(|| parts.join(","))
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Flattened metric path.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed percent change, `(current - baseline) / baseline * 100`.
    pub delta_pct: f64,
    /// The metric's direction class.
    pub direction: Direction,
    /// Whether the change exceeds tolerance in the worse direction.
    pub regressed: bool,
}

/// The outcome of one baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct PerfDiff {
    /// Every intersecting metric, in key order.
    pub deltas: Vec<MetricDelta>,
    /// Loud notes about checks that were skipped and keys present on
    /// only one side.
    pub notes: Vec<String>,
    /// Tolerance used, in percent.
    pub tolerance_pct: f64,
}

impl PerfDiff {
    /// The metrics that regressed beyond tolerance.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Whether the comparison passes (no regression).
    pub fn passed(&self) -> bool {
        self.deltas.iter().all(|d| !d.regressed)
    }
}

/// Compares two tracker documents under `tolerance_pct`. With
/// `relative_only`, absolute wall-clock metrics are demoted to
/// informational (use when the two files come from different machines);
/// speedup checks are skipped automatically when the current run reports
/// `meta.host_cpus < 2`.
pub fn compare(
    baseline: &Value,
    current: &Value,
    tolerance_pct: f64,
    relative_only: bool,
) -> PerfDiff {
    let base = flatten(baseline);
    let cur = flatten(current);
    let mut notes = Vec::new();

    let host_cpus = cur
        .get("meta.host_cpus")
        .or_else(|| cur.get("host_cpus"))
        .copied()
        .unwrap_or(f64::INFINITY);
    let skip_speedups = host_cpus < 2.0;
    if skip_speedups {
        notes.push(format!(
            "speedup/ratio checks SKIPPED: current run reports host_cpus = {host_cpus}; \
             one core cannot demonstrate parallel speedup"
        ));
    }
    if relative_only {
        notes.push(
            "absolute wall-clock metrics demoted to informational (--relative-only)".to_string(),
        );
    }

    let only_base = base.keys().filter(|k| !cur.contains_key(*k)).count();
    let only_cur = cur.keys().filter(|k| !base.contains_key(*k)).count();
    if only_base > 0 {
        notes.push(format!("{only_base} metric(s) present only in baseline"));
    }
    if only_cur > 0 {
        notes.push(format!("{only_cur} metric(s) present only in current"));
    }

    let mut deltas = Vec::new();
    for (key, &b) in &base {
        let Some(&c) = cur.get(key) else { continue };
        let Some(mut dir) = direction_of(key) else {
            continue;
        };
        if relative_only && dir == Direction::HigherIsWorse {
            dir = Direction::Info;
        }
        // Throughput is machine-absolute like wall clock (its inverse),
        // unlike the dimensionless speedup/ratio metrics it shares a
        // direction with.
        if relative_only && dir == Direction::LowerIsWorse && key.contains("qps") {
            dir = Direction::Info;
        }
        if skip_speedups && dir == Direction::LowerIsWorse {
            dir = Direction::Info;
        }
        let delta_pct = if b.abs() < 1e-12 {
            0.0
        } else {
            (c - b) / b * 100.0
        };
        let regressed = match dir {
            Direction::HigherIsWorse => delta_pct > tolerance_pct,
            Direction::LowerIsWorse => -delta_pct > tolerance_pct,
            Direction::Info => false,
        };
        deltas.push(MetricDelta {
            key: key.clone(),
            baseline: b,
            current: c,
            delta_pct,
            direction: dir,
            regressed,
        });
    }
    PerfDiff {
        deltas,
        notes,
        tolerance_pct,
    }
}

/// Renders the comparison as a markdown report: verdict, notes,
/// regressions first, then every compared metric.
pub fn markdown(diff: &PerfDiff, baseline_name: &str, current_name: &str) -> String {
    let mut out = String::new();
    let regs = diff.regressions();
    let _ = writeln!(out, "# Perf comparison\n");
    let _ = writeln!(out, "- baseline: `{baseline_name}`");
    let _ = writeln!(out, "- current: `{current_name}`");
    let _ = writeln!(out, "- tolerance: {:.1}%", diff.tolerance_pct);
    let _ = writeln!(
        out,
        "- verdict: **{}** ({} compared, {} regressed)\n",
        if regs.is_empty() { "PASS" } else { "FAIL" },
        diff.deltas.len(),
        regs.len()
    );
    for n in &diff.notes {
        let _ = writeln!(out, "> {n}");
    }
    if !diff.notes.is_empty() {
        out.push('\n');
    }
    if !regs.is_empty() {
        let _ = writeln!(out, "## Regressions\n");
        let _ = writeln!(out, "| metric | baseline | current | change |");
        let _ = writeln!(out, "|---|---:|---:|---:|");
        for d in &regs {
            let _ = writeln!(
                out,
                "| {} | {:.4} | {:.4} | {:+.1}% |",
                d.key, d.baseline, d.current, d.delta_pct
            );
        }
        out.push('\n');
    }
    let _ = writeln!(out, "## All compared metrics\n");
    let _ = writeln!(out, "| metric | baseline | current | change | status |");
    let _ = writeln!(out, "|---|---:|---:|---:|---|");
    for d in &diff.deltas {
        let status = match (d.direction, d.regressed) {
            (_, true) => "REGRESSED",
            (Direction::Info, false) => "info",
            (_, false) => "ok",
        };
        let _ = writeln!(
            out,
            "| {} | {:.4} | {:.4} | {:+.1}% | {status} |",
            d.key, d.baseline, d.current, d.delta_pct
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(par_ns: u64, speedup: f64, host_cpus: u64) -> Value {
        let text = format!(
            r#"{{
              "meta": {{ "schema_version": 1, "bin": "bench_partition",
                         "host_cpus": {host_cpus}, "threads": 8,
                         "git_rev": "abc1234", "timestamp_unix": 1700000000 }},
              "description": "test",
              "host_cpus": {host_cpus},
              "cases": [
                {{ "name": "gp", "scale": 12, "k": 16, "threads": 8,
                   "median_ns_seq": 1000000, "median_ns_par": {par_ns},
                   "speedup": {speedup}, "identical": true,
                   "phases_par": {{ "matching": 123456 }} }},
                {{ "name": "mondriaan", "scale": 12, "k": 16, "threads": 8,
                   "median_ns_seq": 2000000, "median_ns_par": 900000,
                   "speedup": 2.2, "identical": true }}
              ]
            }}"#
        );
        serde_json::from_str(&text).expect("sample parses")
    }

    #[test]
    fn flatten_keys_rows_by_identity_not_index() {
        let m = flatten(&sample(500_000, 2.0, 8));
        assert!(m.contains_key("cases[name=gp,scale=12,k=16,threads=8].median_ns_par"));
        assert!(m.contains_key("cases[name=mondriaan,scale=12,k=16,threads=8].speedup"));
        assert_eq!(
            m["cases[name=gp,scale=12,k=16,threads=8].identical"], 1.0,
            "bools flatten to 0/1"
        );
    }

    #[test]
    fn meta_and_phases_are_excluded_from_comparison() {
        assert_eq!(direction_of("meta.host_cpus"), None);
        assert_eq!(direction_of("cases[name=gp].phases_par.matching"), None);
        assert_eq!(
            direction_of("cases[name=gp].median_ns_par"),
            Some(Direction::HigherIsWorse)
        );
        assert_eq!(
            direction_of("cases[name=gp].speedup"),
            Some(Direction::LowerIsWorse)
        );
        assert_eq!(
            direction_of("ratio_1d_gp_over_2d_gp"),
            Some(Direction::LowerIsWorse)
        );
        assert_eq!(
            direction_of("cases[name=gp].samples"),
            Some(Direction::Info)
        );
    }

    #[test]
    fn serving_latency_and_throughput_keys_classify_by_direction() {
        assert_eq!(
            direction_of("serve[scenario=steady].latency_p50_ns"),
            Some(Direction::HigherIsWorse)
        );
        assert_eq!(
            direction_of("serve[scenario=steady].latency_p99_ns"),
            Some(Direction::HigherIsWorse)
        );
        assert_eq!(
            direction_of("serve[scenario=steady].qps"),
            Some(Direction::LowerIsWorse)
        );
        assert_eq!(
            direction_of("serve[scenario=steady].cache_hit_ratio"),
            Some(Direction::LowerIsWorse)
        );
        assert_eq!(
            direction_of("serve[scenario=steady].gather_amortization_ratio"),
            Some(Direction::LowerIsWorse)
        );
    }

    fn serve_sample(p50: u64, p99: u64, qps: f64, hit_ratio: f64) -> Value {
        let text = format!(
            r#"{{
              "meta": {{ "schema_version": 1, "bin": "bench_serve",
                         "host_cpus": 8, "threads": 8,
                         "git_rev": "abc1234", "timestamp_unix": 1700000000 }},
              "serve": [
                {{ "name": "steady", "p": 16,
                   "latency_p50_ns": {p50}, "latency_p99_ns": {p99},
                   "qps": {qps}, "cache_hit_ratio": {hit_ratio},
                   "gather_amortization_ratio": 4.0 }}
              ]
            }}"#
        );
        serde_json::from_str(&text).expect("serve sample parses")
    }

    #[test]
    fn latency_regressions_gate_but_are_demoted_under_relative_only() {
        let base = serve_sample(1000, 5000, 2000.0, 0.9);
        // p99 +60%, qps -50%: both regress on the same machine ...
        let cur = serve_sample(1000, 8000, 1000.0, 0.9);
        let diff = compare(&base, &cur, 15.0, false);
        assert!(!diff.passed());
        let regs = diff.regressions();
        assert!(regs.iter().any(|d| d.key.contains("latency_p99_ns")));
        assert!(regs.iter().any(|d| d.key.contains("qps")));
        // ... and are both informational cross-machine.
        assert!(compare(&base, &cur, 15.0, true).passed());
    }

    #[test]
    fn deterministic_serving_ratios_gate_even_under_relative_only() {
        let base = serve_sample(1000, 5000, 2000.0, 0.9);
        // The cache-hit ratio collapsing is a real behavior change, not a
        // machine artifact: it must fail even with --relative-only.
        let cur = serve_sample(9000, 50000, 100.0, 0.4);
        let diff = compare(&base, &cur, 15.0, true);
        assert!(!diff.passed());
        assert!(diff
            .regressions()
            .iter()
            .all(|d| d.key.contains("cache_hit_ratio")));
    }

    #[test]
    fn self_compare_is_clean() {
        let doc = sample(500_000, 2.0, 8);
        let diff = compare(&doc, &doc, 15.0, false);
        assert!(diff.passed());
        assert!(!diff.deltas.is_empty());
        assert!(diff.deltas.iter().all(|d| d.delta_pct == 0.0));
    }

    #[test]
    fn injected_slowdown_beyond_tolerance_fails() {
        let base = sample(500_000, 2.0, 8);
        let cur = sample(750_000, 2.0, 8); // +50% parallel time
        let diff = compare(&base, &cur, 15.0, false);
        assert!(!diff.passed());
        let regs = diff.regressions();
        assert!(regs
            .iter()
            .any(|d| d.key.contains("median_ns_par") && d.key.contains("name=gp")));
        // Within-tolerance change passes.
        let diff_ok = compare(&base, &sample(550_000, 2.0, 8), 15.0, false);
        assert!(diff_ok.passed(), "{:?}", diff_ok.regressions());
    }

    #[test]
    fn speedup_drop_fails_but_is_skipped_on_one_core_hosts() {
        let base = sample(500_000, 2.0, 8);
        let cur = sample(500_000, 1.0, 8); // speedup halved
        let diff = compare(&base, &cur, 15.0, false);
        assert!(!diff.passed());
        assert!(diff.regressions().iter().all(|d| d.key.contains("speedup")));

        // Same drop, but the current host has one core: skipped loudly.
        let one_core = sample(500_000, 1.0, 1);
        let diff = compare(&base, &one_core, 15.0, false);
        assert!(diff.passed());
        assert!(diff.notes.iter().any(|n| n.contains("SKIPPED")));
    }

    #[test]
    fn relative_only_ignores_wall_clock_shifts() {
        let base = sample(500_000, 2.0, 8);
        let cur = sample(5_000_000, 2.0, 8); // 10x slower machine, same speedup
        assert!(!compare(&base, &cur, 15.0, false).passed());
        assert!(compare(&base, &cur, 15.0, true).passed());
        // ...but a speedup drop still fails under --relative-only.
        assert!(!compare(&base, &sample(5_000_000, 1.0, 8), 15.0, true).passed());
    }

    #[test]
    fn markdown_report_names_the_verdict_and_regressions() {
        let base = sample(500_000, 2.0, 8);
        let diff = compare(&base, &sample(750_000, 2.0, 8), 15.0, false);
        let md = markdown(&diff, "base.json", "cur.json");
        assert!(md.contains("**FAIL**"));
        assert!(md.contains("## Regressions"));
        assert!(md.contains("median_ns_par"));
        let clean = markdown(
            &compare(&base, &base, 15.0, false),
            "base.json",
            "base.json",
        );
        assert!(clean.contains("**PASS**"));
        assert!(!clean.contains("## Regressions"));
    }
}
