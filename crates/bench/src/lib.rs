//! # sf2d-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§5). One binary per artefact:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `table1` | Table 1 — matrix inventory |
//! | `table2` | Table 2 — 100×SpMV times, 6 layouts × 10 matrices × rank counts |
//! | `table3` | Table 3 — com-liveJournal metrics detail |
//! | `table4` | Table 4 — eigensolver times incl. multiconstraint layouts |
//! | `table5` | Table 5 — hollywood-2009 eigensolver metrics detail |
//! | `fig5`   | Figure 5 — SpMV strong scaling curves |
//! | `fig6_7` | Figures 6 & 7 — performance profiles |
//! | `fig8`   | Figure 8 — R-MAT weak scaling |
//! | `fig9`   | Figure 9 — eigensolver strong scaling curves |
//!
//! All binaries accept `--shrink <power-of-2>` (extra downscale of the
//! proxy matrices below their default 1/64-ish scale; default 2),
//! `--procs <csv>` (rank counts; default `64,256,1024,4096`), and
//! `--out <dir>` (where JSON-lines results land; default `results/`).
//! Figures that re-plot Table 2/4 data load those JSON files when present
//! instead of recomputing.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use sf2d_core::prelude::*;
use sf2d_core::sf2d_graph::io::binary;

pub mod perf;

/// The shared header every `BENCH_*.json` tracker file starts with, so
/// the [`perf`] harness (and a human reading a diff) can tell *what*
/// produced the numbers before comparing them: schema version, producing
/// binary, host core count, thread budget, git revision, and a unix
/// timestamp. Comparison excludes the header — it describes provenance,
/// not performance.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BenchMeta {
    /// Bumped when a tracker's row shape changes incompatibly.
    pub schema_version: u32,
    /// The producing binary (`bench_partition`, `bench_spmv`, ...).
    pub bin: String,
    /// `available_parallelism` on the producing host.
    pub host_cpus: u64,
    /// The largest thread budget the run used (1 for single-threaded
    /// trackers).
    pub threads: u64,
    /// Short git revision of the producing tree, `"unknown"` outside a
    /// checkout.
    pub git_rev: String,
    /// Seconds since the unix epoch at collection time.
    pub timestamp_unix: u64,
}

/// Current `BenchMeta::schema_version` for all trackers.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

impl BenchMeta {
    /// Collects the header for `bin` with thread budget `threads`.
    pub fn collect(bin: &str, threads: usize) -> BenchMeta {
        let git_rev = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        BenchMeta {
            schema_version: BENCH_SCHEMA_VERSION,
            bin: bin.to_string(),
            host_cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1) as u64,
            threads: threads as u64,
            git_rev,
            timestamp_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }
}

/// Parsed command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Extra shrink factor on proxy matrices (power of two).
    pub shrink: usize,
    /// Rank counts to sweep.
    pub procs: Vec<usize>,
    /// Output directory for JSON-lines results.
    pub out: PathBuf,
    /// Seeds for eigensolver averaging (paper uses ten; default three).
    pub seeds: Vec<u64>,
    /// Chrome-trace destination (`--trace PATH`, or the `SF2D_TRACE`
    /// environment variable). `None` = tracing off, the default.
    pub trace: Option<PathBuf>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            shrink: 2,
            procs: vec![64, 256, 1024, 4096],
            out: PathBuf::from("results"),
            seeds: vec![11, 22, 33],
            trace: std::env::var_os("SF2D_TRACE").map(PathBuf::from),
        }
    }
}

impl HarnessOpts {
    /// Parses `std::env::args()`; unknown flags abort with a usage message.
    pub fn from_args() -> HarnessOpts {
        let mut opts = HarnessOpts::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need_value = |i: usize| -> &str {
                args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("missing value after {}", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--shrink" => {
                    opts.shrink = need_value(i).parse().expect("numeric --shrink");
                    i += 2;
                }
                "--procs" => {
                    opts.procs = need_value(i)
                        .split(',')
                        .map(|t| t.parse().expect("numeric proc count"))
                        .collect();
                    i += 2;
                }
                "--out" => {
                    opts.out = PathBuf::from(need_value(i));
                    i += 2;
                }
                "--seeds" => {
                    opts.seeds = need_value(i)
                        .split(',')
                        .map(|t| t.parse().expect("numeric seed"))
                        .collect();
                    i += 2;
                }
                "--trace" => {
                    opts.trace = Some(PathBuf::from(need_value(i)));
                    i += 2;
                }
                other => {
                    eprintln!(
                        "unknown flag {other}\nusage: --shrink N --procs a,b,c --seeds s1,s2 --out DIR --trace FILE"
                    );
                    std::process::exit(2);
                }
            }
        }
        assert!(
            opts.shrink.is_power_of_two(),
            "--shrink must be a power of two"
        );
        opts
    }

    /// Ensures the output directory exists and returns the path for a
    /// result file.
    pub fn out_file(&self, name: &str) -> PathBuf {
        fs::create_dir_all(&self.out).expect("create results dir");
        self.out.join(name)
    }
}

/// Median wall-clock nanoseconds of `samples` runs of `f`, after one
/// warmup run (populates caches, sizes workspaces). Shared by the
/// `bench_spmv` and `bench_partition` trackers so their numbers are
/// comparable.
pub fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut times: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Runs `f` with the tracing facade enabled and writes the captured events
/// as a Chrome `trace_event` file at `path` (open it in Perfetto /
/// `chrome://tracing`) plus a markdown critical-path summary next to it at
/// `<path>.md`, analyzed under `machine`'s α-β-γ parameters. Any counters
/// and histograms the traced run recorded are appended to the summary as
/// a "Metrics" section (with p50/p99 columns). Returns `f`'s result and
/// the number of captured events.
pub fn capture_trace<R>(path: &Path, machine: &Machine, f: impl FnOnce() -> R) -> (R, usize) {
    use sf2d_core::sf2d_obs as obs;
    obs::enable();
    let r = f();
    obs::disable();
    let events = obs::take_events();
    let registry = obs::take_registry();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir).expect("create trace dir");
        }
    }
    obs::write_events(path, obs::TraceFormat::Chrome, &events).expect("write chrome trace");
    let mut md = sf2d_core::report::trace_markdown(&events, machine, 5);
    let metrics = obs::sink::registry_markdown(&registry);
    if !metrics.is_empty() {
        md.push_str("\n## Metrics\n\n");
        md.push_str(&metrics);
    }
    fs::write(PathBuf::from(format!("{}.md", path.display())), md).expect("write trace summary");
    (r, events.len())
}

/// Loads (or generates and caches) a proxy matrix at the harness scale.
/// Cached under `target/sf2d-cache/` in the fast binary format so repeated
/// harness runs skip generation.
pub fn load_proxy(cfg: &ProxyConfig, shrink: usize) -> CsrMatrix {
    let scaled = cfg.scaled(shrink);
    let cache_dir = Path::new("target/sf2d-cache");
    // The config hash busts the cache whenever proxy parameters change.
    let cfg_hash = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        format!("{scaled:?}").hash(&mut h);
        h.finish()
    };
    let path = cache_dir.join(format!("{}_s{}_{:016x}.csr", cfg.name, shrink, cfg_hash));
    if let Ok(f) = fs::File::open(&path) {
        if let Ok(m) = binary::read_binary_csr(std::io::BufReader::new(f)) {
            return m;
        }
    }
    let m = proxy_matrix(&scaled, 0xF00D ^ shrink as u64);
    if fs::create_dir_all(cache_dir).is_ok() {
        if let Ok(f) = fs::File::create(&path) {
            let _ = binary::write_binary_csr(&m, std::io::BufWriter::new(f));
        }
    }
    m
}

/// The machine model for a proxy run: the base machine with its
/// workload-proportional terms scaled by `paper_nnz / proxy_nnz`, so each
/// proxy nonzero stands in for the right number of real ones and the
/// latency-vs-bandwidth-vs-compute regime matches the paper's full-size
/// runs (see `Machine::with_workload_scale`).
pub fn machine_for(cfg: &ProxyConfig, a: &CsrMatrix, base: Machine) -> Machine {
    let s = cfg.paper_nnz as f64 / a.nnz().max(1) as f64;
    base.with_workload_scale(s.max(1.0))
}

/// Appends JSON-lines records to a results file.
pub fn write_jsonl<T: serde::Serialize>(path: &Path, rows: &[T]) {
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open results file");
    for r in rows {
        writeln!(f, "{}", serde_json::to_string(r).unwrap()).expect("write row");
    }
}

/// Reads JSON-lines records back (for figures that re-plot table data).
pub fn read_jsonl<T: serde::de::DeserializeOwned>(path: &Path) -> Option<Vec<T>> {
    let text = fs::read_to_string(path).ok()?;
    let rows: Result<Vec<T>, _> = text.lines().map(serde_json::from_str).collect();
    rows.ok()
}

/// Renders a crude ASCII log-log strong-scaling chart: one line per method,
/// columns = rank counts. Good enough to see who scales and who flattens.
pub fn ascii_scaling_chart(title: &str, procs: &[usize], series: &[(String, Vec<f64>)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = write!(out, "{:<12}", "method");
    for p in procs {
        let _ = write!(out, "{p:>12}");
    }
    let _ = writeln!(out);
    for (name, times) in series {
        let _ = write!(out, "{name:<12}");
        for t in times {
            let _ = write!(out, "{:>12}", sf2d_core::report::fmt_secs(*t));
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_proxy_caches_and_roundtrips() {
        let cfg = sf2d_core::sf2d_gen::proxy::by_name("cit-Patents").unwrap();
        let a = load_proxy(cfg, 64);
        let b = load_proxy(cfg, 64); // from cache
        assert_eq!(a, b);
        assert_eq!(a.nrows(), cfg.scaled(64).rows);
    }

    #[test]
    fn jsonl_roundtrip() {
        let dir = std::env::temp_dir().join("sf2d_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.jsonl");
        let _ = std::fs::remove_file(&path);
        let rows = vec![1i32, 2, 3];
        write_jsonl(&path, &rows);
        let back: Vec<i32> = read_jsonl(&path).unwrap();
        assert_eq!(back, rows);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn capture_trace_writes_valid_chrome_json_and_summary() {
        use sf2d_core::sf2d_sim::{Phase, PhaseCost};

        let dir = std::env::temp_dir().join("sf2d_bench_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let machine = Machine::cab();
        let (total, n) = capture_trace(&path, &machine, || {
            let mut ledger = CostLedger::new(machine);
            ledger.superstep_uniform(
                Phase::Expand,
                PhaseCost {
                    msgs: 3,
                    bytes: 4096,
                    flops: 0,
                },
                4,
            );
            ledger.total
        });
        assert!(total > 0.0);
        assert!(n >= 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let x_events = sf2d_core::sf2d_obs::sink::validate_chrome_trace(&text).unwrap();
        assert!(x_events >= 4, "one slice per rank expected, got {x_events}");
        let md = std::fs::read_to_string(format!("{}.md", path.display())).unwrap();
        assert!(md.contains("# Trace summary"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(format!("{}.md", path.display()));
    }

    #[test]
    fn chart_renders_all_series() {
        let s = ascii_scaling_chart(
            "demo",
            &[64, 256],
            &[
                ("1D-Block".into(), vec![1.0, 2.0]),
                ("2D-GP".into(), vec![0.5, 0.2]),
            ],
        );
        assert!(s.contains("1D-Block") && s.contains("2D-GP") && s.contains("0.20"));
    }
}
