//! SpGEMM workload tracker: runs **both** distributed `C = A·Aᵀ` kernels
//! — the expand/fold path and the Sparse SUMMA stage-broadcast path — on
//! an R-MAT graph under all six layouts of the SpMV study, prints a
//! table3-style metrics row per (layout, algo), and writes
//! `BENCH_spgemm.json` with the per-row message / volume / flop /
//! predicted-time columns, wall-clock medians of both 2D-GP kernels for
//! perf tracking, and the headline communication-avoiding comparison:
//! SUMMA's worst per-rank send count over the layouts (bounded by the
//! grid, not the layout) against expand/fold's (which degrades to
//! `p − 1` under 1D layouts).
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p sf2d-bench --bin bench_spgemm
//! ```
//!
//! The file lands in the current directory (pass a path argument to put
//! it elsewhere). `--scale N` shrinks/grows the R-MAT problem (default
//! 10); `--p N` sets the rank count (default 64).

use sf2d_core::experiment::{labeled_spgemm, spgemm_experiment, summa_experiment, SpgemmRow};
use sf2d_core::prelude::*;
use sf2d_core::report::fmt_secs;
use sf2d_core::sf2d_gen::{rmat, RmatConfig};

const SAMPLES: usize = 5;

#[derive(serde::Serialize)]
struct BenchReport {
    meta: sf2d_bench::BenchMeta,
    description: String,
    matrix: String,
    p: u64,
    /// One row per (layout, algo): max messages per exchange, total
    /// volume (doubles), per-rank max and total flops, predicted seconds.
    /// `algo` is `"expand_fold"` or `"summa"`.
    rows: Vec<SpgemmRow>,
    /// Median wall-clock ns for one compiled SpGEMM on the 2D-GP layout.
    wall_ns_2d_gp: u64,
    /// Median wall-clock ns for one Sparse SUMMA SpGEMM on 2D-GP.
    wall_ns_2d_gp_summa: u64,
    /// Predicted-time ratio 1D-GP / 2D-GP (the worked comparison in
    /// EXPERIMENTS.md).
    ratio_1d_gp_over_2d_gp: f64,
    /// Headline: worst-over-layouts max per-rank sends for expand/fold
    /// (hits `p − 1` on the 1D layouts).
    msgs_worst_layout_expand_fold: u64,
    /// Headline: worst-over-layouts max per-rank sends for SUMMA — grid-
    /// bounded, so it stays near `√p` no matter the layout.
    msgs_worst_layout_summa: u64,
    /// Worst per-rank sends in any *single* SUMMA stage across all rows;
    /// must respect the communication-avoiding `(pr − 1) + (pc − 1)`
    /// bound (asserted in `tests/tests/paper_claims.rs`).
    msgs_summa_stage_max: u64,
}

fn main() {
    let mut out_path = "BENCH_spgemm.json".to_string();
    let mut scale = 10u32;
    let mut p = 64usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> &str {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => {
                scale = need_value(i).parse().expect("numeric --scale");
                i += 2;
            }
            "--p" => {
                p = need_value(i).parse().expect("numeric --p");
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\nusage: bench_spgemm [OUT.json] --scale N --p N");
                std::process::exit(2);
            }
            positional => {
                out_path = positional.to_string();
                i += 1;
            }
        }
    }

    let a = rmat(&RmatConfig::graph500(scale), 7);
    let mut builder = LayoutBuilder::new(&a, 0);
    eprintln!(
        "bench_spgemm: C = A*A^T, {} rows, {} nnz, p={p}, six layouts",
        a.nrows(),
        a.nnz()
    );

    println!(
        "| p | method | algo | max msgs (exp/fold) | stage msgs | volume | max flops | time |"
    );
    println!("|---:|---|---|---:|---:|---:|---:|---:|");
    let mut rows = Vec::new();
    for m in Method::spmv_set(false) {
        let dist = builder.dist(m, p);
        for row in [
            labeled_spgemm(spgemm_experiment(&a, &dist, Machine::cab()), "rmat", m),
            labeled_spgemm(summa_experiment(&a, &dist, Machine::cab()), "rmat", m),
        ] {
            println!(
                "| {p} | {} | {} | {}/{} | {} | {} | {} | {} |",
                row.method,
                row.algo,
                row.expand_max_msgs,
                row.fold_max_msgs,
                row.stage_max_msgs,
                row.total_volume,
                row.max_flops,
                fmt_secs(row.sim_time),
            );
            rows.push(row);
        }
    }

    // Wall-clock both kernels on the paper's layout of interest,
    // workspaces reused across samples as an iterative caller would.
    let dist = builder.dist(Method::TwoDGp, p);
    let dm = DistCsrMatrix::from_global(&a, &dist);
    let b = a.transpose();
    let threads = RuntimeConfig::from_env().threads;
    let mut ws = SpgemmWorkspace::with_threads(threads);
    let wall_ns_2d_gp = sf2d_bench::median_ns(SAMPLES, || {
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_with(&dm, &b, &mut ledger, &mut ws);
        std::hint::black_box(c.nnz);
    });
    let mut sws = SummaWorkspace::with_threads(threads);
    let wall_ns_2d_gp_summa = sf2d_bench::median_ns(SAMPLES, || {
        let mut ledger = CostLedger::new(Machine::cab());
        let c = summa_with(&dm, &dist, &b, &mut ledger, &mut sws);
        std::hint::black_box(c.nnz);
    });

    let worst_msgs = |algo: &str| {
        rows.iter()
            .filter(|r| r.algo == algo)
            .map(|r| r.expand_max_msgs + r.fold_max_msgs)
            .max()
            .unwrap_or(0)
    };
    let msgs_worst_layout_expand_fold = worst_msgs("expand_fold");
    let msgs_worst_layout_summa = worst_msgs("summa");
    let msgs_summa_stage_max = rows.iter().map(|r| r.stage_max_msgs).max().unwrap_or(0);

    let time_of = |name: &str| {
        rows.iter()
            .find(|r| r.method == name && r.algo == "expand_fold")
            .map(|r| r.sim_time)
            .unwrap_or(f64::NAN)
    };
    let ratio = time_of("1D-GP") / time_of("2D-GP");
    let report = BenchReport {
        meta: sf2d_bench::BenchMeta::collect("bench_spgemm", threads),
        description: format!(
            "C = A*A^T on rmat graph500 scale {scale}, p = {p}: simulated traffic/work/time \
             per (layout, algo) for expand/fold and Sparse SUMMA, plus median wall-clock ns \
             over {SAMPLES} samples for both kernels on 2D-GP"
        ),
        matrix: format!("rmat graph500 scale {scale} ({} nnz)", a.nnz()),
        p: p as u64,
        rows,
        wall_ns_2d_gp,
        wall_ns_2d_gp_summa,
        ratio_1d_gp_over_2d_gp: ratio,
        msgs_worst_layout_expand_fold,
        msgs_worst_layout_summa,
        msgs_summa_stage_max,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_spgemm.json");
    eprintln!(
        "bench_spgemm: 1D-GP/2D-GP predicted-time ratio {ratio:.2}, worst-layout max sends \
         expand/fold {msgs_worst_layout_expand_fold} vs summa {msgs_worst_layout_summa} \
         (stage max {msgs_summa_stage_max}), 2D-GP wall {wall_ns_2d_gp} ns \
         (summa {wall_ns_2d_gp_summa} ns) -> {out_path}"
    );
}
