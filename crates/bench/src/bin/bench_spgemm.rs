//! SpGEMM workload tracker: runs the distributed `C = A·Aᵀ` kernel on an
//! R-MAT graph under all six layouts of the SpMV study, prints a
//! table3-style metrics row per layout, and writes `BENCH_spgemm.json`
//! with the per-layout message / volume / flop / predicted-time columns
//! plus a wall-clock median of the 2D-GP kernel for perf tracking.
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p sf2d-bench --bin bench_spgemm
//! ```
//!
//! The file lands in the current directory (pass a path argument to put
//! it elsewhere). `--scale N` shrinks/grows the R-MAT problem (default
//! 10); `--p N` sets the rank count (default 64).

use sf2d_core::experiment::{labeled_spgemm, spgemm_experiment, SpgemmRow};
use sf2d_core::prelude::*;
use sf2d_core::report::fmt_secs;
use sf2d_core::sf2d_gen::{rmat, RmatConfig};

const SAMPLES: usize = 5;

#[derive(serde::Serialize)]
struct BenchReport {
    meta: sf2d_bench::BenchMeta,
    description: String,
    matrix: String,
    p: u64,
    /// One row per layout: max messages per exchange, total volume
    /// (doubles), per-rank max and total flops, predicted seconds.
    rows: Vec<SpgemmRow>,
    /// Median wall-clock ns for one compiled SpGEMM on the 2D-GP layout.
    wall_ns_2d_gp: u64,
    /// Predicted-time ratio 1D-GP / 2D-GP (the worked comparison in
    /// EXPERIMENTS.md).
    ratio_1d_gp_over_2d_gp: f64,
}

fn main() {
    let mut out_path = "BENCH_spgemm.json".to_string();
    let mut scale = 10u32;
    let mut p = 64usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> &str {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => {
                scale = need_value(i).parse().expect("numeric --scale");
                i += 2;
            }
            "--p" => {
                p = need_value(i).parse().expect("numeric --p");
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\nusage: bench_spgemm [OUT.json] --scale N --p N");
                std::process::exit(2);
            }
            positional => {
                out_path = positional.to_string();
                i += 1;
            }
        }
    }

    let a = rmat(&RmatConfig::graph500(scale), 7);
    let mut builder = LayoutBuilder::new(&a, 0);
    eprintln!(
        "bench_spgemm: C = A*A^T, {} rows, {} nnz, p={p}, six layouts",
        a.nrows(),
        a.nnz()
    );

    println!("| p | method | max msgs (exp/fold) | volume | max flops | time |");
    println!("|---:|---|---:|---:|---:|---:|");
    let mut rows = Vec::new();
    for m in Method::spmv_set(false) {
        let dist = builder.dist(m, p);
        let row = labeled_spgemm(spgemm_experiment(&a, &dist, Machine::cab()), "rmat", m);
        println!(
            "| {p} | {} | {}/{} | {} | {} | {} |",
            row.method,
            row.expand_max_msgs,
            row.fold_max_msgs,
            row.total_volume,
            row.max_flops,
            fmt_secs(row.sim_time),
        );
        rows.push(row);
    }

    // Wall-clock the compiled kernel on the paper's layout of interest,
    // workspace reused across samples as an iterative caller would.
    let dist = builder.dist(Method::TwoDGp, p);
    let dm = DistCsrMatrix::from_global(&a, &dist);
    let b = a.transpose();
    let threads = RuntimeConfig::from_env().threads;
    let mut ws = SpgemmWorkspace::with_threads(threads);
    let wall_ns_2d_gp = sf2d_bench::median_ns(SAMPLES, || {
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_with(&dm, &b, &mut ledger, &mut ws);
        std::hint::black_box(c.nnz);
    });

    let time_of = |name: &str| {
        rows.iter()
            .find(|r| r.method == name)
            .map(|r| r.sim_time)
            .unwrap_or(f64::NAN)
    };
    let ratio = time_of("1D-GP") / time_of("2D-GP");
    let report = BenchReport {
        meta: sf2d_bench::BenchMeta::collect("bench_spgemm", threads),
        description: format!(
            "C = A*A^T on rmat graph500 scale {scale}, p = {p}: simulated per-layout \
             traffic/work/time plus median wall-clock ns over {SAMPLES} samples for 2D-GP"
        ),
        matrix: format!("rmat graph500 scale {scale} ({} nnz)", a.nnz()),
        p: p as u64,
        rows,
        wall_ns_2d_gp,
        ratio_1d_gp_over_2d_gp: ratio,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_spgemm.json");
    eprintln!(
        "bench_spgemm: 1D-GP/2D-GP predicted-time ratio {ratio:.2}, \
         2D-GP wall {wall_ns_2d_gp} ns -> {out_path}"
    );
}
