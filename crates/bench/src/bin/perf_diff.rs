//! Perf-regression gate over `BENCH_*.json` tracker files: compares a
//! current tracker against a committed baseline and exits nonzero when
//! any wall-clock metric rose (or any speedup/ratio fell) beyond the
//! tolerance. See `sf2d_bench::perf` for the direction rules.
//!
//! ```text
//! cargo run --release -p sf2d-bench --bin perf_diff -- \
//!     --baseline BENCH_partition_ci.json --current trace/BENCH_partition_smoke.json \
//!     --tolerance 15 --relative-only --report trace/perf_report.md
//! ```
//!
//! `--tolerance P` is the allowed percent change (default 15).
//! `--relative-only` restricts failures to dimensionless metrics
//! (speedup, ratio) — the right setting when baseline and current come
//! from different machines, as in CI. `--report PATH` additionally writes
//! the full markdown comparison. Exits 0 on pass, 1 on regression, 2 on
//! usage/IO errors. Speedup checks are skipped loudly when the current
//! run reports `host_cpus < 2`.

fn main() {
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut tolerance = 15.0f64;
    let mut relative_only = false;
    let mut report: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> &str {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--baseline" => {
                baseline = Some(need_value(i).to_string());
                i += 2;
            }
            "--current" => {
                current = Some(need_value(i).to_string());
                i += 2;
            }
            "--tolerance" => {
                tolerance = need_value(i)
                    .trim_end_matches('%')
                    .parse()
                    .expect("numeric --tolerance");
                i += 2;
            }
            "--relative-only" => {
                relative_only = true;
                i += 1;
            }
            "--report" => {
                report = Some(need_value(i).to_string());
                i += 2;
            }
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: perf_diff --baseline FILE --current FILE \
                     [--tolerance P] [--relative-only] [--report FILE.md]"
                );
                std::process::exit(2);
            }
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        eprintln!("perf_diff: --baseline and --current are both required");
        std::process::exit(2);
    };
    let load = |path: &str| -> serde::Value {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf_diff: {path}: {e}");
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("perf_diff: {path}: not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let diff =
        sf2d_bench::perf::compare(&load(&baseline), &load(&current), tolerance, relative_only);
    for n in &diff.notes {
        eprintln!("perf_diff: note: {n}");
    }
    if let Some(path) = report {
        let md = sf2d_bench::perf::markdown(&diff, &baseline, &current);
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        std::fs::write(&path, md).unwrap_or_else(|e| {
            eprintln!("perf_diff: write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("perf_diff: report -> {path}");
    }
    let regs = diff.regressions();
    if regs.is_empty() {
        eprintln!(
            "perf_diff: PASS — {} metric(s) within {tolerance}% of {baseline}",
            diff.deltas.len()
        );
    } else {
        eprintln!(
            "perf_diff: FAIL — {} of {} metric(s) regressed beyond {tolerance}%:",
            regs.len(),
            diff.deltas.len()
        );
        for d in &regs {
            eprintln!(
                "  {}: {:.4} -> {:.4} ({:+.1}%)",
                d.key, d.baseline, d.current, d.delta_pct
            );
        }
        std::process::exit(1);
    }
}
