//! Regenerates the paper's **Figure 9**: eigensolver strong-scaling curves
//! for hollywood-2009, com-orkut and rmat_26 across the eight layouts.
//! Loads `results/table4.jsonl` (run `table4` first); recomputes missing
//! cells.
//!
//! The shape to check against the paper: 1D methods stop scaling above
//! ~1024 ranks; 2D layouts keep scaling to 4096.

use sf2d_bench::{ascii_scaling_chart, load_proxy, machine_for, read_jsonl, HarnessOpts};
use sf2d_core::experiment::labeled_eigen;
use sf2d_core::prelude::*;
use sf2d_core::EigenRow;

fn main() {
    let opts = HarnessOpts::from_args();
    // Eigen runs take an extra shrink (x4; x16 for the huge R-MAT whose
    // proxy is otherwise a million rows). Not more for the R-MAT: below
    // scale 16 the hub row alone exceeds a part's nonzero budget at p = 64,
    // and HP's vector distribution degenerates.
    let eigen_shrink = |name: &str| -> usize {
        if name == "rmat_26" {
            (opts.shrink * 16).min(1 << 12)
        } else {
            (opts.shrink * 4).min(1 << 12)
        }
    };
    let cached: Option<Vec<EigenRow>> = read_jsonl(&opts.out_file("table4.jsonl"));

    for name in ["hollywood-2009", "com-orkut", "rmat_26"] {
        let cfg = sf2d_core::sf2d_gen::proxy::by_name(name).unwrap();
        let methods = Method::eigen_set(cfg.use_hp);
        let mut series: Vec<(String, Vec<f64>)> = methods
            .iter()
            .map(|m| (m.name().to_string(), Vec::new()))
            .collect();

        for &p in &opts.procs {
            for (i, &m) in methods.iter().enumerate() {
                let hit = cached.as_ref().and_then(|rows| {
                    rows.iter()
                        .find(|r| r.matrix == name && r.p == p && r.method == m.name())
                        .map(|r| r.solve_time)
                });
                let t = hit.unwrap_or_else(|| {
                    let a = load_proxy(cfg, eigen_shrink(name));
                    let machine = machine_for(cfg, &a, Machine::cab());
                    let mut builder = LayoutBuilder::new(&a, 0);
                    let dist = builder.dist(m, p);
                    let ks = KrylovSchurConfig::paper(0);
                    labeled_eigen(
                        eigen_experiment(&a, &dist, machine, &ks, &opts.seeds),
                        name,
                        m,
                    )
                    .solve_time
                });
                series[i].1.push(t);
            }
        }
        println!(
            "{}",
            ascii_scaling_chart(
                &format!("Figure 9 — {name}: eigensolve strong scaling (s)"),
                &opts.procs,
                &series
            )
        );
    }
}
