//! Wall-clock SpMV/SpMM kernel tracker: times the compiled fast path
//! against the gid-based reference executor and writes `BENCH_spmv.json`
//! (median ns per kernel invocation) so successive PRs can track the
//! perf trajectory without digging through criterion output.
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p sf2d-bench --bin bench_spmv
//! ```
//!
//! The file lands in the current directory (pass a path argument to put
//! it elsewhere). `--scale N` shrinks/grows the R-MAT problem (default
//! 12); `--trace FILE` (or `SF2D_TRACE=FILE`) additionally captures one
//! *untimed* traced SpMV + SpMM after the timed loops and writes a Chrome
//! trace plus a `<FILE>.md` critical-path summary — tracing never runs
//! inside the timed region, so the recorded medians are unaffected.

use std::path::PathBuf;
use std::sync::Arc;

use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{rmat, RmatConfig};
use sf2d_core::sf2d_spmv::{reference, spmm_with, spmv_with, DistMultiVector, SpmvWorkspace};
use sf2d_core::LayoutBuilder;

const SAMPLES: usize = 7;
const SPMV_ITERS: usize = 100;
const SPMM_COLS: usize = 4;

#[derive(serde::Serialize)]
struct KernelResult {
    name: String,
    median_ns_per_iter: u64,
    samples: u64,
}

#[derive(serde::Serialize)]
struct BenchReport {
    meta: sf2d_bench::BenchMeta,
    description: String,
    matrix: String,
    layout: String,
    p: u64,
    kernels: Vec<KernelResult>,
    speedup_spmv100: f64,
    speedup_spmm4: f64,
}

/// Median wall-clock nanoseconds of `SAMPLES` runs of `f`.
fn median_ns(f: impl FnMut()) -> u64 {
    sf2d_bench::median_ns(SAMPLES, f)
}

fn main() {
    let mut out_path = "BENCH_spmv.json".to_string();
    let mut scale = 12u32;
    let mut trace: Option<PathBuf> = std::env::var_os("SF2D_TRACE").map(PathBuf::from);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> &str {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => {
                scale = need_value(i).parse().expect("numeric --scale");
                i += 2;
            }
            "--trace" => {
                trace = Some(PathBuf::from(need_value(i)));
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!(
                    "unknown flag {flag}\nusage: bench_spmv [OUT.json] --scale N --trace FILE"
                );
                std::process::exit(2);
            }
            positional => {
                out_path = positional.to_string();
                i += 1;
            }
        }
    }

    // The acceptance scenario: a 2D-GP layout at p = 256 on a scale-free
    // graph, the configuration every table harness hammers hardest.
    let p = 256usize;
    let a = rmat(&RmatConfig::graph500(scale), 7);
    let mut builder = LayoutBuilder::new(&a, 0);
    let dist = builder.dist(Method::TwoDGp, p);
    let dm = DistCsrMatrix::from_global(&a, &dist);

    let x = DistVector::random(Arc::clone(&dm.vmap), 1);
    let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
    let mut ws = SpmvWorkspace::new();

    eprintln!(
        "bench_spmv: {} rows, {} nnz, 2D-GP, p={p}, {SPMV_ITERS}-iteration SpMV + {SPMM_COLS}-column SpMM",
        a.nrows(),
        a.nnz()
    );

    let compiled_spmv = median_ns(|| {
        let mut ledger = CostLedger::new(Machine::cab());
        for _ in 0..SPMV_ITERS {
            spmv_with(&dm, &x, &mut y, &mut ledger, &mut ws);
        }
        std::hint::black_box(ledger.total);
    });
    let reference_spmv = median_ns(|| {
        let mut ledger = CostLedger::new(Machine::cab());
        for _ in 0..SPMV_ITERS {
            reference::spmv_ref(&dm, &x, &mut y, &mut ledger);
        }
        std::hint::black_box(ledger.total);
    });

    let cols: Vec<Vec<f64>> = (0..SPMM_COLS).map(|_| x.to_global()).collect();
    let xm = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);
    let mut ym = DistMultiVector::zeros(Arc::clone(&dm.vmap), SPMM_COLS);
    let compiled_spmm = median_ns(|| {
        let mut ledger = CostLedger::new(Machine::cab());
        spmm_with(&dm, &xm, &mut ym, &mut ledger, &mut ws);
        std::hint::black_box(ledger.total);
    });
    let reference_spmm = median_ns(|| {
        let mut ledger = CostLedger::new(Machine::cab());
        reference::spmm_ref(&dm, &xm, &mut ym, &mut ledger);
        std::hint::black_box(ledger.total);
    });

    let report = BenchReport {
        meta: sf2d_bench::BenchMeta::collect("bench_spmv", 1),
        description: format!(
            "median wall-clock ns per kernel invocation over {SAMPLES} samples \
             (spmv kernels run {SPMV_ITERS} iterations per invocation)"
        ),
        matrix: format!("rmat graph500 scale {scale} ({} nnz)", a.nnz()),
        layout: "2D-GP".to_string(),
        p: p as u64,
        kernels: vec![
            KernelResult {
                name: format!("spmv{SPMV_ITERS}/compiled"),
                median_ns_per_iter: compiled_spmv,
                samples: SAMPLES as u64,
            },
            KernelResult {
                name: format!("spmv{SPMV_ITERS}/reference"),
                median_ns_per_iter: reference_spmv,
                samples: SAMPLES as u64,
            },
            KernelResult {
                name: format!("spmm{SPMM_COLS}/compiled"),
                median_ns_per_iter: compiled_spmm,
                samples: SAMPLES as u64,
            },
            KernelResult {
                name: format!("spmm{SPMM_COLS}/reference"),
                median_ns_per_iter: reference_spmm,
                samples: SAMPLES as u64,
            },
        ],
        speedup_spmv100: reference_spmv as f64 / compiled_spmv as f64,
        speedup_spmm4: reference_spmm as f64 / compiled_spmm as f64,
    };

    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_spmv.json");
    eprintln!(
        "bench_spmv: spmv {:.2}x, spmm {:.2}x -> {out_path}",
        report.speedup_spmv100, report.speedup_spmm4
    );

    // Traced run strictly after the timed loops: one SpMV + one SpMM with
    // the facade on, so the medians above never pay for instrumentation.
    if let Some(path) = trace {
        let machine = Machine::cab();
        let (_, n) = sf2d_bench::capture_trace(&path, &machine, || {
            let mut ledger = CostLedger::new(machine);
            spmv_with(&dm, &x, &mut y, &mut ledger, &mut ws);
            spmm_with(&dm, &xm, &mut ym, &mut ledger, &mut ws);
        });
        eprintln!(
            "bench_spmv: trace ({n} events) -> {} (+ .md summary)",
            path.display()
        );
    }
}
