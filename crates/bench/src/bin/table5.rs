//! Regenerates the paper's **Table 5**: the hollywood-2009 eigensolver
//! detail for the 2D layouts — nonzero imbalance, **vector imbalance**,
//! max messages, total communication volume, SpMV time vs total solve
//! time.
//!
//! The story this table tells: plain 2D-GP balances nonzeros but not
//! vector entries, so orthogonalization (vector work) dominates its solve
//! time; multiconstraint 2D-GP-MC balances both and wins.

use sf2d_bench::{load_proxy, machine_for, write_jsonl, HarnessOpts};
use sf2d_core::experiment::labeled_eigen;
use sf2d_core::prelude::*;
use sf2d_core::report::fmt_secs;

fn main() {
    let opts = HarnessOpts::from_args();
    // Only a 2x extra shrink here: the vector-imbalance story needs the
    // proxy's degree skew, which smaller proxies flatten (their hub degree
    // is capped at half the vertex count).
    let shrink = (opts.shrink * 2).min(1 << 12);
    let cfg = sf2d_core::sf2d_gen::proxy::by_name("hollywood-2009").unwrap();
    let a = load_proxy(cfg, shrink);
    let machine = machine_for(cfg, &a, Machine::cab());
    let mut builder = LayoutBuilder::new(&a, 0);
    let ks = KrylovSchurConfig::paper(0);
    let out = opts.out_file("table5.jsonl");
    let _ = std::fs::remove_file(&out);

    let methods = [
        Method::TwoDBlock,
        Method::TwoDRandom,
        Method::TwoDGp,
        Method::TwoDGpMc,
    ];

    println!(
        "# Table 5 — hollywood-2009 eigensolver detail (proxy: {} rows, {} nnz)",
        a.nrows(),
        a.nnz()
    );
    println!(
        "| p | method | nz imbal | vec imbal | max msgs | total CV | spmv time | solve time |"
    );
    println!("|---:|---|---:|---:|---:|---:|---:|---:|");
    for &p in &opts.procs {
        let mut rows = Vec::new();
        for m in methods {
            let dist = builder.dist(m, p);
            let row = labeled_eigen(
                eigen_experiment(&a, &dist, machine, &ks, &opts.seeds),
                cfg.name,
                m,
            );
            println!(
                "| {} | {} | {:.1} | {:.1} | {} | {:.1}M | {} | {} |",
                p,
                m.name(),
                row.nnz_imbalance,
                row.vec_imbalance,
                row.max_msgs,
                row.total_cv as f64 / 1e6,
                fmt_secs(row.spmv_time),
                fmt_secs(row.solve_time),
            );
            rows.push(row);
        }
        write_jsonl(&out, &rows);
    }
}
