//! Regenerates the paper's **Table 1**: the matrix inventory (rows,
//! nonzeros, max nonzeros/row), for the proxy matrices side by side with
//! the paper's originals.

use sf2d_bench::{load_proxy, HarnessOpts};
use sf2d_core::prelude::*;
use sf2d_core::sf2d_graph::stats::{powerlaw_exponent_mle, DegreeStats};

fn main() {
    let opts = HarnessOpts::from_args();
    println!(
        "# Table 1 — input matrices (proxy @ extra shrink {}x)",
        opts.shrink
    );
    println!(
        "| matrix | rows | nnz | max nnz/row | skew | γ̂ | paper rows | paper nnz | paper max/row |"
    );
    println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for cfg in PAPER_MATRICES {
        let a = load_proxy(cfg, opts.shrink);
        let s = DegreeStats::of(&a);
        let gamma = powerlaw_exponent_mle(&a, 4)
            .map(|g| format!("{g:.2}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "| {} | {} | {} | {} | {:.0} | {} | {} | {} | {} |",
            cfg.name,
            s.nrows,
            s.nnz,
            s.max_row_nnz,
            s.skew,
            gamma,
            cfg.paper_rows,
            cfg.paper_nnz,
            cfg.paper_max_row
        );
    }
}
