//! Stitches the harness outputs in `results/` into a single
//! `results/REPORT.md` and prints headline comparisons against the paper's
//! numbers (hard-coded from the published tables) so EXPERIMENTS.md can
//! reference one canonical artefact.

use std::fmt::Write as _;
use std::fs;

use sf2d_bench::{read_jsonl, HarnessOpts};
use sf2d_core::report::performance_profile;
use sf2d_core::{EigenRow, SpmvRow};

/// Paper Table 2 reduction percentages (2D-GP/HP vs next best), for the
/// (matrix, p) cells at 64..4096 — used for the shape comparison.
const PAPER_REDUCTIONS: &[(&str, [f64; 4])] = &[
    ("hollywood-2009", [15.7, 25.5, 26.1, 16.7]),
    ("com-orkut", [23.7, 28.2, 38.1, 16.2]),
    ("cit-Patents", [20.8, 29.0, 54.2, 33.3]),
    ("com-liveJournal", [32.6, 36.5, 46.5, 6.7]),
    ("wb-edu", [14.3, 26.5, 46.7, 20.0]),
    ("uk-2005", [-5.9, 47.9, 25.6, 35.5]),
    ("bter", [32.0, 16.7, 27.7, 2.9]),
    ("rmat_22", [50.2, 48.8, 60.6, 76.7]),
    ("rmat_24", [20.9, 55.9, 39.3, 81.6]),
    ("rmat_26", [13.5, 57.0, 39.1, 81.3]),
];

fn main() {
    let opts = HarnessOpts::from_args();
    let mut out = String::new();
    let _ = writeln!(out, "# sf2d experiment report\n");
    let _ = writeln!(
        out,
        "Generated from the JSON rows in `{}`. See EXPERIMENTS.md for the\n\
         paper-vs-measured analysis.\n",
        opts.out.display()
    );

    // Headline 1: who wins, how often (Fig 6's x=1 point).
    if let Some(rows) = read_jsonl::<SpmvRow>(&opts.out_file("table2.jsonl")) {
        let mut problems: std::collections::BTreeMap<(String, usize), Vec<(String, f64)>> =
            std::collections::BTreeMap::new();
        for r in &rows {
            problems
                .entry((r.matrix.clone(), r.p))
                .or_default()
                .push((r.method.clone(), r.sim_time));
        }
        let total = problems.len();
        let mut best_2d_gp = 0usize;
        let mut within_1_5 = 0usize;
        for methods in problems.values() {
            let best = methods
                .iter()
                .map(|&(_, t)| t)
                .fold(f64::INFINITY, f64::min);
            let gp = methods
                .iter()
                .find(|(m, _)| m == "2D-GP" || m == "2D-HP")
                .map(|&(_, t)| t)
                .unwrap_or(f64::INFINITY);
            if gp <= best * (1.0 + 1e-9) {
                best_2d_gp += 1;
            }
            if gp <= best * 1.5 {
                within_1_5 += 1;
            }
        }
        let _ = writeln!(
            out,
            "## Headline: 2D-GP/HP win rate (SpMV, all instances)\n"
        );
        let _ = writeln!(
            out,
            "- best method in {best_2d_gp}/{total} instances ({:.1}%); paper: 97.5%",
            100.0 * best_2d_gp as f64 / total as f64
        );
        let _ = writeln!(
            out,
            "- within 1.5x of the best in {within_1_5}/{total} ({:.1}%)\n",
            100.0 * within_1_5 as f64 / total as f64
        );

        // Headline 2: reduction sign agreement with the paper.
        let _ = writeln!(
            out,
            "## Reduction vs next best: measured vs paper (Table 2)\n"
        );
        let _ = writeln!(out, "| matrix | p | measured | paper |");
        let _ = writeln!(out, "|---|---:|---:|---:|");
        let procs = [64usize, 256, 1024, 4096];
        let mut agree = 0usize;
        let mut cells = 0usize;
        for (matrix, paper) in PAPER_REDUCTIONS {
            for (pi, &p) in procs.iter().enumerate() {
                let cell: Vec<&SpmvRow> = rows
                    .iter()
                    .filter(|r| r.matrix == *matrix && r.p == p)
                    .collect();
                if cell.len() < 6 {
                    continue;
                }
                let winner = cell
                    .iter()
                    .find(|r| r.method == "2D-GP" || r.method == "2D-HP")
                    .map(|r| r.sim_time)
                    .unwrap();
                let best_other = cell
                    .iter()
                    .filter(|r| r.method != "2D-GP" && r.method != "2D-HP")
                    .map(|r| r.sim_time)
                    .fold(f64::INFINITY, f64::min);
                let red = 100.0 * (best_other - winner) / best_other;
                let _ = writeln!(out, "| {matrix} | {p} | {red:.1}% | {:.1}% |", paper[pi]);
                cells += 1;
                // "Agreement" = same sign, or both within ±10% of zero.
                if (red >= -10.0 && paper[pi] >= -10.0) || red.signum() == paper[pi].signum() {
                    agree += 1;
                }
            }
        }
        let _ = writeln!(
            out,
            "\nsign/shape agreement: {agree}/{cells} cells ({:.0}%)\n",
            100.0 * agree as f64 / cells.max(1) as f64
        );

        // Headline 3: the message-count wall.
        let _ = writeln!(
            out,
            "## The O(sqrt p) message wall (max msgs per rank, com-liveJournal)\n"
        );
        if let Some(t3) = read_jsonl::<SpmvRow>(&opts.out_file("table3.jsonl")) {
            let _ = writeln!(
                out,
                "| p | 1D (measured) | ~p-1 | 2D (measured) | 2sqrt(p)-2 |"
            );
            let _ = writeln!(out, "|---:|---:|---:|---:|---:|");
            for p in [64usize, 256, 1024, 4096, 16384] {
                let m1 = t3
                    .iter()
                    .filter(|r| r.p == p && r.method.starts_with("1D"))
                    .map(|r| r.max_msgs)
                    .max();
                let m2 = t3
                    .iter()
                    .filter(|r| r.p == p && r.method.starts_with("2D"))
                    .map(|r| r.max_msgs)
                    .max();
                if let (Some(m1), Some(m2)) = (m1, m2) {
                    let sq = 2 * (p as f64).sqrt() as usize - 2;
                    let _ = writeln!(out, "| {p} | {m1} | {} | {m2} | {sq} |", p - 1);
                }
            }
            let _ = writeln!(out);
        }
    } else {
        let _ = writeln!(
            out,
            "*(run the `table2` binary first for the headline numbers)*\n"
        );
    }

    // Eigensolver headline.
    if let Some(rows) = read_jsonl::<EigenRow>(&opts.out_file("table4.jsonl")) {
        // Paper Table 4 reductions (2D-GP-MC / 2D-HP vs next best excl.
        // 2D-GP) for the three matrices at 64..4096 ranks.
        const PAPER_T4: &[(&str, [f64; 4])] = &[
            ("hollywood-2009", [12.6, 2.0, 29.0, 22.6]),
            ("com-orkut", [16.0, 21.2, 40.6, 24.0]),
            ("rmat_26", [4.0, 14.8, 2.2, 45.0]),
        ];
        let _ = writeln!(
            out,
            "## Eigensolve reduction vs next best: measured vs paper (Table 4)\n"
        );
        let _ = writeln!(out, "| matrix | p | measured | paper |");
        let _ = writeln!(out, "|---|---:|---:|---:|");
        for (matrix, paper) in PAPER_T4 {
            for (pi, &p) in [64usize, 256, 1024, 4096].iter().enumerate() {
                let cell: Vec<&EigenRow> = rows
                    .iter()
                    .filter(|r| r.matrix == *matrix && r.p == p)
                    .collect();
                if cell.len() < 6 {
                    continue;
                }
                let winner = cell
                    .iter()
                    .find(|r| r.method == "2D-GP-MC" || r.method == "2D-HP")
                    .map(|r| r.solve_time)
                    .unwrap_or(f64::INFINITY);
                let best_other = cell
                    .iter()
                    .filter(|r| {
                        r.method != "2D-GP-MC" && r.method != "2D-HP" && r.method != "2D-GP"
                    })
                    .map(|r| r.solve_time)
                    .fold(f64::INFINITY, f64::min);
                let red = 100.0 * (best_other - winner) / best_other;
                let _ = writeln!(out, "| {matrix} | {p} | {red:.1}% | {:.1}% |", paper[pi]);
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "## Eigensolver: SpMV share of solve time\n");
        let mut frac: Vec<f64> = rows
            .iter()
            .filter(|r| r.solve_time > 0.0)
            .map(|r| r.spmv_time / r.solve_time)
            .collect();
        frac.sort_by(f64::total_cmp);
        if !frac.is_empty() {
            let _ = writeln!(
                out,
                "median SpMV share {:.0}% (paper: SpMV \"no longer dominates\" after layout fixes)\n",
                100.0 * frac[frac.len() / 2]
            );
        }
    }

    // Performance profile table from raw rows (redundant with fig6_7.txt but
    // computed fresh so the report stands alone).
    if let Some(rows) = read_jsonl::<SpmvRow>(&opts.out_file("table2.jsonl")) {
        let canon = |m: &str| -> usize {
            match m {
                "1D-Block" => 0,
                "1D-Random" => 1,
                "1D-GP" | "1D-HP" => 2,
                "2D-Block" => 3,
                "2D-Random" => 4,
                _ => 5,
            }
        };
        let mut problems: std::collections::BTreeMap<(String, usize), Vec<f64>> =
            std::collections::BTreeMap::new();
        for r in &rows {
            problems
                .entry((r.matrix.clone(), r.p))
                .or_insert_with(|| vec![f64::INFINITY; 6])[canon(&r.method)] = r.sim_time;
        }
        let times: Vec<Vec<f64>> = problems.into_values().collect();
        let _ = writeln!(
            out,
            "## Performance profile (fraction within tau of best)\n"
        );
        let _ = writeln!(
            out,
            "| tau | 1D-Block | 1D-Random | 1D-GP/HP | 2D-Block | 2D-Random | 2D-GP/HP |"
        );
        let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|---:|");
        for tau in [1.0, 2.0, 4.0, 8.0] {
            let prof = performance_profile(&times, tau);
            let mut line = format!("| {tau} |");
            for v in prof {
                let _ = write!(line, " {v:.2} |");
            }
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out);
    }

    // Append the raw per-artefact outputs.
    for name in [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "fig5",
        "fig6_7",
        "fig8",
        "fig9",
        "ablations",
    ] {
        if let Ok(text) = fs::read_to_string(opts.out.join(format!("{name}.txt"))) {
            let _ = writeln!(out, "---\n\n<details><summary>{name} output</summary>\n");
            let _ = writeln!(out, "```\n{}\n```\n</details>\n", text.trim_end());
        }
    }

    let path = opts.out_file("REPORT.md");
    fs::write(&path, &out).expect("write report");
    println!("{out}");
    eprintln!("report written to {}", path.display());
}
