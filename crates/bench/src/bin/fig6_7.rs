//! Regenerates the paper's **Figures 6 and 7**: performance profiles over
//! all Table 2 instances (Fig 6) and over the ≥1024-rank instances only
//! (Fig 7). Reads `results/table2.jsonl` (run `table2` first).
//!
//! Reading the curves: at x = 1, a method's y value is the fraction of
//! problems where it is the fastest; the paper reports 2D-GP/HP best for
//! 97.5% of instances, and 1D methods clearly dominated at high rank
//! counts.

use std::collections::BTreeSet;

use sf2d_bench::{read_jsonl, HarnessOpts};
use sf2d_core::report::performance_profile;
use sf2d_core::SpmvRow;

/// Canonical method order (columns of the profile).
const METHODS: [&str; 6] = [
    "1D-Block",
    "1D-Random",
    "1D-GP/HP",
    "2D-Block",
    "2D-Random",
    "2D-GP/HP",
];

/// Folds the GP and HP variants into the paper's combined labels.
fn canon(method: &str) -> &'static str {
    match method {
        "1D-Block" => "1D-Block",
        "1D-Random" => "1D-Random",
        "1D-GP" | "1D-HP" => "1D-GP/HP",
        "2D-Block" => "2D-Block",
        "2D-Random" => "2D-Random",
        "2D-GP" | "2D-HP" => "2D-GP/HP",
        other => panic!("unexpected method {other}"),
    }
}

fn profile_table(rows: &[SpmvRow], min_p: usize, title: &str) {
    // Group into problems = (matrix, p).
    let problems: BTreeSet<(String, usize)> = rows
        .iter()
        .filter(|r| r.p >= min_p)
        .map(|r| (r.matrix.clone(), r.p))
        .collect();
    let mut times: Vec<Vec<f64>> = Vec::new();
    for (matrix, p) in &problems {
        let mut row = vec![f64::INFINITY; METHODS.len()];
        for r in rows.iter().filter(|r| &r.matrix == matrix && r.p == *p) {
            let idx = METHODS.iter().position(|m| *m == canon(&r.method)).unwrap();
            row[idx] = r.sim_time;
        }
        assert!(
            row.iter().all(|t| t.is_finite()),
            "incomplete data for {matrix}@{p}"
        );
        times.push(row);
    }

    println!("## {title} ({} instances)", times.len());
    print!("| tau |");
    for m in METHODS {
        print!(" {m} |");
    }
    println!();
    print!("|---:|");
    for _ in METHODS {
        print!("---:|");
    }
    println!();
    for tau in [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0] {
        let prof = performance_profile(&times, tau);
        print!("| {tau} |");
        for v in prof {
            print!(" {:.3} |", v);
        }
        println!();
    }
    // The paper's headline number: fraction of instances where 2D-GP/HP is
    // the (tied-)best.
    let best_frac = performance_profile(&times, 1.0 + 1e-9);
    println!(
        "2D-GP/HP is the best method for {:.1}% of instances\n",
        100.0 * best_frac[5]
    );
}

fn main() {
    let opts = HarnessOpts::from_args();
    let rows: Vec<SpmvRow> = read_jsonl(&opts.out_file("table2.jsonl"))
        .expect("results/table2.jsonl missing — run the `table2` binary first");
    profile_table(&rows, 0, "Figure 6 — performance profile, all instances");
    profile_table(&rows, 1024, "Figure 7 — performance profile, >= 1024 ranks");
}
