//! Ablation studies for the design choices the paper discusses but does
//! not (or could not) evaluate:
//!
//! 1. **φ/ψ vs interchanged ψ/φ** — §3.1: "φ and ψ could be interchanged,
//!    giving two different distributions to evaluate ... pick the best".
//! 2. **GP vs HP** for the same matrix — §2.2's speed/quality trade.
//! 3. **Randomization's volume-for-balance trade** — §5.2's wb-edu case,
//!    where randomization *hurt* because the original layout was already
//!    balanced.
//! 4. **BKS block size** — §4: "We use block size one, as we did not
//!    observe any advantage of larger blocks."
//! 5. **BKS vs LOBPCG** — §4's method choice.
//! 6. **Balance rows vs balance nonzeros** — §2.2: "Unless stated
//!    otherwise, we will always balance the nonzeros."
//! 7. **Mondriaan vs 2D-GP** — §6's future-work comparison: non-Cartesian
//!    volume savings vs the Cartesian O(√p) message bound.
//! 8. **Ordering sensitivity** — natural vs RCM vs partitioned orderings.
//! 9. **Migration break-even** — §5.1's amortization question.
//! 10. **Blocked SpMM** — latency amortization of MultiVector operations.
//! 11. **Partitioner face-off** — multilevel GP/HP vs spectral RB.
//! 12. **Model robustness** — flat vs node-aware (16 ranks/node) costing.

use sf2d_bench::{load_proxy, machine_for, HarnessOpts};
use sf2d_core::prelude::*;
use sf2d_core::report::fmt_secs;
use sf2d_core::sf2d_eigen::{block_lanczos, krylov_schur_largest, lobpcg_largest, LobpcgConfig};
use sf2d_core::sf2d_gen::proxy::by_name;
use sf2d_core::sf2d_partition::gp::partition_graph as gp_partition;
use sf2d_core::sf2d_partition::{mondriaan, GpConfig, MondriaanConfig, Partition};
use sf2d_core::sf2d_spmv::{DistCsrMatrix, NormalizedLaplacianOp};

fn main() {
    let opts = HarnessOpts::from_args();
    phi_psi_swap(&opts);
    gp_vs_hp(&opts);
    randomization_trade(&opts);
    block_size(&opts);
    bks_vs_lobpcg(&opts);
    balance_objective(&opts);
    mondriaan_vs_cartesian(&opts);
    ordering_luck(&opts);
    migration_break_even(&opts);
    spmm_blocking(&opts);
    partitioner_faceoff(&opts);
    model_robustness(&opts);
}

/// Ablation 12: flat vs node-aware machine model — are the layout rankings
/// robust to the cost-model choice? (The paper's clusters packed 16 ranks
/// per node; intra-node messages are ~10x cheaper than the network.)
fn model_robustness(opts: &HarnessOpts) {
    use sf2d_core::sf2d_sim::hierarchy::NodeModel;
    use sf2d_core::sf2d_spmv::diagnose::spmv_time_hierarchical;
    println!("## Ablation 12 — flat vs node-aware (16 ranks/node) model, p = 1024");
    println!("| matrix | method | flat comm+compute (s) | node-aware (s) | rank order kept? |");
    println!("|---|---|---:|---:|---|");
    for name in ["com-liveJournal", "rmat_24"] {
        let cfg = by_name(name).unwrap();
        let a = load_proxy(cfg, opts.shrink);
        let s = cfg.paper_nnz as f64 / a.nnz().max(1) as f64;
        let mut builder = LayoutBuilder::new(&a, 0);
        let mut flat_times = Vec::new();
        let mut node_times = Vec::new();
        let methods = Method::spmv_set(cfg.use_hp);
        for m in methods {
            let dist = builder.dist(m, 1024);
            let dm = DistCsrMatrix::from_global(&a, &dist);
            let nm_flat = NodeModel::flat(1.5e-6, s / 3.2e9, s / 4.0e9);
            let nm = NodeModel {
                node_size: 16,
                alpha_remote: 1.5e-6,
                beta_remote: s / 3.2e9,
                alpha_local: 1.5e-7,
                beta_local: s / 3.2e10,
                gamma: s / 4.0e9,
            };
            flat_times.push(spmv_time_hierarchical(&dm, &nm_flat));
            node_times.push(spmv_time_hierarchical(&dm, &nm));
        }
        // Rank orders.
        let order = |ts: &[f64]| {
            let mut idx: Vec<usize> = (0..ts.len()).collect();
            idx.sort_by(|&i, &j| ts[i].total_cmp(&ts[j]));
            idx
        };
        let same = order(&flat_times) == order(&node_times);
        for (i, m) in methods.iter().enumerate() {
            println!(
                "| {} | {} | {} | {} | {} |",
                name,
                m.name(),
                fmt_secs(flat_times[i]),
                fmt_secs(node_times[i]),
                if i == 0 {
                    if same {
                        "yes"
                    } else {
                        "no"
                    }
                } else {
                    ""
                },
            );
        }
    }
    println!("(node-locality discounts everyone; the winner ordering is what matters)\n");
}

/// Ablation 11: partitioner family face-off — multilevel GP vs multilevel
/// HP vs spectral RB, on a mesh (where spectral methods were born) and a
/// scale-free graph (where hubs poison the spectrum).
fn partitioner_faceoff(opts: &HarnessOpts) {
    use sf2d_core::sf2d_gen::grid_2d;
    use sf2d_core::sf2d_partition::{
        partition_hypergraph_matrix, partition_spectral, HgConfig, SpectralConfig,
    };
    println!("## Ablation 11 — GP vs HP vs spectral (k = 64, 1D comm volume)");
    println!("| graph | partitioner | edge cut | comm volume | nnz imbal |");
    println!("|---|---|---:|---:|---:|");
    let mesh = grid_2d(64, 64);
    let sf = {
        let cfg = by_name("com-liveJournal").unwrap();
        load_proxy(cfg, (opts.shrink * 8).min(1 << 12))
    };
    for (label, a) in [("64x64 mesh", &mesh), ("liveJournal proxy", &sf)] {
        let g = Graph::from_symmetric_matrix(a);
        let gp = gp_partition(&g, 64, &GpConfig::default());
        let hp = partition_hypergraph_matrix(a, 64, &HgConfig::default());
        let sp = partition_spectral(&g, 64, &SpectralConfig::default());
        for (name, part) in [
            ("multilevel GP", &gp),
            ("multilevel HP", &hp),
            ("spectral RB", &sp),
        ] {
            println!(
                "| {} | {} | {:.0} | {} | {:.2} |",
                label,
                name,
                part.edge_cut(&g),
                part.comm_volume(&g),
                part.imbalance(&g.vwgt)
            );
        }
    }
    println!("(multilevel beats plain spectral everywhere; the gap widens on the");
    println!("scale-free graph — consistent with the paper's choice of tools)\n");
}

/// Ablation 10: blocked SpMM vs repeated SpMV — the latency amortization
/// block Krylov methods would exploit (Epetra MultiVector semantics).
fn spmm_blocking(opts: &HarnessOpts) {
    use sf2d_core::sf2d_spmv::{spmm, spmv, DistMultiVector, DistVector};
    use std::sync::Arc;
    println!("## Ablation 10 — blocked SpMM vs m separate SpMVs (p = 1024)");
    let cfg = by_name("com-liveJournal").unwrap();
    let a = load_proxy(cfg, opts.shrink);
    let machine = machine_for(cfg, &a, Machine::cab());
    let mut builder = LayoutBuilder::new(&a, 0);
    let dist = builder.dist(Method::TwoDGp, 1024);
    let dm = DistCsrMatrix::from_global(&a, &dist);
    println!("| block m | m x SpMV (s) | SpMM (s) | speedup |");
    println!("|---:|---:|---:|---:|");
    for m in [1usize, 2, 4, 8] {
        let x = DistVector::random(Arc::clone(&dm.vmap), 1);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut l_single = CostLedger::new(machine);
        for _ in 0..m {
            spmv(&dm, &x, &mut y, &mut l_single);
        }
        let cols: Vec<Vec<f64>> = (0..m).map(|_| x.to_global()).collect();
        let xm = DistMultiVector::from_columns(Arc::clone(&dm.vmap), &cols);
        let mut ym = DistMultiVector::zeros(Arc::clone(&dm.vmap), m);
        let mut l_block = CostLedger::new(machine);
        spmm(&dm, &xm, &mut ym, &mut l_block);
        println!(
            "| {} | {} | {} | {:.2}x |",
            m,
            fmt_secs(l_single.total),
            fmt_secs(l_block.total),
            l_single.total / l_block.total
        );
    }
    println!("(same bytes and flops, 1/m the messages — why Anasazi's MultiVector");
    println!("interface matters even though the paper's BKS uses block size one)\n");
}

/// Ablation 1: evaluate both (φ, ψ) orientations, as §3.1 proposes.
fn phi_psi_swap(opts: &HarnessOpts) {
    println!("## Ablation 1 — phi/psi vs interchanged (2D-GP, p = 256)");
    println!("| matrix | default time | swapped time | default nz imbal | swapped nz imbal |");
    println!("|---|---:|---:|---:|---:|");
    for name in ["com-orkut", "wb-edu", "rmat_24"] {
        let cfg = by_name(name).unwrap();
        let a = load_proxy(cfg, opts.shrink);
        let machine = machine_for(cfg, &a, Machine::cab());
        let mut builder = LayoutBuilder::new(&a, 0);
        let d = builder.dist(
            if cfg.use_hp {
                Method::TwoDHp
            } else {
                Method::TwoDGp
            },
            256,
        );
        let ds = d.interchanged();
        let r = spmv_experiment(&a, &d, machine, 100);
        let rs = spmv_experiment(&a, &ds, machine, 100);
        println!(
            "| {} | {} | {} | {:.2} | {:.2} |",
            name,
            fmt_secs(r.sim_time),
            fmt_secs(rs.sim_time),
            r.nnz_imbalance,
            rs.nnz_imbalance
        );
    }
    println!("picking the better of the two is a free ~max(0, diff) improvement.\n");
}

/// Ablation 2: graph vs hypergraph partitioning feeding the same 2D map.
fn gp_vs_hp(opts: &HarnessOpts) {
    println!("## Ablation 2 — GP vs HP as the rpart source (p = 256)");
    println!("| matrix | 2D-GP time | 2D-HP time | GP CV | HP CV |");
    println!("|---|---:|---:|---:|---:|");
    for name in ["com-liveJournal", "wb-edu"] {
        let cfg = by_name(name).unwrap();
        let a = load_proxy(cfg, opts.shrink);
        let machine = machine_for(cfg, &a, Machine::cab());
        let mut builder = LayoutBuilder::new(&a, 0);
        let g = spmv_experiment(&a, &builder.dist(Method::TwoDGp, 256), machine, 100);
        let h = spmv_experiment(&a, &builder.dist(Method::TwoDHp, 256), machine, 100);
        println!(
            "| {} | {} | {} | {} | {} |",
            name,
            fmt_secs(g.sim_time),
            fmt_secs(h.sim_time),
            g.total_cv,
            h.total_cv
        );
    }
    println!("(the paper used HP only where ParMETIS struggled; quality is similar)\n");
}

/// Ablation 3: §5.2's wb-edu observation — randomization raises volume and
/// only pays off when the original distribution was imbalanced.
fn randomization_trade(opts: &HarnessOpts) {
    println!("## Ablation 3 — randomization's balance-for-volume trade (p = 1024)");
    println!("| matrix | 2D-Block time | 2D-Random time | Block nz imbal | Block CV | Random CV |");
    println!("|---|---:|---:|---:|---:|---:|");
    for name in ["wb-edu", "rmat_24"] {
        let cfg = by_name(name).unwrap();
        let a = load_proxy(cfg, opts.shrink);
        let machine = machine_for(cfg, &a, Machine::cab());
        let mut builder = LayoutBuilder::new(&a, 0);
        let blk = spmv_experiment(&a, &builder.dist(Method::TwoDBlock, 1024), machine, 100);
        let rnd = spmv_experiment(&a, &builder.dist(Method::TwoDRandom, 1024), machine, 100);
        println!(
            "| {} | {} | {} | {:.1} | {} | {} |",
            name,
            fmt_secs(blk.sim_time),
            fmt_secs(rnd.sim_time),
            blk.nnz_imbalance,
            blk.total_cv,
            rnd.total_cv
        );
    }
    println!();
}

/// Ablation 4: BKS block size on a scale-free Laplacian.
fn block_size(opts: &HarnessOpts) {
    println!("## Ablation 4 — block size in block Lanczos (basis 32, hollywood proxy)");
    let cfg = by_name("hollywood-2009").unwrap();
    let a = load_proxy(cfg, (opts.shrink * 16).min(1 << 12));
    let machine = machine_for(cfg, &a, Machine::cab());
    let stripped = a.without_diagonal();
    let degrees: Vec<usize> = (0..stripped.nrows()).map(|i| stripped.row_nnz(i)).collect();
    let mut builder = LayoutBuilder::new(&a, 0);
    let dist = builder.dist(Method::TwoDGp, 64);
    let dm = DistCsrMatrix::from_global(&stripped, &dist);
    let op = NormalizedLaplacianOp::new(dm, &degrees);
    println!("| block size | top-pair rel. residual | op applies | simulated s |");
    println!("|---:|---:|---:|---:|");
    for b in [1usize, 2, 4] {
        let mut ledger = CostLedger::new(machine);
        let res = block_lanczos(&op, b, 32, 5, &mut ledger);
        println!(
            "| {} | {:.2e} | {} | {} |",
            b,
            res.residuals[res.basis_size - 1],
            res.op_applies,
            fmt_secs(ledger.total)
        );
    }
    println!("(same basis budget: block 1 converges the extreme pair at least as fast —");
    println!("the paper's rationale for block size one)\n");
}

/// Ablation 5: BKS (thick-restart) vs LOBPCG for the same pairs/tolerance.
fn bks_vs_lobpcg(opts: &HarnessOpts) {
    println!("## Ablation 5 — BKS vs LOBPCG (5 largest pairs, tol 1e-3)");
    let cfg = by_name("com-orkut").unwrap();
    let a = load_proxy(cfg, (opts.shrink * 16).min(1 << 12));
    let machine = machine_for(cfg, &a, Machine::cab());
    let stripped = a.without_diagonal();
    let degrees: Vec<usize> = (0..stripped.nrows()).map(|i| stripped.row_nnz(i)).collect();
    let mut builder = LayoutBuilder::new(&a, 0);
    let dist = builder.dist(Method::TwoDGp, 64);
    let dm = DistCsrMatrix::from_global(&stripped, &dist);
    let op = NormalizedLaplacianOp::new(dm, &degrees);

    let mut ledger = CostLedger::new(machine);
    let ks = krylov_schur_largest(
        &op,
        &KrylovSchurConfig {
            nev: 5,
            max_basis: 24,
            tol: 1e-3,
            max_restarts: 200,
            seed: 1,
        },
        &mut ledger,
    );
    let t_ks = ledger.total;
    let mut ledger = CostLedger::new(machine);
    let lob = lobpcg_largest(
        &op,
        &LobpcgConfig {
            nev: 5,
            tol: 1e-3,
            max_iters: 200,
            seed: 1,
        },
        &mut ledger,
    );
    let t_lob = ledger.total;
    println!("| method | converged | op applies | simulated s | top eigenvalue |");
    println!("|---|---|---:|---:|---:|");
    println!(
        "| BKS (b=1) | {} | {} | {} | {:.6} |",
        ks.converged,
        ks.op_applies,
        fmt_secs(t_ks),
        ks.values[0]
    );
    println!(
        "| LOBPCG | {} | {} | {} | {:.6} |",
        lob.converged,
        lob.op_applies,
        fmt_secs(t_lob),
        lob.values[0]
    );
    println!("(the paper's preliminary experiments picked BKS)\n");
}

/// Ablation 6: balancing rows vs nonzeros in the 1D partition.
fn balance_objective(opts: &HarnessOpts) {
    println!("## Ablation 6 — balance rows vs balance nonzeros (1D-GP, p = 256)");
    let cfg = by_name("com-liveJournal").unwrap();
    let a = load_proxy(cfg, opts.shrink);
    let machine = machine_for(cfg, &a, Machine::cab());
    let graph = Graph::from_symmetric_matrix(&a);

    // Nonzero-balanced (the paper's default)...
    let by_nnz = gp_partition(&graph, 256, &GpConfig::default());
    // ...vs row-balanced (unit weights).
    let unit_graph = Graph::with_weights(a.clone(), vec![1i64; a.nrows()]);
    let by_rows = gp_partition(&unit_graph, 256, &GpConfig::default());

    println!("| objective | time | nz imbal | row imbal |");
    println!("|---|---:|---:|---:|");
    for (label, part) in [("balance nnz", &by_nnz), ("balance rows", &by_rows)] {
        let dist = MatrixDist::from_partition_1d(part);
        let r = spmv_experiment(&a, &dist, machine, 100);
        println!(
            "| {} | {} | {:.2} | {:.2} |",
            label,
            fmt_secs(r.sim_time),
            r.nnz_imbalance,
            r.vec_imbalance
        );
    }
    println!("(nonzero balance is what SpMV needs — the paper's §2.2 default)\n");
}

/// Ablation 7: the paper's future-work comparison against Mondriaan.
fn mondriaan_vs_cartesian(opts: &HarnessOpts) {
    println!("## Ablation 7 — Mondriaan (non-Cartesian) vs 2D-GP (p = 64)");
    println!("| matrix | layout | time | max msgs | total CV |");
    println!("|---|---|---:|---:|---:|");
    for name in ["cit-Patents", "wb-edu"] {
        let cfg = by_name(name).unwrap();
        // Mondriaan bisects hypergraphs at every tree node; keep it small.
        let a = load_proxy(cfg, (opts.shrink * 8).min(1 << 12));
        let machine = machine_for(cfg, &a, Machine::cab());
        let mut builder = LayoutBuilder::new(&a, 0);
        let gp = builder.dist(Method::TwoDGp, 64);
        let r_gp = spmv_experiment(&a, &gp, machine, 100);
        let fine = mondriaan(&a, 64, &MondriaanConfig::default());
        let r_mon = spmv_experiment(&a, &fine, machine, 100);
        for (label, r) in [("2D-GP", &r_gp), ("Mondriaan", &r_mon)] {
            println!(
                "| {} | {} | {} | {} | {} |",
                name,
                label,
                fmt_secs(r.sim_time),
                r.max_msgs,
                r.total_cv
            );
        }
    }
    println!("(Mondriaan trades the O(sqrt p) message bound for lower volume —");
    println!("exactly the tension the paper's Cartesian design resolves)\n");
}

/// Ablation 8: block layouts live or die by the row *ordering*. Natural vs
/// bandwidth-reducing RCM vs partitioner-driven — how much of a block
/// layout's quality is ordering luck?
fn ordering_luck(opts: &HarnessOpts) {
    use sf2d_core::sf2d_graph::reorder::{bandwidth, rcm};
    println!("## Ablation 8 — ordering sensitivity of block layouts (1D-Block, p = 256)");
    println!("| matrix | ordering | bandwidth | time | total CV |");
    println!("|---|---|---:|---:|---:|");
    for name in ["wb-edu", "com-liveJournal"] {
        let cfg = by_name(name).unwrap();
        let a = load_proxy(cfg, (opts.shrink * 4).min(1 << 12));
        let machine = machine_for(cfg, &a, Machine::cab());
        // Natural ordering.
        let natural = spmv_experiment(&a, &MatrixDist::block_1d(a.nrows(), 256), machine, 100);
        println!(
            "| {} | natural | {} | {} | {} |",
            name,
            bandwidth(&a),
            fmt_secs(natural.sim_time),
            natural.total_cv
        );
        // RCM ordering: permute the matrix, then block it.
        let p = rcm(&a);
        let ra = p.permute_matrix(&a).expect("square");
        let rcm_row = spmv_experiment(&ra, &MatrixDist::block_1d(ra.nrows(), 256), machine, 100);
        println!(
            "| {} | RCM | {} | {} | {} |",
            name,
            bandwidth(&ra),
            fmt_secs(rcm_row.sim_time),
            rcm_row.total_cv
        );
        // Partitioner ordering (1D-GP for reference).
        let mut builder = LayoutBuilder::new(&a, 0);
        let gp = spmv_experiment(&a, &builder.dist(Method::OneDGp, 256), machine, 100);
        println!(
            "| {} | 1D-GP | - | {} | {} |",
            name,
            fmt_secs(gp.sim_time),
            gp.total_cv
        );
    }
    println!("(RCM buys block layouts locality for free, but an explicit partition");
    println!("still wins — ordering luck is not a substitute for partitioning)\n");
}

/// Ablation 9: §5.1's amortization question — how many SpMVs until
/// redistributing from the default 1D-Block to 2D-GP pays for itself?
fn migration_break_even(opts: &HarnessOpts) {
    use sf2d_core::sf2d_spmv::MigrationPlan;
    println!("## Ablation 9 — migration break-even, 1D-Block -> 2D-GP (p = 1024)");
    println!("| matrix | migration s | 1D-Block s/SpMV | 2D-GP s/SpMV | break-even SpMVs |");
    println!("|---|---:|---:|---:|---:|");
    for name in ["com-liveJournal", "rmat_24"] {
        let cfg = by_name(name).unwrap();
        let a = load_proxy(cfg, opts.shrink);
        let machine = machine_for(cfg, &a, Machine::cab());
        let mut builder = LayoutBuilder::new(&a, 0);
        let from = builder.dist(Method::OneDBlock, 1024);
        let to = builder.dist(Method::TwoDGp, 1024);
        let t_old = spmv_experiment(&a, &from, machine, 1).sim_time;
        let t_new = spmv_experiment(&a, &to, machine, 1).sim_time;
        let plan = MigrationPlan::build(&a, &from, &to);
        let be = plan
            .break_even_iterations(&machine, t_old, t_new)
            .map(|k| k.to_string())
            .unwrap_or_else(|| "never".into());
        println!(
            "| {} | {} | {} | {} | {} |",
            name,
            fmt_secs(plan.time(&machine)),
            fmt_secs(t_old),
            fmt_secs(t_new),
            be
        );
    }
    println!("(an eigensolve runs hundreds of SpMVs — redistribution amortizes fast,");
    println!("which is the paper's §5.1 justification for pre-partitioning)\n");
}

// Silence an unused-import lint when Partition is only used via gp_partition's
// return type.
#[allow(unused)]
fn _t(_: Partition) {}
