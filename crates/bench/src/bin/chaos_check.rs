//! Chaos gate: proves the fault-injection engine's headline guarantees
//! on three published seeds, and writes a recovery-trace artifact.
//!
//! For each `(seed, rate)` below this harness:
//!
//! 1. runs the 100-step SpMV loop (Table 3's iteration count) fault-free
//!    and under injection, and requires the recovered iterate to match
//!    the fault-free bits with the retransmit/recovery surcharge
//!    itemized;
//! 2. re-runs the degraded loop with the threaded chaos transport and
//!    requires the *identical* fault schedule, costs, and bits
//!    (`SF2D_THREADS` independence);
//! 3. solves for the paper's ten largest eigenpairs with the resilient
//!    Krylov–Schur under the same fault plan and requires bit-identical
//!    eigenvalues and Ritz vectors.
//!
//! Artifacts: `chaos_report.jsonl` (one row per seed × cell) and
//! `chaos_recovery_trace.md` (per-seed fault ledger and phase times).
//! Exits nonzero on any failure, so CI can gate on it.

use std::cell::RefCell;
use std::fmt::Write as _;

use sf2d_bench::{write_jsonl, HarnessOpts};
use sf2d_core::experiment::labeled_chaos;
use sf2d_core::prelude::*;
use sf2d_core::report::fmt_secs;
use sf2d_core::sf2d_gen::{rmat, RmatConfig};
use sf2d_core::sf2d_graph::normalized_laplacian;

/// The published chaos seeds (see README "Resilience & fault injection").
/// Each pairs a seed with a rate; together they cover drop/duplicate/
/// bit-flip/delay mixes, rank stalls, and checkpoint restores.
const PUBLISHED: [(u64, f64); 3] = [(0xC0FFEE, 0.25), (0xDEAD_BEEF, 0.30), (42, 0.15)];

fn main() {
    let opts = HarnessOpts::from_args();
    let a = rmat(&RmatConfig::graph500(9), 6);
    let mut builder = LayoutBuilder::new(&a, 0);
    let dist = builder.dist(Method::TwoDGp, 16);
    let machine = Machine::cab();

    let mut rows = Vec::new();
    let mut trace = String::from("# Chaos recovery trace\n\n");
    let mut failures = 0usize;

    for &(seed, rate) in &PUBLISHED {
        println!("== seed {seed:#x}, rate {rate} ==");
        let _ = writeln!(trace, "## seed {seed:#x}, rate {rate}\n");

        // 1. SpMV loop: recover to gold bits, surcharge itemized.
        let mut rt = ChaosRuntime::seeded(seed, rate);
        let row = labeled_chaos(
            spmv_experiment_chaos(&a, &dist, machine, 100, &mut rt),
            "rmat-s9",
            Method::TwoDGp,
        );
        let ok = row.recovered && row.retransmit_time > 0.0 && row.sim_time > row.gold_time;
        println!(
            "  spmv x100: recovered={} gold={} degraded={} (retransmit {}, recovery {})",
            row.recovered,
            fmt_secs(row.gold_time),
            fmt_secs(row.sim_time),
            fmt_secs(row.retransmit_time),
            fmt_secs(row.recovery_time),
        );
        let _ = writeln!(
            trace,
            "- spmv loop: {} drops, {} duplicates, {} bit-flips, {} delays, {} stalls, \
             {} crashes; {} extra msgs / {} extra bytes retransmitted; \
             retransmit {}, recovery {}, recovered: **{}**",
            row.drops,
            row.duplicates,
            row.bit_flips,
            row.delays,
            row.stalls,
            row.crashes,
            row.retransmit_msgs,
            row.retransmit_bytes,
            fmt_secs(row.retransmit_time),
            fmt_secs(row.recovery_time),
            row.recovered,
        );
        failures += usize::from(!ok);

        // 2. Same plan through the threaded transport: identical schedule.
        let mut rt_thr = ChaosRuntime::seeded(seed, rate).with_threads(8);
        let row_thr = spmv_experiment_chaos(&a, &dist, machine, 100, &mut rt_thr);
        let same = row_thr.sim_time.to_bits() == row.sim_time.to_bits()
            && rt_thr.stats == rt.stats
            && row_thr.recovered;
        println!("  threaded transport: bit-identical schedule = {same}");
        let _ = writeln!(trace, "- threaded transport bit-identical: **{same}**");
        failures += usize::from(!same);
        rows.push(row);

        // 3. Ten largest eigenpairs under the same plan, bit-for-bit.
        let l = normalized_laplacian(&a).unwrap();
        let ldist = LayoutBuilder::new(&l, 0).dist(Method::TwoDBlock, 4);
        let dm = DistCsrMatrix::from_global(&l, &ldist);
        let cfg = KrylovSchurConfig::paper(1);
        let mut led_gold = CostLedger::new(machine);
        let gold = krylov_schur_largest(&PlainSpmvOp::new(dm.clone()), &cfg, &mut led_gold);
        let rt = RefCell::new(ChaosRuntime::seeded(seed, rate));
        let op = ChaosSpmvOp { a: &dm, rt: &rt };
        let mut ledger = CostLedger::new(machine);
        let res = krylov_schur_largest_resilient(&op, &cfg, &mut ledger, &rt);
        let bits_ok = res.values == gold.values
            && res
                .vectors
                .iter()
                .zip(&gold.vectors)
                .all(|(v, w)| v.locals == w.locals);
        let stats = rt.borrow().stats;
        println!(
            "  krylov-schur nev=10: bit-identical={} ({} applies vs {} gold, {} crashes)",
            bits_ok, res.op_applies, gold.op_applies, stats.crashes
        );
        let _ = writeln!(
            trace,
            "- krylov-schur (nev=10): bit-identical **{bits_ok}**, {} op applies \
             (gold {}), {} crashes recovered, solve {} (gold {})\n",
            res.op_applies,
            gold.op_applies,
            stats.crashes,
            fmt_secs(ledger.total),
            fmt_secs(led_gold.total),
        );
        failures += usize::from(!bits_ok);
    }

    let out = opts.out_file("chaos_report.jsonl");
    let _ = std::fs::remove_file(&out);
    write_jsonl(&out, &rows);
    let trace_path = opts.out_file("chaos_recovery_trace.md");
    std::fs::write(&trace_path, &trace).expect("write recovery trace");
    println!();
    println!("report -> {}", out.display());
    println!("trace  -> {}", trace_path.display());

    if failures > 0 {
        eprintln!("chaos_check: {failures} check(s) FAILED");
        std::process::exit(1);
    }
    println!(
        "chaos_check: all checks passed on {} seeds",
        PUBLISHED.len()
    );
}
