//! Regenerates the paper's **Table 2**: time for 100 SpMV operations for
//! six data layouts on every matrix and rank count, with the "Reduction in
//! SpMV time" column (2D-GP/HP vs the next best method). Also appends the
//! two 16K-rank rows (com-liveJournal, uk-2005) on the Hopper machine
//! model, as in the paper.
//!
//! Rows land in `results/table2.jsonl` for the figure binaries to re-plot.

use sf2d_bench::{load_proxy, machine_for, write_jsonl, HarnessOpts};
use sf2d_core::experiment::labeled_spmv;
use sf2d_core::prelude::*;
use sf2d_core::report::{fmt_secs, reduction_vs_next_best};

fn main() {
    let opts = HarnessOpts::from_args();
    let out = opts.out_file("table2.jsonl");
    let _ = std::fs::remove_file(&out);

    println!(
        "# Table 2 — time (simulated s) for 100 SpMV (extra shrink {}x)",
        opts.shrink
    );
    println!("| matrix | p | 1D-Block | 1D-Random | 1D-GP/HP | 2D-Block | 2D-Random | 2D-GP/HP | reduction |");
    println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|");

    for cfg in PAPER_MATRICES {
        let a = load_proxy(cfg, opts.shrink);
        let machine = machine_for(cfg, &a, Machine::cab());
        let mut builder = LayoutBuilder::new(&a, 0);
        let methods = Method::spmv_set(cfg.use_hp);
        for &p in &opts.procs {
            let mut rows = Vec::new();
            for m in methods {
                let dist = builder.dist(m, p);
                let row = labeled_spmv(spmv_experiment(&a, &dist, machine, 100), cfg.name, m);
                rows.push(row);
            }
            print_row(cfg.name, p, &rows);
            write_jsonl(&out, &rows);
        }
    }

    // The paper's 16K-process rows, on the Hopper model ("not directly
    // comparable" to the cab rows, as the paper notes).
    println!();
    println!("16,384 ranks on the Hopper (Cray XE6) machine model:");
    println!("| matrix | p | 1D-Block | 1D-Random | 1D-GP/HP | 2D-Block | 2D-Random | 2D-GP/HP | reduction |");
    println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|");
    for name in ["com-liveJournal", "uk-2005"] {
        let cfg = sf2d_core::sf2d_gen::proxy::by_name(name).unwrap();
        let a = load_proxy(cfg, opts.shrink);
        let machine = machine_for(cfg, &a, Machine::hopper());
        let mut builder = LayoutBuilder::new(&a, 0);
        let mut rows = Vec::new();
        for m in Method::spmv_set(cfg.use_hp) {
            let dist = builder.dist(m, 16_384);
            rows.push(labeled_spmv(
                spmv_experiment(&a, &dist, machine, 100),
                cfg.name,
                m,
            ));
        }
        print_row(cfg.name, 16_384, &rows);
        write_jsonl(&out, &rows);
    }
    eprintln!("rows written to {}", out.display());
}

fn print_row(name: &str, p: usize, rows: &[sf2d_core::SpmvRow]) {
    // 2D-GP/HP is the last method in the canonical order.
    let winner = rows.last().unwrap().sim_time;
    let others: Vec<f64> = rows[..rows.len() - 1].iter().map(|r| r.sim_time).collect();
    let red = reduction_vs_next_best(winner, &others);
    print!("| {name} | {p} |");
    for r in rows {
        print!(" {} |", fmt_secs(r.sim_time));
    }
    println!(" {red:.1}% |");
}
