//! Schema check for Chrome `trace_event` files emitted by the sf2d
//! tracing sinks — the CI gate that keeps traces loadable in Perfetto /
//! `chrome://tracing`.
//!
//! ```text
//! cargo run --release -p sf2d-bench --bin trace_check -- trace.json [...]
//! ```
//!
//! Exits 0 when every file validates (prints the complete-event count per
//! file), 1 on the first schema violation, 2 on usage/IO errors.

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <trace.json> [...]");
        std::process::exit(2);
    }
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("trace_check: {path}: {e}");
            std::process::exit(2);
        });
        match sf2d_core::sf2d_obs::sink::validate_chrome_trace(&text) {
            Ok(n) => println!("trace_check: {path}: OK ({n} complete events)"),
            Err(e) => {
                eprintln!("trace_check: {path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
    }
}
