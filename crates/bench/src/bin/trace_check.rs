//! Schema check for Chrome `trace_event` files emitted by the sf2d
//! tracing sinks — the CI gate that keeps traces loadable in Perfetto /
//! `chrome://tracing`.
//!
//! ```text
//! cargo run --release -p sf2d-bench --bin trace_check -- trace.json [...]
//! ```
//!
//! Each file passes two validators: the general Chrome schema check and
//! the per-worker pool-track check (`validate_worker_tracks`: matched
//! begin/end, non-negative monotonic timestamps per track, worker id
//! stable and equal to the track's tid, thread-name metadata present).
//! Traces with no pool tracks pass the second check trivially.
//!
//! Exits 0 when every file validates (prints the complete-event and
//! worker-span counts per file), 1 on the first schema violation, 2 on
//! usage/IO errors.

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <trace.json> [...]");
        std::process::exit(2);
    }
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("trace_check: {path}: {e}");
            std::process::exit(2);
        });
        let n = match sf2d_core::sf2d_obs::sink::validate_chrome_trace(&text) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("trace_check: {path}: INVALID: {e}");
                std::process::exit(1);
            }
        };
        match sf2d_core::sf2d_obs::sink::validate_worker_tracks(&text) {
            Ok(w) => {
                println!("trace_check: {path}: OK ({n} complete events, {w} pool worker spans)")
            }
            Err(e) => {
                eprintln!("trace_check: {path}: INVALID worker tracks: {e}");
                std::process::exit(1);
            }
        }
    }
}
