//! Regenerates the paper's **Figure 8**: R-MAT weak scaling. rmat_22 on
//! 256 ranks, rmat_24 on 1024, rmat_26 on 4096 (nnz and ranks both grow
//! 4x), for 1D-Block, 1D-HP, 2D-Block and 2D-HP.
//!
//! The paper's findings to look for: 2D-HP nearly flat; 1D-HP reasonable;
//! the block methods blow up because their nonzero imbalance explodes with
//! size (2D-Block: 24.5 -> 56.4 -> 130.5 in the paper).

use sf2d_bench::{load_proxy, machine_for, write_jsonl, HarnessOpts};
use sf2d_core::experiment::labeled_spmv;
use sf2d_core::prelude::*;
use sf2d_core::report::fmt_secs;

fn main() {
    let opts = HarnessOpts::from_args();
    let pairs = [("rmat_22", 256usize), ("rmat_24", 1024), ("rmat_26", 4096)];
    let methods = [
        Method::OneDBlock,
        Method::OneDHp,
        Method::TwoDBlock,
        Method::TwoDHp,
    ];
    let out = opts.out_file("fig8.jsonl");
    let _ = std::fs::remove_file(&out);

    println!("# Figure 8 — R-MAT weak scaling (100x SpMV, simulated s)");
    println!("| matrix | p | method | time | nnz imbal | total CV |");
    println!("|---|---:|---|---:|---:|---:|");
    for (name, p) in pairs {
        let cfg = sf2d_core::sf2d_gen::proxy::by_name(name).unwrap();
        let a = load_proxy(cfg, opts.shrink);
        let machine = machine_for(cfg, &a, Machine::cab());
        let mut builder = LayoutBuilder::new(&a, 0);
        let mut rows = Vec::new();
        for m in methods {
            let dist = builder.dist(m, p);
            let row = labeled_spmv(spmv_experiment(&a, &dist, machine, 100), name, m);
            println!(
                "| {} | {} | {} | {} | {:.1} | {:.1}M |",
                name,
                p,
                m.name(),
                fmt_secs(row.sim_time),
                row.nnz_imbalance,
                row.total_cv as f64 / 1e6
            );
            rows.push(row);
        }
        write_jsonl(&out, &rows);
    }
}
