//! Regenerates the paper's **Table 3**: the com-liveJournal detail —
//! nonzero imbalance, max messages per process, total communication volume
//! (doubles), and SpMV time, for all six layouts across rank counts
//! including 16,384.
//!
//! The headline structural effect: 1D layouts' max messages approach `p`,
//! 2D layouts' approach `2√p`.

use sf2d_bench::{capture_trace, load_proxy, machine_for, write_jsonl, HarnessOpts};
use sf2d_core::experiment::{labeled_chaos, labeled_spmv};
use sf2d_core::prelude::*;
use sf2d_core::report::fmt_secs;
use sf2d_core::sf2d_graph::CsrMatrix;

fn main() {
    let mut opts = HarnessOpts::from_args();
    if !opts.procs.contains(&16_384) {
        opts.procs.push(16_384);
    }
    let cfg = sf2d_core::sf2d_gen::proxy::by_name("com-liveJournal").unwrap();
    let a = load_proxy(cfg, opts.shrink);
    let mut builder = LayoutBuilder::new(&a, 0);
    let out = opts.out_file("table3.jsonl");
    let _ = std::fs::remove_file(&out);

    println!(
        "# Table 3 — com-liveJournal metrics (proxy: {} rows, {} nnz; extra shrink {}x)",
        a.nrows(),
        a.nnz(),
        opts.shrink
    );
    println!("| p | method | imbal (nz) | max msgs | total CV | spmv time |");
    println!("|---:|---|---:|---:|---:|---:|");
    // The partitioners promise 5% balance *per bisection*; compounding over
    // log2(k) levels can push the k-way result past it. Flag such rows.
    const NNZ_TOL: f64 = 1.05;
    let mut flagged = 0usize;
    for &p in &opts.procs {
        // 16K rows run on the Hopper model, like the paper's footnote.
        let base = if p >= 16_384 {
            Machine::hopper()
        } else {
            Machine::cab()
        };
        let machine = machine_for(cfg, &a, base);
        let mut rows = Vec::new();
        for m in Method::spmv_set(cfg.use_hp) {
            // --trace / SF2D_TRACE: capture the paper's headline cell
            // (2D-GP at p = 64) as a Chrome trace + critical-path summary.
            // A fresh builder inside the capture window re-runs the
            // partitioner so its wall spans land in the trace.
            let row = if opts.trace.is_some() && p == 64 && m == Method::TwoDGp {
                let path = opts.trace.clone().unwrap();
                let (row, n) = capture_trace(&path, &machine, || {
                    let dist = LayoutBuilder::new(&a, 0).dist(m, p);
                    labeled_spmv(spmv_experiment(&a, &dist, machine, 100), cfg.name, m)
                });
                eprintln!(
                    "table3: traced 2D-GP p=64 ({n} events) -> {} (+ .md summary)",
                    path.display()
                );
                row
            } else {
                let dist = builder.dist(m, p);
                labeled_spmv(spmv_experiment(&a, &dist, machine, 100), cfg.name, m)
            };
            let over_tol = m.is_partitioned() && row.nnz_imbalance > NNZ_TOL;
            flagged += usize::from(over_tol);
            println!(
                "| {} | {} | {:.1}{} | {} | {:.1}M | {}{} |",
                p,
                m.name(),
                row.nnz_imbalance,
                if over_tol { "†" } else { "" },
                row.max_msgs,
                row.total_cv as f64 / 1e6,
                fmt_secs(row.sim_time),
                if p >= 16_384 { "*" } else { "" },
            );
            rows.push(row);
        }
        write_jsonl(&out, &rows);
    }
    println!();
    println!("*16K-rank times use the Hopper machine model — not directly comparable");
    println!("to the cab rows above, exactly as in the paper's footnote.");
    if flagged > 0 {
        println!();
        println!(
            "†{flagged} partitioned row(s) exceed the {:.0}% nonzero-balance tolerance: \
             the partitioner's per-bisection bound compounds over log2(p) levels \
             (and 1D-GP/HP balance rows, not nonzeros).",
            (NNZ_TOL - 1.0) * 100.0
        );
    }
    chaos_cells(&opts, &a, cfg);
}

/// Degraded-mode re-run of the 2D-GP cells, gated on `SF2D_CHAOS_RATE`
/// (and seeded by `SF2D_CHAOS_SEED`): each cell executes the 100-step
/// SpMV loop fault-free and under injection, verifies bit-exact
/// recovery, and itemizes the retransmit/recovery surcharge. Off (rate
/// unset or 0) this writes nothing and the table above stays
/// byte-identical.
fn chaos_cells(opts: &HarnessOpts, a: &CsrMatrix, cfg: &ProxyConfig) {
    let Some(proto) = ChaosRuntime::from_env() else {
        return;
    };
    let out = opts.out_file("table3_chaos.jsonl");
    let _ = std::fs::remove_file(&out);
    println!();
    println!("# Degraded mode — 2D-GP under fault injection (100-step SpMV loop)");
    println!("| p | seed | rate | gold | degraded | retransmit | recovery | faults | recovered |");
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|---|");
    let mut rows = Vec::new();
    let mut failures = 0usize;
    for &p in opts.procs.iter().filter(|&&p| p <= 64) {
        let machine = machine_for(cfg, a, Machine::cab());
        let dist = LayoutBuilder::new(a, 0).dist(Method::TwoDGp, p);
        let mut rt = proto.clone();
        let row = labeled_chaos(
            spmv_experiment_chaos(a, &dist, machine, 100, &mut rt),
            cfg.name,
            Method::TwoDGp,
        );
        println!(
            "| {} | {:#x} | {} | {} | {} | {} | {} | {} | {} |",
            row.p,
            row.seed,
            row.rate,
            fmt_secs(row.gold_time),
            fmt_secs(row.sim_time),
            fmt_secs(row.retransmit_time),
            fmt_secs(row.recovery_time),
            row.drops + row.duplicates + row.bit_flips + row.delays + row.stalls + row.crashes,
            if row.recovered { "yes" } else { "NO" },
        );
        failures += usize::from(!row.recovered);
        rows.push(row);
    }
    write_jsonl(&out, &rows);
    println!();
    println!("chaos rows -> {}", out.display());
    assert_eq!(failures, 0, "{failures} degraded cell(s) failed to recover");
}
