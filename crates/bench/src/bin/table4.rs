//! Regenerates the paper's **Table 4**: average eigensolve time (Block
//! Krylov–Schur, block size 1, ten largest eigenpairs of the normalized
//! Laplacian, tol 1e-3) for eight layouts — including the multiconstraint
//! 1D/2D-GP-MC — on hollywood-2009, com-orkut and rmat_26 proxies.
//!
//! The paper averages ten random starts; the harness defaults to three
//! (`--seeds` to override). Eigen proxies take an extra 4x shrink on top of
//! `--shrink` so the many solves stay tractable.
//!
//! Rows land in `results/table4.jsonl` (fig9 re-plots them).

use sf2d_bench::{load_proxy, machine_for, write_jsonl, HarnessOpts};
use sf2d_core::experiment::labeled_eigen;
use sf2d_core::prelude::*;
use sf2d_core::report::{fmt_secs, reduction_vs_next_best};

fn main() {
    let opts = HarnessOpts::from_args();
    // Eigen runs take an extra shrink (x4; x16 for the huge R-MAT whose
    // proxy is otherwise a million rows). Not more for the R-MAT: below
    // scale 16 the hub row alone exceeds a part's nonzero budget at p = 64,
    // and HP's vector distribution degenerates.
    let eigen_shrink = |name: &str| -> usize {
        if name == "rmat_26" {
            (opts.shrink * 16).min(1 << 12)
        } else {
            (opts.shrink * 4).min(1 << 12)
        }
    };
    let out = opts.out_file("table4.jsonl");
    let _ = std::fs::remove_file(&out);

    println!(
        "# Table 4 — eigensolve time (simulated s), avg of {} seeds (extra shrink {}x)",
        opts.seeds.len(),
        eigen_shrink("")
    );

    for name in ["hollywood-2009", "com-orkut", "rmat_26"] {
        let cfg = sf2d_core::sf2d_gen::proxy::by_name(name).unwrap();
        let a = load_proxy(cfg, eigen_shrink(name));
        let machine = machine_for(cfg, &a, Machine::cab());
        let mut builder = LayoutBuilder::new(&a, 0);
        let methods = Method::eigen_set(cfg.use_hp);
        let ks = KrylovSchurConfig::paper(0);

        println!();
        print!("| matrix | p |");
        for m in &methods {
            print!(" {} |", m.name());
        }
        println!(" reduction |");
        print!("|---|---:|");
        for _ in &methods {
            print!("---:|");
        }
        println!("---:|");

        for &p in &opts.procs {
            let mut rows = Vec::new();
            for &m in &methods {
                let dist = builder.dist(m, p);
                let row = labeled_eigen(
                    eigen_experiment(&a, &dist, machine, &ks, &opts.seeds),
                    cfg.name,
                    m,
                );
                rows.push(row);
            }
            // The paper's reduction column compares the MC/HP winner (the
            // last method) against the best other, excluding plain 2D-GP.
            let winner = rows.last().unwrap().solve_time;
            let others: Vec<f64> = rows[..rows.len() - 1]
                .iter()
                .filter(|r| r.method != "2D-GP")
                .map(|r| r.solve_time)
                .collect();
            let red = reduction_vs_next_best(winner, &others);
            print!("| {name} | {p} |");
            for r in &rows {
                print!(" {} |", fmt_secs(r.solve_time));
            }
            println!(" {red:.1}% |");
            write_jsonl(&out, &rows);
        }
    }
    eprintln!("rows written to {}", out.display());
}
