//! Paper-scale sweep tracker: drives the compressed-plan compiler and the
//! bounded-memory wave scheduler up to p = 16,384 ranks on a scale-20
//! R-MAT generator and writes `BENCH_scale.json` — the artefact that
//! shows the paper's 1D-vs-2D communication crossover at rank counts the
//! per-layout benches never reach.
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p sf2d-bench --bin bench_scale
//! ```
//!
//! Per (layout, p) row it records the crossover ingredients — max
//! messages per rank and total exchanged volume for expand and fold —
//! plus the cost-model `sim_time` of one budget-waved SpMV, the plan
//! compile wall-clock, the compressed arena footprint vs what the old
//! replicated nested-`Vec` representation would have held
//! (`plan_compress_ratio`, higher is better), and the allocator's
//! peak-live-bytes / allocation-count deltas for the row (this binary
//! installs [`sf2d_obs::mem::CountingAlloc`] as its global allocator).
//!
//! Flags: positional `OUT.json` (default `BENCH_scale.json`), `--scale N`
//! (R-MAT scale, default 20), `--procs a,b,c` (rank counts, default
//! `64,256,1024,4096,16384`), `--pmax N` (drop swept rank counts above
//! N), `--budget-mb N` (wave-scheduler live-workspace budget, default
//! 64), `--threads N` (compile thread budget, default 4), `--samples N`
//! (timing repeats for the compile-speedup gate, default 3), `--trace
//! FILE` (untimed traced SpMV after the sweep).
//!
//! `--assert-compile-speedup X` requires parallel FillComplete at
//! p = min(4096, largest swept p) to reach serial/parallel >= X. On a
//! host without real parallelism (`host_cpus < 2`) the assertion is
//! **skipped loudly** instead of failing: thread oversubscription on one
//! core cannot speed anything up. The byte-identity of the parallel
//! compile is asserted unconditionally — that gate has no hardware
//! excuse.

use std::path::PathBuf;
use std::sync::Arc;

use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{rmat, RmatConfig};
use sf2d_core::sf2d_obs::mem;
use sf2d_core::sf2d_sim::sf2d_par::Pool;
use sf2d_core::sf2d_spmv::{spmv_with, SpmvWorkspace};

#[global_allocator]
static ALLOC: mem::CountingAlloc = mem::CountingAlloc;

#[derive(serde::Serialize)]
struct ScaleRow {
    /// Layout family.
    name: String,
    p: u64,
    scale: u64,
    /// Max expand messages any rank sends (the paper's O(p) vs O(sqrt p)
    /// axis).
    expand_max_msgs: u64,
    /// Max fold messages any rank sends (0 for 1D layouts).
    fold_max_msgs: u64,
    /// Total expand volume, vector entries.
    expand_volume: u64,
    /// Total fold volume, vector entries.
    fold_volume: u64,
    /// Modeled seconds of one SpMV under the wave budget.
    sim_time: f64,
    /// Rank waves the budget split the superstep into.
    waves: u64,
    /// FillComplete (distribute + compile) wall clock, one shot.
    compile_wall_ns: u64,
    /// Compressed arena-backed plan footprint.
    plan_bytes: u64,
    /// What the pre-arena replicated nested representation would hold.
    replicated_plan_bytes: u64,
    /// replicated / compressed — higher is better; tracked as a
    /// regression metric (a drop means the dedup got worse).
    plan_compress_ratio: f64,
    /// Allocator high-water mark over this row (matrix build + compile +
    /// budgeted SpMV), bytes.
    peak_live_bytes: u64,
    /// Allocations over this row.
    allocs: u64,
}

#[derive(serde::Serialize)]
struct CompileGate {
    /// Rank count the gate compiles at: min(4096, largest swept p).
    p: u64,
    threads: u64,
    median_ns_serial: u64,
    median_ns_parallel: u64,
    /// serial / parallel wall clock.
    compile_speedup: f64,
    /// Parallel result byte-identical to serial (hard gate).
    compile_identical: bool,
    samples: u64,
}

#[derive(serde::Serialize)]
struct BenchReport {
    meta: sf2d_bench::BenchMeta,
    description: String,
    matrix: String,
    scale: u64,
    budget_mb: u64,
    host_cpus: u64,
    /// Smallest swept p where the best 2D layout's max expand messages
    /// beat the best 1D layout's (null if never).
    msg_crossover_p: Option<u64>,
    /// Smallest swept p where the best 2D layout's modeled SpMV time
    /// beats the best 1D layout's (null if never).
    sim_crossover_p: Option<u64>,
    rows: Vec<ScaleRow>,
    compile_gate: CompileGate,
}

fn layout(name: &str, n: usize, p: usize) -> MatrixDist {
    let (pr, pc) = grid_shape(p);
    match name {
        "1D-Block" => MatrixDist::block_1d(n, p),
        "1D-Random" => MatrixDist::random_1d(n, p, 5),
        "2D-Block" => MatrixDist::block_2d(n, pr, pc),
        "2D-Random" => MatrixDist::random_2d(n, pr, pc, 5),
        other => unreachable!("unknown layout {other}"),
    }
}

const LAYOUTS: [&str; 4] = ["1D-Block", "1D-Random", "2D-Block", "2D-Random"];

fn main() {
    let mut out_path = "BENCH_scale.json".to_string();
    let mut scale = 20u32;
    let mut procs: Vec<usize> = vec![64, 256, 1024, 4096, 16384];
    let mut pmax = usize::MAX;
    let mut budget_mb = 64u64;
    let mut threads = 4usize;
    let mut samples = 3usize;
    let mut assert_compile_speedup: Option<f64> = None;
    let mut trace: Option<PathBuf> = std::env::var_os("SF2D_TRACE").map(PathBuf::from);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> &str {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => {
                scale = need_value(i).parse().expect("numeric --scale");
                i += 2;
            }
            "--procs" => {
                procs = need_value(i)
                    .split(',')
                    .map(|t| t.parse().expect("numeric proc count"))
                    .collect();
                i += 2;
            }
            "--pmax" => {
                pmax = need_value(i).parse().expect("numeric --pmax");
                i += 2;
            }
            "--budget-mb" => {
                budget_mb = need_value(i).parse().expect("numeric --budget-mb");
                i += 2;
            }
            "--threads" => {
                threads = need_value(i).parse().expect("numeric --threads");
                i += 2;
            }
            "--samples" => {
                samples = need_value(i).parse().expect("numeric --samples");
                i += 2;
            }
            "--assert-compile-speedup" => {
                assert_compile_speedup = Some(need_value(i).parse().expect("numeric min speedup"));
                i += 2;
            }
            "--trace" => {
                trace = Some(PathBuf::from(need_value(i)));
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!(
                    "unknown flag {flag}\nusage: bench_scale [OUT.json] --scale N \
                     --procs a,b,c --pmax N --budget-mb N --threads N --samples N \
                     --assert-compile-speedup X --trace FILE"
                );
                std::process::exit(2);
            }
            positional => {
                out_path = positional.to_string();
                i += 1;
            }
        }
    }
    procs.retain(|&p| p <= pmax);
    procs.sort_unstable();
    procs.dedup();
    assert!(!procs.is_empty(), "no rank counts left after --pmax");
    let threads = threads.max(1);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let budget_bytes = budget_mb * (1 << 20);

    let a = rmat(&RmatConfig::graph500(scale), 7);
    eprintln!(
        "bench_scale: rmat scale {scale} ({} rows, {} nnz), p sweep {procs:?}, \
         budget {budget_mb} MiB, {threads} compile thread(s) on {host_cpus} host cpu(s)",
        a.nrows(),
        a.nnz()
    );
    let pool = Pool::new(threads);

    let mut rows: Vec<ScaleRow> = Vec::new();
    for &p in &procs {
        for name in LAYOUTS {
            let dist = layout(name, a.nrows(), p);
            mem::reset_peak();
            let base = mem::snapshot();

            let t0 = std::time::Instant::now();
            let dm = DistCsrMatrix::from_global_with(&a, &dist, threads, Some(&pool));
            let compile_wall_ns = t0.elapsed().as_nanos() as u64;

            // One budget-waved SpMV: the modeled time is the crossover
            // curve, the wave count proves the scheduler engaged.
            let x = DistVector::random(Arc::clone(&dm.vmap), 1);
            let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
            let mut ws = SpmvWorkspace::with_threads(threads).with_budget(budget_bytes);
            let mut ledger = CostLedger::new(Machine::cab());
            spmv_with(&dm, &x, &mut y, &mut ledger, &mut ws);

            let snap = mem::snapshot();
            let row = ScaleRow {
                name: name.to_string(),
                p: p as u64,
                scale: scale as u64,
                expand_max_msgs: dm.import.max_send_msgs() as u64,
                fold_max_msgs: dm.export.max_send_msgs() as u64,
                expand_volume: dm.import.total_volume() as u64,
                fold_volume: dm.export.total_volume() as u64,
                sim_time: ledger.total,
                waves: ws.wave_count() as u64,
                compile_wall_ns,
                plan_bytes: dm.compiled.plan_bytes(),
                replicated_plan_bytes: dm.compiled.replicated_plan_bytes(),
                plan_compress_ratio: dm.compiled.replicated_plan_bytes() as f64
                    / dm.compiled.plan_bytes().max(1) as f64,
                peak_live_bytes: snap.peak_live_bytes,
                allocs: snap.allocs - base.allocs,
            };
            eprintln!(
                "bench_scale: {:>9} p={:<5} msgs {:>5}/{:<5} sim {:>9.4}s waves {:>3} \
                 compile {:>7.1}ms plans {:>6.1}MiB (x{:.1} vs replicated) peak {:>7.1}MiB",
                row.name,
                row.p,
                row.expand_max_msgs,
                row.fold_max_msgs,
                row.sim_time,
                row.waves,
                row.compile_wall_ns as f64 / 1e6,
                row.plan_bytes as f64 / (1 << 20) as f64,
                row.plan_compress_ratio,
                row.peak_live_bytes as f64 / (1 << 20) as f64,
            );
            rows.push(row);
        }
    }

    // Crossover detection: best-in-family comparison per swept p. The
    // paper's claim is about the *family* (2D bounds messages by the grid
    // dimensions), so comparing family minima is the honest reading.
    let best = |rows: &[ScaleRow], p: u64, one_d: bool, f: &dyn Fn(&ScaleRow) -> f64| {
        rows.iter()
            .filter(|r| r.p == p && r.name.starts_with("1D") == one_d)
            .map(f)
            .fold(f64::INFINITY, f64::min)
    };
    let crossover = |f: &dyn Fn(&ScaleRow) -> f64| {
        procs
            .iter()
            .map(|&p| p as u64)
            .find(|&p| best(&rows, p, false, f) < best(&rows, p, true, f))
    };
    let msg_crossover_p = crossover(&|r| r.expand_max_msgs.max(r.fold_max_msgs) as f64);
    let sim_crossover_p = crossover(&|r| r.sim_time);

    // Compile-speedup gate: serial vs pooled FillComplete at the largest
    // swept p capped at 4096 (the acceptance point; 16K serial would
    // dominate the tracker's runtime for no extra information).
    let gate_p = procs
        .iter()
        .copied()
        .filter(|&p| p <= 4096)
        .max()
        .unwrap_or(procs[0]);
    let gate_dist = layout("2D-Random", a.nrows(), gate_p);
    let serial_dm = DistCsrMatrix::from_global(&a, &gate_dist);
    let parallel_dm = DistCsrMatrix::from_global_with(&a, &gate_dist, threads, Some(&pool));
    let compile_identical = serial_dm.compiled == parallel_dm.compiled
        && serial_dm.import == parallel_dm.import
        && serial_dm.export == parallel_dm.export;
    drop(parallel_dm);
    drop(serial_dm);
    let median_ns_serial = sf2d_bench::median_ns(samples, || {
        std::hint::black_box(DistCsrMatrix::from_global(&a, &gate_dist));
    });
    let median_ns_parallel = sf2d_bench::median_ns(samples, || {
        std::hint::black_box(DistCsrMatrix::from_global_with(
            &a,
            &gate_dist,
            threads,
            Some(&pool),
        ));
    });
    let compile_gate = CompileGate {
        p: gate_p as u64,
        threads: threads as u64,
        median_ns_serial,
        median_ns_parallel,
        compile_speedup: median_ns_serial as f64 / median_ns_parallel.max(1) as f64,
        compile_identical,
        samples: samples as u64,
    };
    eprintln!(
        "bench_scale: compile gate at p={gate_p}: serial {:.1}ms, parallel x{threads} {:.1}ms, \
         {:.2}x, identical={}",
        median_ns_serial as f64 / 1e6,
        median_ns_parallel as f64 / 1e6,
        compile_gate.compile_speedup,
        compile_identical
    );

    let report = BenchReport {
        meta: sf2d_bench::BenchMeta::collect("bench_scale", threads),
        description: format!(
            "1D-vs-2D crossover sweep on an R-MAT scale-{scale} generator: per (layout, p) \
             row, max messages + volume per exchange, modeled SpMV seconds under a \
             {budget_mb} MiB wave budget, FillComplete wall clock, compressed vs replicated \
             plan bytes, and allocator peak/count deltas; compile gate = serial vs \
             {threads}-thread FillComplete medians over {samples} samples"
        ),
        matrix: format!("rmat graph500 scale {scale} ({} nnz)", a.nnz()),
        scale: scale as u64,
        budget_mb,
        host_cpus: host_cpus as u64,
        msg_crossover_p,
        sim_crossover_p,
        rows,
        compile_gate,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_scale.json");
    eprintln!(
        "bench_scale: msg crossover at p={:?}, sim crossover at p={:?} -> {out_path}",
        report.msg_crossover_p, report.sim_crossover_p
    );

    // Traced run strictly after the timed sweep: one budgeted SpMV at the
    // largest swept p with the facade on; the allocator snapshot lands in
    // the trace's metrics registry via the mem.* gauges.
    if let Some(path) = trace {
        let p = *procs.iter().max().unwrap();
        let dist = layout("2D-Random", a.nrows(), p);
        let dm = DistCsrMatrix::from_global_with(&a, &dist, threads, Some(&pool));
        let x = DistVector::random(Arc::clone(&dm.vmap), 1);
        let mut y = DistVector::zeros(Arc::clone(&dm.vmap));
        let mut ws = SpmvWorkspace::with_threads(threads).with_budget(budget_bytes);
        let machine = Machine::cab();
        let (_, n) = sf2d_bench::capture_trace(&path, &machine, || {
            let mut ledger = CostLedger::new(machine);
            spmv_with(&dm, &x, &mut y, &mut ledger, &mut ws);
            let stats = mem::snapshot();
            sf2d_core::sf2d_obs::with_registry(|r| mem::record_mem_stats(r, 0, &stats));
        });
        eprintln!(
            "bench_scale: trace of 2D-Random p={p} ({n} events) -> {} (+ .md summary)",
            path.display()
        );
    }

    if !compile_identical {
        eprintln!("bench_scale: FAIL — parallel FillComplete differs from serial");
        std::process::exit(1);
    }
    if let Some(min) = assert_compile_speedup {
        if host_cpus < 2 {
            eprintln!(
                "bench_scale: SKIPPING --assert-compile-speedup {min}: host has {host_cpus} \
                 cpu(s); thread oversubscription on one core cannot demonstrate speedup. \
                 Run on a multi-core host to enforce the gate."
            );
        } else if report.compile_gate.compile_speedup < min {
            eprintln!(
                "bench_scale: FAIL — compile at p={gate_p}: speedup {:.2} < {min}",
                report.compile_gate.compile_speedup
            );
            std::process::exit(1);
        } else {
            eprintln!(
                "bench_scale: compile speedup gate passed ({:.2}x >= {min}x at p={gate_p})",
                report.compile_gate.compile_speedup
            );
        }
    }
}
