//! Regenerates the paper's **Figure 5**: SpMV strong-scaling curves for
//! com-orkut, cit-Patents and rmat_26 across all six layouts. Loads
//! `results/table2.jsonl` when present; recomputes otherwise.

use sf2d_bench::{ascii_scaling_chart, load_proxy, machine_for, read_jsonl, HarnessOpts};
use sf2d_core::experiment::labeled_spmv;
use sf2d_core::prelude::*;
use sf2d_core::SpmvRow;

fn main() {
    let opts = HarnessOpts::from_args();
    let cached: Option<Vec<SpmvRow>> = read_jsonl(&opts.out_file("table2.jsonl"));

    for name in ["com-orkut", "cit-Patents", "rmat_26"] {
        let cfg = sf2d_core::sf2d_gen::proxy::by_name(name).unwrap();
        let methods = Method::spmv_set(cfg.use_hp);
        let mut series: Vec<(String, Vec<f64>)> = methods
            .iter()
            .map(|m| (m.name().to_string(), Vec::new()))
            .collect();

        for &p in &opts.procs {
            // Look up cached rows first.
            let mut found: Vec<Option<f64>> = vec![None; methods.len()];
            if let Some(rows) = &cached {
                for (i, m) in methods.iter().enumerate() {
                    found[i] = rows
                        .iter()
                        .find(|r| r.matrix == name && r.p == p && r.method == m.name())
                        .map(|r| r.sim_time);
                }
            }
            if found.iter().any(|f| f.is_none()) {
                let a = load_proxy(cfg, opts.shrink);
                let machine = machine_for(cfg, &a, Machine::cab());
                let mut builder = LayoutBuilder::new(&a, 0);
                for (i, &m) in methods.iter().enumerate() {
                    if found[i].is_none() {
                        let dist = builder.dist(m, p);
                        let row = labeled_spmv(spmv_experiment(&a, &dist, machine, 100), name, m);
                        found[i] = Some(row.sim_time);
                    }
                }
            }
            for (i, f) in found.into_iter().enumerate() {
                series[i].1.push(f.unwrap());
            }
        }
        println!(
            "{}",
            ascii_scaling_chart(
                &format!("Figure 5 — {name}: 100x SpMV strong scaling (s)"),
                &opts.procs,
                &series
            )
        );
        // The paper's annotation: 2D-Random vs 2D-GP/HP at the largest p.
        let last = opts.procs.len() - 1;
        let rand2d = series.iter().find(|(n, _)| n == "2D-Random").unwrap().1[last];
        let gp2d = series.last().unwrap().1[last];
        println!(
            "largest p: 2D-Random {:.3}s vs 2D-GP/HP {:.3}s\n",
            rand2d, gp2d
        );
    }
}
