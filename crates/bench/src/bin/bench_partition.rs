//! Wall-clock partitioner tracker: times the deterministic multilevel
//! partitioners sequentially (`threads = 1`) against the task-parallel
//! path over a sweep of thread budgets, verifies every parallel result is
//! **byte-identical** to the sequential one (the determinism contract of
//! `sf2d-partition`), attributes where the wall time goes per pipeline
//! phase, and writes `BENCH_partition.json` in the same shape family as
//! `BENCH_spmv.json` so successive PRs can track both.
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p sf2d-bench --bin bench_partition
//! ```
//!
//! The file lands in the current directory (pass a path argument to put
//! it elsewhere). `--scales a,b,c` sets the R-MAT sweep (default
//! `12,14`), `--k N` the part count (default 64), `--threads a,b,c` the
//! thread budgets to sweep (default `1,2,4,8`), `--samples N` the timing
//! repeats per point (default 5, after one warmup).
//!
//! `--assert-min-speedup X` additionally requires every `gp` case at the
//! largest swept thread count to reach par/seq >= X — the CI speedup
//! smoke gate. On a host without real parallelism (`host_cpus < 2`) the
//! assertion is **skipped loudly** instead of failing: thread
//! oversubscription on one core cannot speed anything up, and a red CI
//! lane that only says "this runner has one core" would train people to
//! ignore it.
//!
//! **Exits nonzero if any parallel result differs from sequential** —
//! CI runs this as the determinism gate.

use sf2d_bench::BenchMeta;
use sf2d_core::sf2d_gen::{rmat, RmatConfig};
use sf2d_core::sf2d_graph::Graph;
use sf2d_core::sf2d_partition::{
    mondriaan_report, partition_graph_multiconstraint_report, partition_graph_report, GpConfig,
    GpReport, MondriaanConfig, PoolStats,
};

/// Per-phase nanoseconds — `gp` rows populate
/// `matching/contract/initpart/refine/project`, `mondriaan` rows
/// `split/assign`; fields outside a case's pipeline stay 0. Taken from
/// one representative (post-warmup) run, not the median sample:
/// attribution explains *where* a budget goes, the medians say *how
/// fast* it goes.
#[derive(serde::Serialize, Clone, Copy, Default)]
struct PhaseMap {
    matching: u64,
    contract: u64,
    initpart: u64,
    refine: u64,
    project: u64,
    split: u64,
    assign: u64,
}

#[derive(serde::Serialize)]
struct CaseResult {
    name: String,
    scale: u64,
    k: u64,
    /// Thread budget of the parallel runs in this row.
    threads: u64,
    median_ns_seq: u64,
    median_ns_par: u64,
    speedup: f64,
    identical: bool,
    samples: u64,
    phases_seq: PhaseMap,
    phases_par: PhaseMap,
    /// Worker-pool utilization of one representative parallel run
    /// (per-worker busy/idle/park, jobs, epoch backoffs); `None` for
    /// sequential rows and the pool-less mondriaan pipeline.
    pool: Option<PoolStats>,
}

#[derive(serde::Serialize)]
struct BenchReport {
    meta: BenchMeta,
    description: String,
    /// Thread budgets swept (each gets a row per case).
    thread_sweep: Vec<u64>,
    /// What the host actually has — speedups are only meaningful when
    /// this is >= the thread budget (a 1-core container can only show
    /// overhead, never speedup).
    host_cpus: u64,
    cases: Vec<CaseResult>,
    identical_all: bool,
}

fn main() {
    let mut out_path = "BENCH_partition.json".to_string();
    let mut scales: Vec<u32> = vec![12, 14];
    let mut k = 64usize;
    let mut sweep: Vec<usize> = vec![1, 2, 4, 8];
    let mut samples = 5usize;
    let mut assert_min_speedup: Option<f64> = None;
    let mut trace: Option<std::path::PathBuf> = std::env::var_os("SF2D_TRACE").map(Into::into);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> &str {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scales" => {
                scales = need_value(i)
                    .split(',')
                    .map(|t| t.parse().expect("numeric scale"))
                    .collect();
                i += 2;
            }
            "--k" => {
                k = need_value(i).parse().expect("numeric --k");
                i += 2;
            }
            "--threads" => {
                sweep = need_value(i)
                    .split(',')
                    .map(|t| t.parse().expect("numeric thread count"))
                    .collect();
                i += 2;
            }
            "--samples" => {
                samples = need_value(i).parse().expect("numeric --samples");
                i += 2;
            }
            "--assert-min-speedup" => {
                assert_min_speedup = Some(need_value(i).parse().expect("numeric min speedup"));
                i += 2;
            }
            "--trace" => {
                trace = Some(std::path::PathBuf::from(need_value(i)));
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!(
                    "unknown flag {flag}\nusage: bench_partition [OUT.json] \
                     --scales a,b,c --k N --threads a,b,c --samples N \
                     --assert-min-speedup X --trace FILE"
                );
                std::process::exit(2);
            }
            positional => {
                out_path = positional.to_string();
                i += 1;
            }
        }
    }
    assert!(!sweep.is_empty(), "--threads sweep must be non-empty");
    assert!(sweep.iter().all(|&t| t >= 1), "thread counts must be >= 1");
    sweep.sort_unstable();
    sweep.dedup();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut cases = Vec::new();
    for &scale in &scales {
        let a = rmat(&RmatConfig::graph500(scale), 7);
        let g = Graph::from_symmetric_matrix(&a);
        eprintln!(
            "bench_partition: scale {scale} ({} rows, {} nnz), k={k}, threads {sweep:?} \
             on {host_cpus} host cpu(s)",
            a.nrows(),
            a.nnz()
        );

        let cfg_t = |threads: usize| GpConfig {
            seed: 7,
            threads,
            ..GpConfig::default()
        };

        // gp: single-constraint k-way graph partitioning (the 1D/2D-GP path).
        {
            let seq = partition_graph_report(&g, k, &cfg_t(1));
            let seq_median = sf2d_bench::median_ns(samples, || {
                std::hint::black_box(partition_graph_report(&g, k, &cfg_t(1)));
            });
            for &t in &sweep {
                let par = partition_graph_report(&g, k, &cfg_t(t));
                let par_median = sf2d_bench::median_ns(samples, || {
                    std::hint::black_box(partition_graph_report(&g, k, &cfg_t(t)));
                });
                cases.push(case_row(
                    "gp",
                    scale,
                    k,
                    t,
                    samples,
                    seq.partition.part == par.partition.part,
                    seq_median,
                    par_median,
                    gp_phases(&seq),
                    gp_phases(&par),
                    par.pool.clone(),
                ));
            }
        }

        // gp-mc: multiconstraint (rows + nonzeros), ncon = 2.
        {
            let seq = partition_graph_multiconstraint_report(&g, k, &cfg_t(1));
            let seq_median = sf2d_bench::median_ns(samples, || {
                std::hint::black_box(partition_graph_multiconstraint_report(&g, k, &cfg_t(1)));
            });
            for &t in &sweep {
                let par = partition_graph_multiconstraint_report(&g, k, &cfg_t(t));
                let par_median = sf2d_bench::median_ns(samples, || {
                    std::hint::black_box(partition_graph_multiconstraint_report(&g, k, &cfg_t(t)));
                });
                cases.push(case_row(
                    "gp-mc",
                    scale,
                    k,
                    t,
                    samples,
                    seq.partition.part == par.partition.part,
                    seq_median,
                    par_median,
                    gp_phases(&seq),
                    gp_phases(&par),
                    par.pool.clone(),
                ));
            }
        }

        // mondriaan: nonzero-level recursive bisection.
        {
            let mcfg_t = |threads: usize| MondriaanConfig {
                seed: 7,
                threads,
                ..MondriaanConfig::default()
            };
            let (seq, seq_ph) = mondriaan_report(&a, k, &mcfg_t(1));
            let seq_median = sf2d_bench::median_ns(samples, || {
                std::hint::black_box(mondriaan_report(&a, k, &mcfg_t(1)));
            });
            for &t in &sweep {
                let (par, par_ph) = mondriaan_report(&a, k, &mcfg_t(t));
                let par_median = sf2d_bench::median_ns(samples, || {
                    std::hint::black_box(mondriaan_report(&a, k, &mcfg_t(t)));
                });
                cases.push(case_row(
                    "mondriaan",
                    scale,
                    k,
                    t,
                    samples,
                    seq.owners() == par.owners(),
                    seq_median,
                    par_median,
                    mondriaan_phases(&seq_ph),
                    mondriaan_phases(&par_ph),
                    None,
                ));
            }
        }
    }

    let identical_all = cases.iter().all(|c| c.identical);
    let report = BenchReport {
        meta: BenchMeta::collect("bench_partition", sweep.iter().copied().max().unwrap_or(1)),
        description: format!(
            "median wall-clock ns per full k-way partitioning call over {samples} samples \
             (1 warmup); seq = threads 1, par = each swept thread budget; identical = \
             parallel result byte-identical to sequential; phases_* = per-phase ns of one \
             representative run"
        ),
        thread_sweep: sweep.iter().map(|&t| t as u64).collect(),
        host_cpus: host_cpus as u64,
        cases,
        identical_all,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_partition.json");
    for c in &report.cases {
        eprintln!(
            "bench_partition: {} scale {} x{}: seq {:.1} ms, par {:.1} ms, {:.2}x, identical={}",
            c.name,
            c.scale,
            c.threads,
            c.median_ns_seq as f64 / 1e6,
            c.median_ns_par as f64 / 1e6,
            c.speedup,
            c.identical
        );
    }
    eprintln!("bench_partition: -> {out_path}");

    // Traced run strictly after the timed loops: one gp partitioning at
    // the largest swept scale and thread budget with the facade on. The
    // rb pool mirrors its per-worker batch spans into the trace, so the
    // Chrome file gets one track per pool worker with batches labeled by
    // phase (match/contract/initpart/refine/project/kway) — the medians
    // above never pay for the instrumentation.
    if let Some(path) = trace {
        let scale = *scales.iter().max().unwrap();
        let threads = *sweep.iter().max().unwrap();
        let a = rmat(&RmatConfig::graph500(scale), 7);
        let g = Graph::from_symmetric_matrix(&a);
        let machine = sf2d_core::sf2d_sim::Machine::cab();
        let cfg = GpConfig {
            seed: 7,
            threads,
            ..GpConfig::default()
        };
        let (_, n) = sf2d_bench::capture_trace(&path, &machine, || {
            std::hint::black_box(partition_graph_report(&g, k, &cfg));
        });
        eprintln!(
            "bench_partition: trace of gp scale {scale} x{threads} ({n} events) -> {} (+ .md summary)",
            path.display()
        );
    }

    if !identical_all {
        eprintln!("bench_partition: FAIL — parallel result differs from sequential");
        std::process::exit(1);
    }
    if let Some(min) = assert_min_speedup {
        if host_cpus < 2 {
            eprintln!(
                "bench_partition: SKIPPING --assert-min-speedup {min}: host has {host_cpus} \
                 cpu(s); thread oversubscription on one core cannot demonstrate speedup. \
                 Run on a multi-core host to enforce the gate."
            );
        } else {
            let top = *report.thread_sweep.iter().max().unwrap();
            let mut failed = false;
            for c in report
                .cases
                .iter()
                .filter(|c| c.name == "gp" && c.threads == top)
            {
                if c.speedup < min {
                    eprintln!(
                        "bench_partition: FAIL — gp scale {} at {} threads: speedup {:.2} < {min}",
                        c.scale, c.threads, c.speedup
                    );
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
            eprintln!("bench_partition: speedup gate passed (gp at {top} threads >= {min}x)");
        }
    }
}

fn gp_phases(r: &GpReport) -> PhaseMap {
    let p = r.phases;
    PhaseMap {
        matching: p.matching,
        contract: p.contract,
        initpart: p.initpart,
        refine: p.refine,
        project: p.project,
        ..PhaseMap::default()
    }
}

fn mondriaan_phases(p: &sf2d_core::sf2d_partition::MondriaanPhases) -> PhaseMap {
    PhaseMap {
        split: p.split,
        assign: p.assign,
        ..PhaseMap::default()
    }
}

/// Packages one (case, thread budget) row.
#[allow(clippy::too_many_arguments)]
fn case_row(
    name: &str,
    scale: u32,
    k: usize,
    threads: usize,
    samples: usize,
    identical: bool,
    median_ns_seq: u64,
    median_ns_par: u64,
    phases_seq: PhaseMap,
    phases_par: PhaseMap,
    pool: Option<PoolStats>,
) -> CaseResult {
    CaseResult {
        name: name.to_string(),
        scale: scale as u64,
        k: k as u64,
        threads: threads as u64,
        median_ns_seq,
        median_ns_par,
        speedup: median_ns_seq as f64 / median_ns_par.max(1) as f64,
        identical,
        samples: samples as u64,
        phases_seq,
        phases_par,
        pool,
    }
}
