//! Wall-clock partitioner tracker: times the deterministic multilevel
//! partitioners sequentially (`threads = 1`) against the task-parallel
//! path (`threads = N`) over an R-MAT scale sweep, verifies the parallel
//! result is **byte-identical** to the sequential one (the determinism
//! contract of `sf2d-partition`), and writes `BENCH_partition.json` in the
//! same shape as `BENCH_spmv.json` so successive PRs can track both.
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p sf2d-bench --bin bench_partition
//! ```
//!
//! The file lands in the current directory (pass a path argument to put
//! it elsewhere). `--scales a,b,c` sets the R-MAT sweep (default
//! `12,14`), `--k N` the part count (default 64), `--threads N` the
//! parallel thread budget (default `SF2D_THREADS`, else 8), `--samples N`
//! the timing repeats (default 5).
//!
//! **Exits nonzero if any parallel result differs from sequential** —
//! CI runs this as the determinism gate.

use sf2d_core::sf2d_gen::{rmat, RmatConfig};
use sf2d_core::sf2d_graph::Graph;
use sf2d_core::sf2d_partition::{
    mondriaan, partition_graph, partition_graph_multiconstraint, GpConfig, MondriaanConfig,
};

#[derive(serde::Serialize)]
struct CaseResult {
    name: String,
    scale: u64,
    k: u64,
    median_ns_seq: u64,
    median_ns_par: u64,
    speedup: f64,
    identical: bool,
    samples: u64,
}

#[derive(serde::Serialize)]
struct BenchReport {
    description: String,
    threads: u64,
    cases: Vec<CaseResult>,
    identical_all: bool,
}

fn main() {
    let mut out_path = "BENCH_partition.json".to_string();
    let mut scales: Vec<u32> = vec![12, 14];
    let mut k = 64usize;
    let mut threads = match sf2d_core::sf2d_sim::sf2d_par::threads_from_env() {
        1 => 8,
        n => n,
    };
    let mut samples = 5usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> &str {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scales" => {
                scales = need_value(i)
                    .split(',')
                    .map(|t| t.parse().expect("numeric scale"))
                    .collect();
                i += 2;
            }
            "--k" => {
                k = need_value(i).parse().expect("numeric --k");
                i += 2;
            }
            "--threads" => {
                threads = need_value(i).parse().expect("numeric --threads");
                i += 2;
            }
            "--samples" => {
                samples = need_value(i).parse().expect("numeric --samples");
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!(
                    "unknown flag {flag}\nusage: bench_partition [OUT.json] \
                     --scales a,b,c --k N --threads N --samples N"
                );
                std::process::exit(2);
            }
            positional => {
                out_path = positional.to_string();
                i += 1;
            }
        }
    }
    assert!(threads >= 1, "--threads must be >= 1");

    let mut cases = Vec::new();
    for &scale in &scales {
        let a = rmat(&RmatConfig::graph500(scale), 7);
        let g = Graph::from_symmetric_matrix(&a);
        eprintln!(
            "bench_partition: scale {scale} ({} rows, {} nnz), k={k}, 1 vs {threads} threads",
            a.nrows(),
            a.nnz()
        );

        let seq_cfg = GpConfig {
            seed: 7,
            threads: 1,
            ..GpConfig::default()
        };
        let par_cfg = GpConfig { threads, ..seq_cfg };

        // gp: single-constraint k-way graph partitioning (the 1D/2D-GP path).
        let seq = partition_graph(&g, k, &seq_cfg);
        let par = partition_graph(&g, k, &par_cfg);
        cases.push(case(
            "gp",
            scale,
            k,
            samples,
            seq.part == par.part,
            || std::hint::black_box(partition_graph(&g, k, &seq_cfg)),
            || std::hint::black_box(partition_graph(&g, k, &par_cfg)),
        ));

        // gp-mc: multiconstraint (rows + nonzeros), ncon = 2.
        let seq = partition_graph_multiconstraint(&g, k, &seq_cfg);
        let par = partition_graph_multiconstraint(&g, k, &par_cfg);
        cases.push(case(
            "gp-mc",
            scale,
            k,
            samples,
            seq.part == par.part,
            || std::hint::black_box(partition_graph_multiconstraint(&g, k, &seq_cfg)),
            || std::hint::black_box(partition_graph_multiconstraint(&g, k, &par_cfg)),
        ));

        // mondriaan: nonzero-level recursive bisection.
        let mseq_cfg = MondriaanConfig {
            seed: 7,
            threads: 1,
            ..MondriaanConfig::default()
        };
        let mpar_cfg = MondriaanConfig {
            threads,
            ..mseq_cfg
        };
        let seq = mondriaan(&a, k, &mseq_cfg);
        let par = mondriaan(&a, k, &mpar_cfg);
        cases.push(case(
            "mondriaan",
            scale,
            k,
            samples,
            seq.owners() == par.owners(),
            || std::hint::black_box(mondriaan(&a, k, &mseq_cfg)),
            || std::hint::black_box(mondriaan(&a, k, &mpar_cfg)),
        ));
    }

    let identical_all = cases.iter().all(|c| c.identical);
    let report = BenchReport {
        description: format!(
            "median wall-clock ns per full k-way partitioning call over {samples} samples; \
             seq = threads 1, par = threads {threads}; identical = parallel result \
             byte-identical to sequential"
        ),
        threads: threads as u64,
        cases,
        identical_all,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_partition.json");
    for c in &report.cases {
        eprintln!(
            "bench_partition: {} scale {}: seq {:.1} ms, par {:.1} ms, {:.2}x, identical={}",
            c.name,
            c.scale,
            c.median_ns_seq as f64 / 1e6,
            c.median_ns_par as f64 / 1e6,
            c.speedup,
            c.identical
        );
    }
    eprintln!("bench_partition: -> {out_path}");
    if !identical_all {
        eprintln!("bench_partition: FAIL — parallel result differs from sequential");
        std::process::exit(1);
    }
}

/// Times the sequential and parallel closures and packages one case row.
fn case<A, B>(
    name: &str,
    scale: u32,
    k: usize,
    samples: usize,
    identical: bool,
    seq: impl FnMut() -> A,
    par: impl FnMut() -> B,
) -> CaseResult {
    let median_ns_seq = sf2d_bench::median_ns(samples, drop_result(seq));
    let median_ns_par = sf2d_bench::median_ns(samples, drop_result(par));
    CaseResult {
        name: name.to_string(),
        scale: scale as u64,
        k: k as u64,
        median_ns_seq,
        median_ns_par,
        speedup: median_ns_seq as f64 / median_ns_par.max(1) as f64,
        identical,
        samples: samples as u64,
    }
}

fn drop_result<R>(mut f: impl FnMut() -> R) -> impl FnMut() {
    move || {
        f();
    }
}
