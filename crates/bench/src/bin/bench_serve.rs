//! Serving SLO tracker: drives the resident `sf2d-serve` engine through
//! a deterministic query stream in two scenarios — **steady** (the plan
//! compiled at construction serves every batch) and **mutating** (edge
//! churn between bursts forces epoch bumps, recompiles, and possibly
//! drift repartitions) — and writes `BENCH_serve.json` with per-scenario
//! request-level numbers: p50/p99 per-query latency (a query's latency
//! is its batch's flush wall time), throughput in queries per second,
//! the batch-size histogram, and the deterministic amortization ratios
//! (`cache_hit_ratio`, `gather_amortization_ratio`) that the CI
//! `perf_diff --relative-only` gate holds across machines.
//!
//! Run from the repo root:
//!
//! ```text
//! cargo run --release -p sf2d-bench --bin bench_serve
//! ```
//!
//! The file lands in the current directory (pass a path argument to put
//! it elsewhere). `--scale N` sizes the R-MAT graph (default 10);
//! `--p N` sets the rank count (default 64).

use std::time::Instant;

use sf2d_core::experiment::ServeRow;
use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{rmat, RmatConfig};
use sf2d_core::sf2d_graph::CsrMatrix;
use sf2d_core::sf2d_obs::Histogram;
use sf2d_serve::{Engine, EngineConfig};

/// Flush rounds per scenario.
const ROUNDS: usize = 24;
/// SpMM batch width cap.
const MAX_BATCH: usize = 16;

/// Deterministic burst widths: mostly full batches with a sprinkling of
/// partial ones, so the batch-size histogram has real shape.
fn burst_for(round: usize) -> usize {
    match round % 6 {
        0..=2 => MAX_BATCH,
        3 => MAX_BATCH / 2,
        4 => 3,
        _ => 1,
    }
}

fn query_vec(n: usize, q: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 31 + q * 17) % 23) as f64 - 11.0)
        .collect()
}

/// Runs one scenario to a [`ServeRow`] plus the engine's batch-size
/// buckets. `mutate` interleaves an effective edge upsert before every
/// other burst — each one an epoch bump and (lazily) a plan recompile.
fn run_scenario(
    a: &CsrMatrix,
    cfg: EngineConfig,
    matrix: &str,
    scenario: &str,
    mutate: bool,
) -> (ServeRow, Vec<(u64, u64)>) {
    let mut engine = Engine::new(a, cfg.clone());
    let n = engine.n();
    let mut latency = Histogram::default();
    let mut next_q = 0usize;
    let t0 = Instant::now();
    for round in 0..ROUNDS {
        if mutate && round % 2 == 1 {
            let i = (round as u32).wrapping_mul(13) % n as u32;
            let j = (round as u32).wrapping_mul(29).wrapping_add(7) % n as u32;
            // A fresh weight each round: always an effective change.
            engine.insert_edge(i, j, 100.0 + round as f64);
        }
        for _ in 0..burst_for(round) {
            engine.submit(query_vec(n, next_q));
            next_q += 1;
        }
        let t = Instant::now();
        let replies = engine.flush();
        let flush_ns = t.elapsed().as_nanos() as u64;
        // One burst <= MAX_BATCH, so the whole flush is this query's
        // batch: bill its wall time to every query it answered.
        for reply in &replies {
            std::hint::black_box(reply.y.len());
            latency.observe(flush_ns);
        }
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let m = &engine.metrics;
    let row = ServeRow {
        matrix: matrix.to_string(),
        method: cfg.method.name().to_string(),
        p: cfg.p,
        scenario: scenario.to_string(),
        max_batch: cfg.max_batch,
        queries: m.queries,
        batches: m.batches,
        latency_p50_ns: latency.p50().unwrap_or(0.0).round() as u64,
        latency_p99_ns: latency.p99().unwrap_or(0.0).round() as u64,
        qps: m.queries as f64 / wall_secs,
        gather_amortization_ratio: m.gather_amortization_ratio(),
        cache_hit_ratio: m.cache_hit_ratio(),
        epoch_bumps: m.epoch_bumps,
        sim_time: engine.ledger.total,
    };
    (row, engine.metrics.batch_sizes.nonzero_buckets())
}

/// One merged batch-size histogram bucket.
#[derive(serde::Serialize)]
struct Bucket {
    /// Bucket upper bound (batch width).
    le: u64,
    /// Batches that landed in this bucket.
    count: u64,
}

#[derive(serde::Serialize)]
struct BenchReport {
    meta: sf2d_bench::BenchMeta,
    description: String,
    matrix: String,
    p: u64,
    max_batch: u64,
    /// One row per scenario ("steady", "mutating").
    serve: Vec<ServeRow>,
    /// Merged batch-size histogram over both scenarios.
    batch_size_buckets: Vec<Bucket>,
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut scale = 10u32;
    let mut p = 64usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> &str {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => {
                scale = need_value(i).parse().expect("numeric --scale");
                i += 2;
            }
            "--p" => {
                p = need_value(i).parse().expect("numeric --p");
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\nusage: bench_serve [OUT.json] --scale N --p N");
                std::process::exit(2);
            }
            positional => {
                out_path = positional.to_string();
                i += 1;
            }
        }
    }

    let a = rmat(&RmatConfig::graph500(scale), 7);
    let matrix = format!("rmat-s{scale}");
    let threads = RuntimeConfig::from_env().threads;
    let cfg = EngineConfig::new(Method::TwoDGp, p)
        .with_threads(threads)
        .with_max_batch(MAX_BATCH);
    eprintln!(
        "bench_serve: {} rows, {} nnz, p={p}, max_batch={MAX_BATCH}, {ROUNDS} rounds/scenario",
        a.nrows(),
        a.nnz()
    );

    let (steady, steady_buckets) = run_scenario(&a, cfg.clone(), &matrix, "steady", false);
    let (mutating, mut_buckets) = run_scenario(&a, cfg, &matrix, "mutating", true);

    let mut buckets = std::collections::BTreeMap::new();
    for (b, c) in steady_buckets.into_iter().chain(mut_buckets) {
        *buckets.entry(b).or_insert(0u64) += c;
    }

    println!("| scenario | queries | batches | p50 | p99 | qps | hit ratio | amortization |");
    println!("|---|---:|---:|---:|---:|---:|---:|---:|");
    for row in [&steady, &mutating] {
        println!(
            "| {} | {} | {} | {} ns | {} ns | {:.0} | {:.3} | {:.2} |",
            row.scenario,
            row.queries,
            row.batches,
            row.latency_p50_ns,
            row.latency_p99_ns,
            row.qps,
            row.cache_hit_ratio,
            row.gather_amortization_ratio,
        );
    }

    let report = BenchReport {
        meta: sf2d_bench::BenchMeta::collect("bench_serve", threads),
        description: format!(
            "Resident serving engine on rmat graph500 scale {scale}, 2D-GP, p = {p}: \
             {ROUNDS} deterministic query bursts per scenario at max_batch {MAX_BATCH}; \
             steady keeps one cached plan, mutating upserts an edge before every other \
             burst (epoch bump + lazy recompile). Latency quantiles and qps are \
             machine-local; the *_ratio columns are deterministic and gate under \
             --relative-only."
        ),
        matrix: format!("rmat graph500 scale {scale} ({} nnz)", a.nnz()),
        p: p as u64,
        max_batch: MAX_BATCH as u64,
        serve: vec![steady, mutating],
        batch_size_buckets: buckets
            .into_iter()
            .map(|(le, count)| Bucket { le, count })
            .collect(),
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_serve.json");
    let (s, m) = (&report.serve[0], &report.serve[1]);
    eprintln!(
        "bench_serve: steady p50 {} ns / p99 {} ns at {:.0} qps (hit ratio {:.3}); \
         mutating p50 {} ns / p99 {} ns at {:.0} qps (hit ratio {:.3}, {} epoch bumps) \
         -> {out_path}",
        s.latency_p50_ns,
        s.latency_p99_ns,
        s.qps,
        s.cache_hit_ratio,
        m.latency_p50_ns,
        m.latency_p99_ns,
        m.qps,
        m.cache_hit_ratio,
        m.epoch_bumps
    );
}
