//! Criterion microbenchmarks of the wall-clock hot paths: the local SpMV
//! kernel, CSR assembly, the partitioners, layout-metric computation, and
//! the distributed-matrix build. These measure *real* time (unlike the
//! table harnesses, which report simulated cluster time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sf2d_core::prelude::*;
use sf2d_core::sf2d_gen::{rmat, RmatConfig};
use sf2d_core::sf2d_partition::{GpConfig, HgConfig};

fn bench_matrix() -> CsrMatrix {
    rmat(&RmatConfig::graph500(13), 7)
}

fn spmv_kernel(c: &mut Criterion) {
    let a = bench_matrix();
    let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64).sin()).collect();
    let mut g = c.benchmark_group("spmv_local");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function(BenchmarkId::new("csr", a.nnz()), |b| {
        b.iter(|| std::hint::black_box(a.spmv_dense(&x)))
    });
    g.finish();
}

fn csr_assembly(c: &mut Criterion) {
    let a = bench_matrix();
    let coo = a.to_coo();
    let mut g = c.benchmark_group("assembly");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("from_coo", |b| {
        b.iter(|| CsrMatrix::from_coo(std::hint::black_box(&coo)))
    });
    g.bench_function("transpose", |b| {
        b.iter(|| std::hint::black_box(&a).transpose())
    });
    g.finish();
}

fn partitioners(c: &mut Criterion) {
    let a = rmat(&RmatConfig::graph500(11), 3);
    let graph = Graph::from_symmetric_matrix(&a);
    let mut g = c.benchmark_group("partitioners");
    g.sample_size(10);
    g.bench_function("gp_k16", |b| {
        b.iter(|| {
            sf2d_core::sf2d_partition::partition_graph(
                std::hint::black_box(&graph),
                16,
                &GpConfig::default(),
            )
        })
    });
    g.bench_function("hp_k16", |b| {
        b.iter(|| {
            sf2d_core::sf2d_partition::partition_hypergraph_matrix(
                std::hint::black_box(&a),
                16,
                &HgConfig::default(),
            )
        })
    });
    g.finish();
}

fn layout_machinery(c: &mut Criterion) {
    let a = bench_matrix();
    let dist = MatrixDist::block_2d(a.nrows(), 8, 8);
    let mut g = c.benchmark_group("layout");
    g.sample_size(10);
    g.bench_function("metrics_2d_block_p64", |b| {
        b.iter(|| LayoutMetrics::compute(std::hint::black_box(&a), &dist))
    });
    g.bench_function("dist_matrix_build_p64", |b| {
        b.iter(|| DistCsrMatrix::from_global(std::hint::black_box(&a), &dist))
    });
    g.finish();
}

fn distributed_spmv(c: &mut Criterion) {
    let a = bench_matrix();
    let dist = MatrixDist::block_2d(a.nrows(), 8, 8);
    let dm = DistCsrMatrix::from_global(&a, &dist);
    let x = DistVector::random(std::sync::Arc::clone(&dm.vmap), 1);
    let mut y = DistVector::zeros(std::sync::Arc::clone(&dm.vmap));
    let mut g = c.benchmark_group("spmv_distributed");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("simulated_p64", |b| {
        b.iter(|| {
            let mut ledger = CostLedger::new(Machine::cab());
            spmv(&dm, &x, &mut y, &mut ledger);
            std::hint::black_box(ledger.total)
        })
    });
    g.finish();
}

/// The PR's headline kernels: a 100-iteration SpMV sweep and a 4-column
/// SpMM, compiled local-index path vs the gid-based reference executor,
/// on the paper's 2D-GP layout. Mirrors the `bench_spmv` tracker binary
/// (which records `BENCH_spmv.json`), at a criterion-friendly scale.
fn spmv_hot_path(c: &mut Criterion) {
    use sf2d_core::sf2d_spmv::{reference, spmm_with, spmv_with, DistMultiVector, SpmvWorkspace};

    let a = rmat(&RmatConfig::graph500(11), 7);
    let mut builder = LayoutBuilder::new(&a, 0);
    let dist = builder.dist(Method::TwoDGp, 64);
    let dm = DistCsrMatrix::from_global(&a, &dist);
    let x = DistVector::random(std::sync::Arc::clone(&dm.vmap), 1);
    let mut y = DistVector::zeros(std::sync::Arc::clone(&dm.vmap));
    let cols: Vec<Vec<f64>> = (0..4)
        .map(|c| (0..a.nrows()).map(|i| ((i + c) as f64).cos()).collect())
        .collect();
    let xm = DistMultiVector::from_columns(std::sync::Arc::clone(&dm.vmap), &cols);
    let mut ym = DistMultiVector::zeros(std::sync::Arc::clone(&dm.vmap), 4);
    let mut ws = SpmvWorkspace::new();

    let mut g = c.benchmark_group("spmv100_2dgp_p64");
    g.sample_size(10);
    g.bench_function("compiled", |b| {
        b.iter(|| {
            let mut ledger = CostLedger::new(Machine::cab());
            for _ in 0..100 {
                spmv_with(&dm, &x, &mut y, &mut ledger, &mut ws);
            }
            std::hint::black_box(ledger.total)
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            let mut ledger = CostLedger::new(Machine::cab());
            for _ in 0..100 {
                reference::spmv_ref(&dm, &x, &mut y, &mut ledger);
            }
            std::hint::black_box(ledger.total)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("spmm4_2dgp_p64");
    g.sample_size(10);
    g.bench_function("compiled", |b| {
        b.iter(|| {
            let mut ledger = CostLedger::new(Machine::cab());
            spmm_with(&dm, &xm, &mut ym, &mut ledger, &mut ws);
            std::hint::black_box(ledger.total)
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            let mut ledger = CostLedger::new(Machine::cab());
            reference::spmm_ref(&dm, &xm, &mut ym, &mut ledger);
            std::hint::black_box(ledger.total)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    spmv_kernel,
    csr_assembly,
    partitioners,
    layout_machinery,
    distributed_spmv,
    spmv_hot_path
);

// --- appended groups: solver and redistribution kernels ---

mod extra {
    use super::*;
    use criterion::Criterion;
    use sf2d_core::sf2d_eigen::dense::{symmetric_eig, DenseMat};
    use sf2d_core::sf2d_eigen::KrylovSchurConfig;
    use sf2d_core::sf2d_spmv::{MigrationPlan, PlainSpmvOp};

    pub fn dense_eig(c: &mut Criterion) {
        let n = 40;
        let mut a = DenseMat::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let x = (((i * 31 + j * 17) % 19) as f64 - 9.0) / 9.0;
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        c.bench_function("dense_jacobi_40", |b| {
            b.iter(|| symmetric_eig(std::hint::black_box(&a)))
        });
    }

    pub fn eigensolve(c: &mut Criterion) {
        let adj = rmat(&RmatConfig::graph500(10), 5);
        let l = sf2d_core::sf2d_graph::normalized_laplacian(&adj).unwrap();
        let d = MatrixDist::block_2d(l.nrows(), 4, 4);
        let op = PlainSpmvOp::new(DistCsrMatrix::from_global(&l, &d));
        let cfg = KrylovSchurConfig {
            nev: 4,
            max_basis: 24,
            tol: 1e-3,
            max_restarts: 100,
            seed: 1,
        };
        let mut g = c.benchmark_group("eigensolver");
        g.sample_size(10);
        g.bench_function("krylov_schur_nev4_p16", |b| {
            b.iter(|| {
                let mut ledger = CostLedger::new(Machine::cab());
                sf2d_core::sf2d_eigen::krylov_schur_largest(
                    std::hint::black_box(&op),
                    &cfg,
                    &mut ledger,
                )
            })
        });
        g.finish();
    }

    pub fn migration(c: &mut Criterion) {
        let a = rmat(&RmatConfig::graph500(12), 3);
        let from = MatrixDist::block_1d(a.nrows(), 64);
        let to = MatrixDist::block_2d(a.nrows(), 8, 8);
        let mut g = c.benchmark_group("migration");
        g.sample_size(10);
        g.bench_function("plan_build_p64", |b| {
            b.iter(|| MigrationPlan::build(std::hint::black_box(&a), &from, &to))
        });
        g.finish();
    }

    pub fn reorder(c: &mut Criterion) {
        let a = rmat(
            &RmatConfig {
                edge_factor: 4,
                ..RmatConfig::graph500(12)
            },
            9,
        );
        let mut g = c.benchmark_group("reorder");
        g.sample_size(10);
        g.bench_function("rcm", |b| {
            b.iter(|| sf2d_core::sf2d_graph::reorder::rcm(std::hint::black_box(&a)))
        });
        g.finish();
    }
}

criterion_group!(
    solver_benches,
    extra::dense_eig,
    extra::eigensolve,
    extra::migration,
    extra::reorder
);

criterion_main!(benches, solver_benches);
