//! Property-based tests for the distributed eigensolvers on random
//! symmetric operators.

use std::sync::Arc;

use proptest::prelude::*;
use sf2d_eigen::{krylov_schur_largest, KrylovSchurConfig};
use sf2d_graph::{CooMatrix, CsrMatrix};
use sf2d_partition::MatrixDist;
use sf2d_sim::{CostLedger, Machine};
use sf2d_spmv::{DistCsrMatrix, DistVector, LinearOperator, PlainSpmvOp};

/// Random symmetric matrix with a ring backbone (keeps it connected, so
/// spectra are non-degenerate enough for quick convergence).
fn sym_strategy() -> impl Strategy<Value = CsrMatrix> {
    (24usize..48).prop_flat_map(|n| {
        proptest::collection::vec((0u32..48, 0u32..48, 0.2f64..2.0), 0..80).prop_map(move |extra| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n as u32 {
                coo.push_sym(i, (i + 1) % n as u32, 1.0);
            }
            for (u, v, w) in extra {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    coo.push_sym(u, v, w);
                }
            }
            CsrMatrix::from_coo(&coo)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Converged Ritz pairs satisfy the eigen equation to their reported
    /// residual, eigenvalues are within the Gershgorin bound and sorted.
    #[test]
    fn krylov_schur_invariants(a in sym_strategy(), p in 1usize..7, seed in 0u64..50) {
        let d = MatrixDist::random_1d(a.nrows(), p, seed);
        let op = PlainSpmvOp::new(DistCsrMatrix::from_global(&a, &d));
        let cfg = KrylovSchurConfig {
            nev: 2,
            max_basis: 16,
            tol: 1e-6,
            max_restarts: 200,
            seed,
        };
        let mut ledger = CostLedger::new(Machine::cab());
        let res = krylov_schur_largest(&op, &cfg, &mut ledger);
        prop_assume!(res.converged); // rare non-convergence under the cap

        // Gershgorin bound.
        let bound = (0..a.nrows())
            .map(|i| a.row(i).1.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0f64, f64::max);
        for &v in &res.values {
            prop_assert!(v.abs() <= bound + 1e-9, "{v} outside {bound}");
        }
        // Sorted descending.
        prop_assert!(res.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));

        // Residual equation, measured directly.
        for (i, vec) in res.vectors.iter().enumerate() {
            let xg = vec.to_global();
            let ax = a.spmv_dense(&xg);
            let xnorm: f64 = xg.iter().map(|x| x * x).sum::<f64>().sqrt();
            let rnorm: f64 = ax
                .iter()
                .zip(&xg)
                .map(|(av, xv)| (av - res.values[i] * xv).powi(2))
                .sum::<f64>()
                .sqrt();
            prop_assert!(
                rnorm <= 1e-4 * res.values[i].abs().max(1.0) * xnorm.max(1e-30),
                "pair {i}: residual {rnorm}"
            );
        }
    }

    /// The solve is layout-invariant: the same seed on different rank
    /// counts yields the same eigenvalues (to rounding).
    #[test]
    fn layout_invariance(a in sym_strategy(), seed in 0u64..20) {
        let cfg = KrylovSchurConfig {
            nev: 2,
            max_basis: 14,
            tol: 1e-8,
            max_restarts: 150,
            seed,
        };
        let mut vals = Vec::new();
        for p in [2usize, 5] {
            let d = MatrixDist::block_1d(a.nrows(), p);
            let op = PlainSpmvOp::new(DistCsrMatrix::from_global(&a, &d));
            let mut ledger = CostLedger::new(Machine::cab());
            let res = krylov_schur_largest(&op, &cfg, &mut ledger);
            prop_assume!(res.converged);
            vals.push(res.values);
        }
        for (x, y) in vals[0].iter().zip(&vals[1]) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    /// A random start vector never changes which eigenvalues exist — only
    /// the trajectory: two seeds agree on the top eigenvalue.
    #[test]
    fn seed_independence_of_spectrum(a in sym_strategy()) {
        let d = MatrixDist::block_1d(a.nrows(), 3);
        let op = PlainSpmvOp::new(DistCsrMatrix::from_global(&a, &d));
        let mut tops = Vec::new();
        for seed in [1u64, 99] {
            let cfg = KrylovSchurConfig {
                nev: 1,
                max_basis: 12,
                tol: 1e-8,
                max_restarts: 150,
                seed,
            };
            let mut ledger = CostLedger::new(Machine::cab());
            let res = krylov_schur_largest(&op, &cfg, &mut ledger);
            prop_assume!(res.converged);
            tops.push(res.values[0]);
        }
        prop_assert!((tops[0] - tops[1]).abs() < 1e-6, "{tops:?}");
    }

    /// Sanity: the operator wrapper and a raw distributed SpMV agree.
    #[test]
    fn plain_op_equals_spmv(a in sym_strategy(), p in 1usize..6) {
        let d = MatrixDist::block_1d(a.nrows(), p);
        let dm = DistCsrMatrix::from_global(&a, &d);
        let op = PlainSpmvOp::new(dm);
        let x = DistVector::random(Arc::clone(op.vmap()), 7);
        let mut y1 = DistVector::zeros(Arc::clone(op.vmap()));
        let mut ledger = CostLedger::new(Machine::cab());
        op.apply(&x, &mut y1, &mut ledger);
        let want = a.spmv_dense(&x.to_global());
        for (g, w) in y1.to_global().iter().zip(&want) {
            prop_assert!((g - w).abs() <= 1e-9 * (1.0 + w.abs()));
        }
    }
}
