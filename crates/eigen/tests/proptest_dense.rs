//! Property-based tests for the dense eigensolvers: reconstruction,
//! orthogonality and spectral invariants on random symmetric matrices.

use proptest::prelude::*;
use sf2d_eigen::dense::{symmetric_eig, tridiag_eig, DenseMat};

fn sym_strategy() -> impl Strategy<Value = DenseMat> {
    (1usize..14).prop_flat_map(|n| {
        proptest::collection::vec(-3.0f64..3.0, n * n).prop_map(move |vals| {
            let mut m = DenseMat::zeros(n);
            for i in 0..n {
                for j in 0..=i {
                    let x = vals[i * n + j];
                    m[(i, j)] = x;
                    m[(j, i)] = x;
                }
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A = V D Vᵀ reconstruction within tolerance.
    #[test]
    fn jacobi_reconstructs(a in sym_strategy()) {
        let n = a.n;
        let (vals, vecs) = symmetric_eig(&a);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += vecs[(i, k)] * vals[k] * vecs[(j, k)];
                }
                prop_assert!((acc - a[(i, j)]).abs() < 1e-8,
                    "({i},{j}): {acc} vs {}", a[(i, j)]);
            }
        }
    }

    /// Eigenvalues sum to the trace and multiply to the determinant sign
    /// structure (checked via trace only — determinant is ill-conditioned).
    #[test]
    fn jacobi_preserves_trace(a in sym_strategy()) {
        let (vals, _) = symmetric_eig(&a);
        let trace: f64 = (0..a.n).map(|i| a[(i, i)]).sum();
        prop_assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-8);
    }

    /// Eigenvalues respect the Gershgorin disc bound.
    #[test]
    fn gershgorin_bound(a in sym_strategy()) {
        let n = a.n;
        let (vals, _) = symmetric_eig(&a);
        let bound = (0..n)
            .map(|i| (0..n).map(|j| a[(i, j)].abs()).sum::<f64>())
            .fold(0.0f64, f64::max);
        for v in vals {
            prop_assert!(v.abs() <= bound + 1e-9, "{v} outside Gershgorin {bound}");
        }
    }

    /// Tridiagonal QL agrees with Jacobi on the same matrix.
    #[test]
    fn tridiag_matches_jacobi(
        diag in proptest::collection::vec(-3.0f64..3.0, 1..12),
        offr in proptest::collection::vec(-2.0f64..2.0, 0..11),
    ) {
        let n = diag.len();
        let off: Vec<f64> = offr.into_iter().take(n.saturating_sub(1)).collect();
        prop_assume!(off.len() + 1 == n || n == 1);
        let (tv, _) = tridiag_eig(&diag, &off);
        let mut a = DenseMat::zeros(n);
        for i in 0..n {
            a[(i, i)] = diag[i];
        }
        for i in 0..n.saturating_sub(1) {
            a[(i, i + 1)] = off[i];
            a[(i + 1, i)] = off[i];
        }
        let (jv, _) = symmetric_eig(&a);
        for (t, j) in tv.iter().zip(&jv) {
            prop_assert!((t - j).abs() < 1e-8, "{t} vs {j}");
        }
    }
}
