//! LOBPCG (locally optimal block preconditioned conjugate gradient),
//! unpreconditioned, for the **largest** eigenpairs of a symmetric
//! operator.
//!
//! Anasazi ships LOBPCG alongside BKS; the paper's §4 reports "preliminary
//! experiments indicate BKS is effective for scale-free graphs, so we use
//! it". This implementation lets the `ablations` harness re-run that
//! method comparison: LOBPCG iterates a `[X | R | P]` trial subspace
//! (current block, residuals, previous directions) with a Rayleigh–Ritz
//! projection each step.

use std::sync::Arc;

use sf2d_sim::cost::CostLedger;
use sf2d_spmv::{DistVector, LinearOperator};

use crate::dense::{symmetric_eig, DenseMat};
use crate::ortho::cgs2;

/// Options for LOBPCG.
#[derive(Debug, Clone, Copy)]
pub struct LobpcgConfig {
    /// Block size = number of (largest) eigenpairs sought.
    pub nev: usize,
    /// Relative residual tolerance.
    pub tol: f64,
    /// Iteration budget.
    pub max_iters: usize,
    /// Seed for the random initial block.
    pub seed: u64,
}

/// LOBPCG result.
#[derive(Debug)]
pub struct LobpcgResult {
    /// Eigenvalues, largest first.
    pub values: Vec<f64>,
    /// Matching Ritz vectors.
    pub vectors: Vec<DistVector>,
    /// Relative residual norms at exit.
    pub residuals: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Operator applications.
    pub op_applies: usize,
    /// Whether every pair met the tolerance.
    pub converged: bool,
}

/// Runs LOBPCG for the `nev` largest eigenpairs.
///
/// # Panics
/// Panics if `nev == 0` or the operator is smaller than `3 * nev`.
pub fn lobpcg_largest(
    op: &dyn LinearOperator,
    cfg: &LobpcgConfig,
    ledger: &mut CostLedger,
) -> LobpcgResult {
    let m = cfg.nev;
    assert!(m >= 1, "need nev >= 1");
    let map = Arc::clone(op.vmap());
    assert!(
        map.n() >= 3 * m,
        "operator too small for the 3*nev trial space"
    );

    // Orthonormal random start block.
    let mut x: Vec<DistVector> = Vec::with_capacity(m);
    for i in 0..m {
        let mut v = DistVector::random(Arc::clone(&map), cfg.seed ^ ((i as u64) << 24));
        let nrm = cgs2(&mut v, &x, ledger);
        v.scale(1.0 / nrm.max(1e-300), ledger);
        x.push(v);
    }
    let mut p: Vec<DistVector> = Vec::new();
    let mut op_applies = 0usize;
    let mut values = vec![0.0f64; m];
    let mut residuals = vec![f64::INFINITY; m];

    for iter in 1..=cfg.max_iters {
        // Trial subspace S = orthonormalized [X | R | P].
        // First compute AX and the Rayleigh quotients to form residuals.
        let mut ax: Vec<DistVector> = Vec::with_capacity(m);
        for xi in &x {
            let mut y = DistVector::zeros(Arc::clone(&map));
            op.apply(xi, &mut y, ledger);
            op_applies += 1;
            ax.push(y);
        }
        for i in 0..m {
            values[i] = ax[i].dot(&x[i], ledger);
        }
        // Residuals R_i = A x_i − θ_i x_i.
        let mut r: Vec<DistVector> = Vec::with_capacity(m);
        for i in 0..m {
            let mut ri = ax[i].clone();
            ri.axpy(-values[i], &x[i], ledger);
            let nrm = ri.norm2(ledger);
            residuals[i] = nrm / values[i].abs().max(1e-30);
            r.push(ri);
        }
        if residuals.iter().all(|&t| t <= cfg.tol) {
            return finish(x, values, residuals, iter, op_applies, true);
        }

        // Build the orthonormal trial basis.
        let mut s: Vec<DistVector> = Vec::with_capacity(3 * m);
        for v in x.iter().chain(r.iter()).chain(p.iter()) {
            let mut w = v.clone();
            let nrm = cgs2(&mut w, &s, ledger);
            // Drop directions that are numerically in the span already.
            if nrm > 1e-10 {
                w.scale(1.0 / nrm, ledger);
                s.push(w);
            }
        }
        let dim = s.len();

        // Projected matrix T = Sᵀ A S.
        let mut as_: Vec<DistVector> = Vec::with_capacity(dim);
        for si in &s {
            let mut y = DistVector::zeros(Arc::clone(&map));
            op.apply(si, &mut y, ledger);
            op_applies += 1;
            as_.push(y);
        }
        let mut t = DenseMat::zeros(dim);
        for i in 0..dim {
            for j in 0..=i {
                let v = as_[j].dot(&s[i], ledger);
                t[(i, j)] = v;
                t[(j, i)] = v;
            }
        }
        let (tvals, tvecs) = symmetric_eig(&t);

        // New X = S C (top m columns); new P = the R/P contribution only.
        let top: Vec<usize> = (0..dim).rev().take(m).collect();
        let mut new_x = Vec::with_capacity(m);
        let mut new_p = Vec::with_capacity(m);
        for &col in &top {
            let mut xi = DistVector::zeros(Arc::clone(&map));
            let mut pi = DistVector::zeros(Arc::clone(&map));
            for (i, si) in s.iter().enumerate() {
                let c = tvecs[(i, col)];
                xi.axpy(c, si, ledger);
                if i >= m {
                    pi.axpy(c, si, ledger);
                }
            }
            new_x.push(xi);
            new_p.push(pi);
        }
        let _ = tvals;
        x = new_x;
        p = new_p;
    }
    finish(x, values, residuals, cfg.max_iters, op_applies, false)
}

fn finish(
    x: Vec<DistVector>,
    values: Vec<f64>,
    residuals: Vec<f64>,
    iterations: usize,
    op_applies: usize,
    converged: bool,
) -> LobpcgResult {
    // Order pairs largest-eigenvalue first.
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&i, &j| values[j].total_cmp(&values[i]));
    LobpcgResult {
        values: order.iter().map(|&i| values[i]).collect(),
        residuals: order.iter().map(|&i| residuals[i]).collect(),
        vectors: {
            let mut xs: Vec<Option<DistVector>> = x.into_iter().map(Some).collect();
            order
                .iter()
                .map(|&i| xs[i].take().expect("unique index"))
                .collect()
        },
        iterations,
        op_applies,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::grid_2d;
    use sf2d_graph::normalized_laplacian;
    use sf2d_partition::MatrixDist;
    use sf2d_sim::{CostLedger, Machine};
    use sf2d_spmv::{DistCsrMatrix, PlainSpmvOp};

    fn op_of(a: &sf2d_graph::CsrMatrix, p: usize) -> PlainSpmvOp {
        let d = MatrixDist::block_1d(a.nrows(), p);
        PlainSpmvOp::new(DistCsrMatrix::from_global(a, &d))
    }

    #[test]
    fn converges_on_grid_laplacian() {
        let a = grid_2d(5, 8);
        let l = normalized_laplacian(&a).unwrap();
        let op = op_of(&l, 3);
        let cfg = LobpcgConfig {
            nev: 3,
            tol: 1e-8,
            max_iters: 300,
            seed: 1,
        };
        let mut ledger = CostLedger::new(Machine::cab());
        let res = lobpcg_largest(&op, &cfg, &mut ledger);
        assert!(res.converged, "residuals {:?}", res.residuals);
        // Grid is bipartite: top eigenvalue of L-hat is 2.
        assert!((res.values[0] - 2.0).abs() < 1e-6, "{:?}", res.values);
        for w in res.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn agrees_with_krylov_schur() {
        let a = grid_2d(6, 7);
        let l = normalized_laplacian(&a).unwrap();
        let op = op_of(&l, 2);
        let mut ledger = CostLedger::new(Machine::cab());
        let lob = lobpcg_largest(
            &op,
            &LobpcgConfig {
                nev: 3,
                tol: 1e-9,
                max_iters: 400,
                seed: 2,
            },
            &mut ledger,
        );
        let ks = crate::krylov_schur::krylov_schur_largest(
            &op,
            &crate::krylov_schur::KrylovSchurConfig {
                nev: 3,
                max_basis: 18,
                tol: 1e-9,
                max_restarts: 200,
                seed: 2,
            },
            &mut ledger,
        );
        for (a, b) in lob.values.iter().zip(&ks.values) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn eigenvector_residuals_small() {
        let a = grid_2d(4, 9);
        let l = normalized_laplacian(&a).unwrap();
        let op = op_of(&l, 4);
        let cfg = LobpcgConfig {
            nev: 2,
            tol: 1e-8,
            max_iters: 300,
            seed: 3,
        };
        let mut ledger = CostLedger::new(Machine::cab());
        let res = lobpcg_largest(&op, &cfg, &mut ledger);
        assert!(res.converged);
        for (i, v) in res.vectors.iter().enumerate() {
            let xg = v.to_global();
            let ax = l.spmv_dense(&xg);
            let xnorm: f64 = xg.iter().map(|x| x * x).sum::<f64>().sqrt();
            let rnorm: f64 = ax
                .iter()
                .zip(&xg)
                .map(|(a, x)| (a - res.values[i] * x).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(rnorm < 1e-6 * xnorm, "pair {i}: {rnorm}");
        }
    }
}
