//! Block classical Gram–Schmidt with reorthogonalization (CGS2).
//!
//! Orthogonalization is the dominant non-SpMV cost in the paper's
//! eigensolver runs (Table 5's vector-imbalance story), so it is modelled
//! faithfully: coefficients against the whole basis are computed with *one*
//! batched allreduce per pass (as Anasazi does), two passes ("twice is
//! enough", Kahan/Parlett), costs charged per rank.

use sf2d_sim::collective::{allreduce_cost, allreduce_sum_vec};
use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};
use sf2d_spmv::DistVector;

/// Orthogonalizes `w` against `basis` (assumed orthonormal) in place with
/// two CGS passes. Returns the norm of `w` after orthogonalization (not
/// normalized — caller decides how to handle near-breakdown).
pub fn cgs2(w: &mut DistVector, basis: &[DistVector], ledger: &mut CostLedger) -> f64 {
    let p = w.map.nprocs();
    for _pass in 0..2 {
        if basis.is_empty() {
            break;
        }
        // Local partial coefficients c_i = <V_i, w>, batched.
        let mut partials: Vec<Vec<f64>> = Vec::with_capacity(p);
        let mut costs = Vec::with_capacity(p);
        for r in 0..p {
            let wl = &w.locals[r];
            let coefs: Vec<f64> = basis
                .iter()
                .map(|v| v.locals[r].iter().zip(wl).map(|(a, b)| a * b).sum())
                .collect();
            costs.push(PhaseCost::compute(2 * (basis.len() * wl.len()) as u64));
            partials.push(coefs);
        }
        ledger.superstep(Phase::VectorOp, &costs);
        ledger.superstep_uniform(Phase::Collective, allreduce_cost(p, basis.len()), p);
        let coefs = allreduce_sum_vec(&partials);

        // w -= Σ c_i V_i.
        let mut costs = Vec::with_capacity(p);
        for r in 0..p {
            let wl = &mut w.locals[r];
            for (v, &c) in basis.iter().zip(&coefs) {
                for (wv, vv) in wl.iter_mut().zip(&v.locals[r]) {
                    *wv -= c * vv;
                }
            }
            costs.push(PhaseCost::compute(2 * (basis.len() * wl.len()) as u64));
        }
        ledger.superstep(Phase::VectorOp, &costs);
    }
    w.norm2(ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use sf2d_partition::MatrixDist;
    use sf2d_sim::{CostLedger, Machine};
    use sf2d_spmv::VectorMap;

    fn setup(n: usize, p: usize) -> (Arc<VectorMap>, CostLedger) {
        let d = MatrixDist::random_1d(n, p, 1);
        (
            Arc::new(VectorMap::from_dist(&d)),
            CostLedger::new(Machine::cab()),
        )
    }

    #[test]
    fn orthogonalizes_against_basis() {
        let (map, mut ledger) = setup(40, 3);
        // Basis: two orthonormal indicator-ish vectors.
        let mut e1g = vec![0.0; 40];
        e1g[0] = 1.0;
        let mut e2g = vec![0.0; 40];
        e2g[1] = 1.0;
        let basis = vec![
            DistVector::from_global(Arc::clone(&map), &e1g),
            DistVector::from_global(Arc::clone(&map), &e2g),
        ];
        let mut w = DistVector::from_global(Arc::clone(&map), &vec![1.0; 40]);
        let norm = cgs2(&mut w, &basis, &mut ledger);
        let g = w.to_global();
        assert!(g[0].abs() < 1e-12 && g[1].abs() < 1e-12, "{:?}", &g[..3]);
        assert!((norm - (38.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_basis_returns_norm() {
        let (map, mut ledger) = setup(9, 2);
        let mut w = DistVector::from_global(Arc::clone(&map), &[2.0; 9]);
        let norm = cgs2(&mut w, &[], &mut ledger);
        assert!((norm - 6.0).abs() < 1e-12);
    }

    #[test]
    fn reorthogonalization_achieves_machine_precision() {
        // Nearly-parallel challenge: w almost in the span of the basis.
        let (map, mut ledger) = setup(30, 4);
        let v_g: Vec<f64> = (0..30).map(|i| ((i + 1) as f64).sqrt()).collect();
        let norm_v: f64 = v_g.iter().map(|x| x * x).sum::<f64>().sqrt();
        let v_unit: Vec<f64> = v_g.iter().map(|x| x / norm_v).collect();
        let basis = vec![DistVector::from_global(Arc::clone(&map), &v_unit)];
        // w = v + tiny perturbation.
        let w_g: Vec<f64> = v_unit
            .iter()
            .enumerate()
            .map(|(i, x)| x + 1e-9 * ((i % 3) as f64 - 1.0))
            .collect();
        let mut w = DistVector::from_global(Arc::clone(&map), &w_g);
        cgs2(&mut w, &basis, &mut ledger);
        // <w, v> must be at machine-epsilon level relative to ||w||.
        let wg = w.to_global();
        let dot: f64 = wg.iter().zip(&v_unit).map(|(a, b)| a * b).sum();
        let wnorm: f64 = wg.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(
            dot.abs() < 1e-12 * wnorm.max(1e-300),
            "dot {dot}, norm {wnorm}"
        );
    }

    #[test]
    fn charges_collectives() {
        let (map, mut ledger) = setup(16, 4);
        let ones = DistVector::from_global(Arc::clone(&map), &[0.25; 16]);
        let mut w = DistVector::random(Arc::clone(&map), 5);
        cgs2(&mut w, &[ones], &mut ledger);
        assert!(ledger.by_phase[&Phase::Collective] > 0.0);
        assert!(ledger.by_phase[&Phase::VectorOp] > 0.0);
    }
}
