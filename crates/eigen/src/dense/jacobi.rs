//! Cyclic Jacobi eigensolver for small dense symmetric matrices.
//!
//! Unconditionally stable and simple: rotate away the off-diagonal entries
//! sweep by sweep until the off-diagonal Frobenius mass is negligible. For
//! the ≤ 64×64 projected matrices of the restart loop, a handful of sweeps
//! suffices.

use super::DenseMat;

/// Computes all eigenpairs of a symmetric matrix.
///
/// Returns `(eigenvalues ascending, eigenvectors)` with eigenvector `i`
/// stored in column `i`, satisfying `A v_i = λ_i v_i`.
///
/// # Panics
/// Panics if `a` is not (numerically) symmetric.
pub fn symmetric_eig(a: &DenseMat) -> (Vec<f64>, DenseMat) {
    let n = a.n;
    assert!(a.asymmetry() < 1e-9, "Jacobi requires a symmetric matrix");
    let mut m = a.clone();
    let mut v = DenseMat::identity(n);
    if n <= 1 {
        return ((0..n).map(|i| m[(i, i)]).collect(), v);
    }

    let off = |m: &DenseMat| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..i {
                s += m[(i, j)] * m[(i, j)];
            }
        }
        s
    };

    let mut sweeps = 0;
    while off(&m) > 1e-24 * (1.0 + frob(&m)) && sweeps < 64 {
        sweeps += 1;
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Rotation angle: tan(2θ) = 2 a_pq / (a_pp - a_qq).
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation to rows/columns p and q.
                for k in 0..n {
                    let akp = m[(k, p)];
                    let akq = m[(k, q)];
                    m[(k, p)] = c * akp - s * akq;
                    m[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[(p, k)];
                    let aqk = m[(q, k)];
                    m[(p, k)] = c * apk - s * aqk;
                    m[(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort ascending, permuting eigenvector columns along.
    let mut order: Vec<usize> = (0..n).collect();
    let evals: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| evals[i].total_cmp(&evals[j]));
    let sorted_vals: Vec<f64> = order.iter().map(|&i| evals[i]).collect();
    let mut sorted_vecs = DenseMat::zeros(n);
    for (new, &old) in order.iter().enumerate() {
        for k in 0..n {
            sorted_vecs[(k, new)] = v[(k, old)];
        }
    }
    (sorted_vals, sorted_vecs)
}

fn frob(m: &DenseMat) -> f64 {
    m.data.iter().map(|x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_eig(a: &DenseMat) {
        let (vals, vecs) = symmetric_eig(a);
        let n = a.n;
        // Residuals: ||A v - λ v|| small.
        for i in 0..n {
            for r in 0..n {
                let av: f64 = (0..n).map(|k| a[(r, k)] * vecs[(k, i)]).sum();
                assert!(
                    (av - vals[i] * vecs[(r, i)]).abs() < 1e-8 * (1.0 + vals[i].abs()),
                    "residual at ({r},{i})"
                );
            }
        }
        // Orthonormal columns.
        for i in 0..n {
            for j in 0..n {
                let d: f64 = (0..n).map(|k| vecs[(k, i)] * vecs[(k, j)]).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((d - want).abs() < 1e-9, "orthonormality ({i},{j}): {d}");
            }
        }
        // Ascending.
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix() {
        let mut a = DenseMat::zeros(3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 2.0;
        let (vals, _) = symmetric_eig(&a);
        assert!((vals[0] + 1.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
        check_eig(&a);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let mut a = DenseMat::zeros(2);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let (vals, _) = symmetric_eig(&a);
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
        check_eig(&a);
    }

    #[test]
    fn random_symmetric_various_sizes() {
        let mut state = 12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        };
        for n in [1usize, 2, 5, 12, 30] {
            let mut a = DenseMat::zeros(n);
            for i in 0..n {
                for j in 0..=i {
                    let x = next();
                    a[(i, j)] = x;
                    a[(j, i)] = x;
                }
            }
            check_eig(&a);
        }
    }

    #[test]
    fn trace_preserved() {
        let mut a = DenseMat::zeros(4);
        for i in 0..4 {
            for j in 0..=i {
                let x = ((i * 3 + j * 7) % 5) as f64 - 2.0;
                a[(i, j)] = x;
                a[(j, i)] = x;
            }
        }
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let (vals, _) = symmetric_eig(&a);
        assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        let mut a = DenseMat::zeros(2);
        a[(0, 1)] = 1.0;
        symmetric_eig(&a);
    }
}
