//! Implicit-shift QL for symmetric tridiagonal matrices (EISPACK `tql2`).
//!
//! The fast path for plain (non-restarted) Lanczos: eigenvalues and
//! eigenvectors of the tridiagonal `T` with diagonal `d` and off-diagonal
//! `e`.

use super::DenseMat;

/// Eigen-decomposition of a symmetric tridiagonal matrix.
///
/// `diag` has `n` entries, `off` has `n - 1` (sub/super-diagonal).
/// Returns `(eigenvalues ascending, eigenvector matrix)` with eigenvector
/// `i` in column `i` (coordinates in the basis the tridiagonal is
/// expressed in).
pub fn tridiag_eig(diag: &[f64], off: &[f64]) -> (Vec<f64>, DenseMat) {
    let n = diag.len();
    assert!(
        off.len() + 1 == n || (n == 0 && off.is_empty()),
        "off-diagonal length mismatch"
    );
    if n == 0 {
        return (Vec::new(), DenseMat::zeros(0));
    }
    let mut d = diag.to_vec();
    // e padded to length n with a trailing zero, as tql2 expects.
    let mut e = Vec::with_capacity(n);
    e.extend_from_slice(off);
    e.push(0.0);
    let mut z = DenseMat::identity(n);

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tql2 failed to converge");

            // Form implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;

            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort ascending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].total_cmp(&d[j]));
    let vals: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut vecs = DenseMat::zeros(n);
    for (new, &old) in order.iter().enumerate() {
        for k in 0..n {
            vecs[(k, new)] = z[(k, old)];
        }
    }
    (vals, vecs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_check(diag: &[f64], off: &[f64]) {
        let n = diag.len();
        let (vals, vecs) = tridiag_eig(diag, off);
        let tv = |col: usize, r: usize| -> f64 {
            let mut s = diag[r] * vecs[(r, col)];
            if r > 0 {
                s += off[r - 1] * vecs[(r - 1, col)];
            }
            if r + 1 < n {
                s += off[r] * vecs[(r + 1, col)];
            }
            s
        };
        for i in 0..n {
            for r in 0..n {
                let lhs = tv(i, r);
                let rhs = vals[i] * vecs[(r, i)];
                assert!(
                    (lhs - rhs).abs() < 1e-9 * (1.0 + vals[i].abs()),
                    "({r},{i})"
                );
            }
        }
    }

    #[test]
    fn single_entry() {
        let (vals, _) = tridiag_eig(&[7.0], &[]);
        assert_eq!(vals, vec![7.0]);
    }

    #[test]
    fn known_2x2() {
        // [[0,1],[1,0]] -> eigenvalues -1, 1.
        let (vals, _) = tridiag_eig(&[0.0, 0.0], &[1.0]);
        assert!((vals[0] + 1.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn laplacian_of_path_has_known_spectrum() {
        // Path-graph Laplacian: eigenvalues 2 - 2cos(kπ/n), k = 0..n-1.
        let n = 8;
        let diag: Vec<f64> = (0..n)
            .map(|i| if i == 0 || i == n - 1 { 1.0 } else { 2.0 })
            .collect();
        let off = vec![-1.0; n - 1];
        let (vals, _) = tridiag_eig(&diag, &off);
        for (k, &v) in vals.iter().enumerate() {
            let want = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos();
            assert!((v - want).abs() < 1e-9, "k={k}: {v} vs {want}");
        }
    }

    #[test]
    fn residuals_on_random_tridiagonals() {
        let mut s = 999u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 2000) as f64 / 1000.0 - 1.0
        };
        for n in [2usize, 3, 7, 20] {
            let diag: Vec<f64> = (0..n).map(|_| next()).collect();
            let off: Vec<f64> = (0..n - 1).map(|_| next()).collect();
            residual_check(&diag, &off);
        }
    }

    #[test]
    fn matches_jacobi() {
        let diag = [1.0, -2.0, 0.5, 3.0];
        let off = [0.7, -0.3, 1.1];
        let (tv, _) = tridiag_eig(&diag, &off);
        // Same matrix through the Jacobi path.
        let mut a = super::super::DenseMat::zeros(4);
        for i in 0..4 {
            a[(i, i)] = diag[i];
        }
        for i in 0..3 {
            a[(i, i + 1)] = off[i];
            a[(i + 1, i)] = off[i];
        }
        let (jv, _) = super::super::symmetric_eig(&a);
        for (t, j) in tv.iter().zip(&jv) {
            assert!((t - j).abs() < 1e-9, "{t} vs {j}");
        }
    }
}
