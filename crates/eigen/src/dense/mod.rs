//! Small dense linear algebra for the projected eigenproblems.
//!
//! The Krylov–Schur / thick-restart projected matrices are at most a few
//! dozen rows, so robustness beats asymptotics: a cyclic Jacobi
//! eigensolver handles the general symmetric case (the arrowhead +
//! tridiagonal restart matrices), and an implicit-shift QL routine handles
//! the pure tridiagonal fast path.

pub mod jacobi;
pub mod tridiag;

pub use jacobi::symmetric_eig;
pub use tridiag::tridiag_eig;

/// A dense column-major square matrix, just big enough for our needs.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMat {
    /// Dimension.
    pub n: usize,
    /// Column-major storage, `n * n` entries.
    pub data: Vec<f64>,
}

impl DenseMat {
    /// Zero matrix.
    pub fn zeros(n: usize) -> DenseMat {
        DenseMat {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> DenseMat {
        let mut m = DenseMat::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Column `j` as a slice.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.n..(j + 1) * self.n]
    }

    /// Max |a_ij - a_ji| — symmetry check.
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.n {
            for j in 0..i {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }
}

impl std::ops::Index<(usize, usize)> for DenseMat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[j * self.n + i]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[j * self.n + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_column_major() {
        let mut m = DenseMat::zeros(3);
        m[(2, 0)] = 5.0;
        assert_eq!(m.data[2], 5.0);
        assert_eq!(m.col(0), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn identity_and_asymmetry() {
        let i = DenseMat::identity(4);
        assert_eq!(i[(2, 2)], 1.0);
        assert_eq!(i[(2, 1)], 0.0);
        assert_eq!(i.asymmetry(), 0.0);
        let mut m = DenseMat::zeros(2);
        m[(0, 1)] = 1.0;
        assert_eq!(m.asymmetry(), 1.0);
    }
}
