//! Power iteration and PageRank.
//!
//! PageRank is the paper's opening example (§1): "the power method applied
//! to a matrix derived from the weblink adjacency matrix". The Google
//! matrix is applied as `d·(P x + dangling_mass/n · 1) + (1−d)/n · 1`,
//! never materializing the dense rank-one parts.

use std::sync::Arc;

use sf2d_sim::collective::{allreduce_cost, allreduce_sum};
use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};
use sf2d_spmv::{spmv_with, DistCsrMatrix, DistVector, SpmvWorkspace};

/// PageRank result.
#[derive(Debug)]
pub struct PageRankResult {
    /// The rank vector (sums to 1), distributed.
    pub ranks: DistVector,
    /// Iterations executed.
    pub iterations: usize,
    /// Final L1 change between iterates.
    pub delta: f64,
}

/// Computes PageRank over a column-stochastic link matrix `p_matrix`
/// (dangling columns all-zero, as produced by
/// [`adjacency_to_pagerank`](sf2d_graph::adjacency_to_pagerank)).
///
/// `damping` is the usual d (0.85), `tol` the L1 convergence threshold.
pub fn pagerank(
    p_matrix: &DistCsrMatrix,
    damping: f64,
    tol: f64,
    max_iters: usize,
    ledger: &mut CostLedger,
) -> PageRankResult {
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let map = Arc::clone(&p_matrix.vmap);
    let n = map.n();
    let p = map.nprocs();

    // Start uniform.
    let mut x = DistVector::from_global(Arc::clone(&map), &vec![1.0 / n as f64; n]);
    let mut y = DistVector::zeros(Arc::clone(&map));
    // One workspace for the whole solve: scratch buffers warm up on the
    // first iteration and are reused from then on.
    let mut ws = SpmvWorkspace::new();

    let mut iterations = 0;
    let mut delta = f64::INFINITY;
    while iterations < max_iters && delta > tol {
        iterations += 1;
        spmv_with(p_matrix, &x, &mut y, ledger, &mut ws);

        // Column-stochastic P loses exactly the dangling mass: the global
        // sum of y tells us how much to redistribute.
        let mut partials = Vec::with_capacity(p);
        let mut costs = Vec::with_capacity(p);
        for l in &y.locals {
            partials.push(l.iter().sum::<f64>());
            costs.push(PhaseCost::compute(l.len() as u64));
        }
        ledger.superstep(Phase::VectorOp, &costs);
        ledger.superstep_uniform(Phase::Collective, allreduce_cost(p, 1), p);
        let surviving = allreduce_sum(&partials);
        let dangling = (1.0 - surviving).max(0.0);
        let shift = damping * dangling / n as f64 + (1.0 - damping) / n as f64;

        // y = d*y + shift, and delta = ||y - x||_1 in the same sweep.
        let mut dpartials = Vec::with_capacity(p);
        let mut costs = Vec::with_capacity(p);
        for r in 0..p {
            let mut dsum = 0.0;
            for (yv, xv) in y.locals[r].iter_mut().zip(&x.locals[r]) {
                *yv = damping * *yv + shift;
                dsum += (*yv - xv).abs();
            }
            dpartials.push(dsum);
            costs.push(PhaseCost::compute(4 * y.locals[r].len() as u64));
        }
        ledger.superstep(Phase::VectorOp, &costs);
        ledger.superstep_uniform(Phase::Collective, allreduce_cost(p, 1), p);
        delta = allreduce_sum(&dpartials);

        std::mem::swap(&mut x, &mut y);
    }
    PageRankResult {
        ranks: x,
        iterations,
        delta,
    }
}

/// Plain power iteration for the dominant eigenvalue (by magnitude) of a
/// distributed matrix; returns the Rayleigh-quotient estimate.
pub fn power_method(
    a: &DistCsrMatrix,
    tol: f64,
    max_iters: usize,
    seed: u64,
    ledger: &mut CostLedger,
) -> (f64, DistVector, usize) {
    let map = Arc::clone(&a.vmap);
    let mut x = DistVector::random(Arc::clone(&map), seed);
    let nrm = x.norm2(ledger);
    x.scale(1.0 / nrm, ledger);
    let mut y = DistVector::zeros(Arc::clone(&map));
    let mut ws = SpmvWorkspace::new();
    let mut lambda = 0.0f64;
    for it in 1..=max_iters {
        spmv_with(a, &x, &mut y, ledger, &mut ws);
        let new_lambda = y.dot(&x, ledger);
        let nrm = y.norm2(ledger);
        if nrm == 0.0 {
            return (0.0, x, it);
        }
        y.scale(1.0 / nrm, ledger);
        std::mem::swap(&mut x, &mut y);
        if (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1e-30) {
            return (new_lambda, x, it);
        }
        lambda = new_lambda;
    }
    (lambda, x, max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::{adjacency_to_pagerank, CooMatrix, CsrMatrix};
    use sf2d_partition::MatrixDist;
    use sf2d_sim::{CostLedger, Machine};

    fn dist(a: &CsrMatrix, p: usize) -> DistCsrMatrix {
        DistCsrMatrix::from_global(a, &MatrixDist::block_1d(a.nrows(), p))
    }

    #[test]
    fn pagerank_of_cycle_is_uniform() {
        // Directed 4-cycle: perfectly symmetric -> uniform ranks.
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4u32 {
            coo.push((i + 1) % 4, i, 1.0);
        }
        let p = adjacency_to_pagerank(&CsrMatrix::from_coo(&coo)).unwrap();
        let mut ledger = CostLedger::new(Machine::cab());
        let res = pagerank(&dist(&p, 2), 0.85, 1e-12, 200, &mut ledger);
        let ranks = res.ranks.to_global();
        for r in &ranks {
            assert!((r - 0.25).abs() < 1e-9, "{ranks:?}");
        }
        assert!(res.delta <= 1e-12);
    }

    #[test]
    fn pagerank_sums_to_one_with_dangling_nodes() {
        // Star into a dangling sink: 0->2, 1->2, 2 has no out-links.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(2, 0, 1.0);
        coo.push(2, 1, 1.0);
        let p = adjacency_to_pagerank(&CsrMatrix::from_coo(&coo)).unwrap();
        let mut ledger = CostLedger::new(Machine::cab());
        let res = pagerank(&dist(&p, 3), 0.85, 1e-12, 500, &mut ledger);
        let ranks = res.ranks.to_global();
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        // The sink collects the most rank.
        assert!(ranks[2] > ranks[0] && ranks[2] > ranks[1], "{ranks:?}");
    }

    #[test]
    fn pagerank_favors_highly_linked_pages() {
        // 0 <- 1, 0 <- 2, 0 <- 3; 1 <- 0.
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(0, 2, 1.0);
        coo.push(0, 3, 1.0);
        coo.push(1, 0, 1.0);
        let p = adjacency_to_pagerank(&CsrMatrix::from_coo(&coo)).unwrap();
        let mut ledger = CostLedger::new(Machine::cab());
        let res = pagerank(&dist(&p, 2), 0.85, 1e-10, 500, &mut ledger);
        let ranks = res.ranks.to_global();
        assert!(ranks[0] > ranks[1] && ranks[1] > ranks[2], "{ranks:?}");
        assert!((ranks[2] - ranks[3]).abs() < 1e-9);
    }

    #[test]
    fn power_method_finds_dominant_eigenvalue() {
        // Symmetric matrix with known dominant eigenvalue: the 2x2 blocks
        // diag([[2,1],[1,2]], [[0.5]]) -> dominant 3.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 2.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(2, 2, 0.5);
        let a = CsrMatrix::from_coo(&coo);
        let mut ledger = CostLedger::new(Machine::cab());
        let (lambda, _, iters) = power_method(&dist(&a, 2), 1e-10, 500, 1, &mut ledger);
        assert!(
            (lambda - 3.0).abs() < 1e-6,
            "lambda {lambda} after {iters} iters"
        );
    }
}
