//! Plain Lanczos with full reorthogonalization (no restarting).
//!
//! The simpler sibling of [`krylov_schur`](crate::krylov_schur): build one
//! `m`-step Krylov space and take the Ritz values of the tridiagonal. Used
//! as a cross-check for the restarted solver and for quick spectral
//! estimates (e.g. spectral bounds in examples).

use std::sync::Arc;

use sf2d_sim::cost::CostLedger;
use sf2d_spmv::{DistVector, LinearOperator};

use crate::dense::tridiag_eig;
use crate::ortho::cgs2;

/// Result of an `m`-step Lanczos run.
#[derive(Debug)]
pub struct LanczosResult {
    /// Ritz values, ascending.
    pub ritz_values: Vec<f64>,
    /// Residual bound per Ritz pair: `|β_m s_{m,i}|`.
    pub residual_bounds: Vec<f64>,
    /// Steps actually taken (may stop early on breakdown).
    pub steps: usize,
}

/// Runs `m` Lanczos steps on a symmetric operator from a seeded random
/// start vector.
pub fn lanczos(
    op: &dyn LinearOperator,
    m: usize,
    seed: u64,
    ledger: &mut CostLedger,
) -> LanczosResult {
    let map = Arc::clone(op.vmap());
    assert!(m >= 1 && m <= map.n(), "steps must be in 1..=n");

    let mut basis: Vec<DistVector> = Vec::with_capacity(m + 1);
    let mut v0 = DistVector::random(Arc::clone(&map), seed);
    let n0 = v0.norm2(ledger);
    for l in &mut v0.locals {
        for x in l {
            *x /= n0;
        }
    }
    basis.push(v0);

    let mut alphas = Vec::with_capacity(m);
    let mut betas = Vec::with_capacity(m);
    for j in 0..m {
        let mut w = DistVector::zeros(Arc::clone(&map));
        op.apply(&basis[j], &mut w, ledger);
        let alpha = w.dot(&basis[j], ledger);
        alphas.push(alpha);
        let beta = cgs2(&mut w, &basis, ledger);
        if beta < 1e-12 * (1.0 + alpha.abs()) {
            // Invariant subspace found — the Ritz values are exact.
            betas.push(0.0);
            break;
        }
        betas.push(beta);
        for l in &mut w.locals {
            for x in l {
                *x /= beta;
            }
        }
        basis.push(w);
    }

    let steps = alphas.len();
    let (vals, vecs) = tridiag_eig(&alphas, &betas[..steps - 1]);
    let beta_last = betas[steps - 1];
    let residual_bounds = (0..steps)
        .map(|i| (beta_last * vecs[(steps - 1, i)]).abs())
        .collect();
    LanczosResult {
        ritz_values: vals,
        residual_bounds,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::grid_2d;
    use sf2d_graph::normalized_laplacian;
    use sf2d_partition::MatrixDist;
    use sf2d_sim::{CostLedger, Machine};
    use sf2d_spmv::{DistCsrMatrix, PlainSpmvOp};

    fn op_of(a: &sf2d_graph::CsrMatrix, p: usize) -> PlainSpmvOp {
        let d = MatrixDist::block_1d(a.nrows(), p);
        PlainSpmvOp::new(DistCsrMatrix::from_global(a, &d))
    }

    #[test]
    fn extreme_ritz_values_converge_fast() {
        let a = grid_2d(8, 8);
        let l = normalized_laplacian(&a).unwrap();
        let op = op_of(&l, 3);
        let mut ledger = CostLedger::new(Machine::cab());
        let res = lanczos(&op, 30, 1, &mut ledger);
        // Largest Ritz value should approximate the largest eigenvalue of
        // L̂ (known to be <= 2, > 1 for a bipartite-ish grid).
        let top = *res.ritz_values.last().unwrap();
        assert!(top > 1.5 && top <= 2.0 + 1e-9, "top {top}");
        // Its residual bound should be small.
        assert!(res.residual_bounds.last().unwrap() < &1e-3);
    }

    #[test]
    fn full_dimension_run_is_exact() {
        // m = n: Lanczos spans everything; Ritz values = eigenvalues.
        let a = grid_2d(3, 3);
        let l = normalized_laplacian(&a).unwrap();
        let op = op_of(&l, 2);
        let mut ledger = CostLedger::new(Machine::cab());
        let res = lanczos(&op, 9, 2, &mut ledger);
        // Smallest eigenvalue of any normalized Laplacian is 0.
        assert!(res.ritz_values[0].abs() < 1e-8, "{:?}", res.ritz_values);
    }

    #[test]
    fn agrees_with_krylov_schur() {
        // Rectangular grid: non-degenerate spectrum (see the note in the
        // krylov_schur oracle test).
        let a = grid_2d(6, 7);
        let l = normalized_laplacian(&a).unwrap();
        let op = op_of(&l, 2);
        let mut ledger = CostLedger::new(Machine::cab());
        let plain = lanczos(&op, 35, 3, &mut ledger);
        let cfg = crate::krylov_schur::KrylovSchurConfig {
            nev: 3,
            max_basis: 20,
            tol: 1e-9,
            max_restarts: 100,
            seed: 3,
        };
        let ks = crate::krylov_schur::krylov_schur_largest(&op, &cfg, &mut ledger);
        for (i, v) in ks.values.iter().enumerate() {
            let lv = plain.ritz_values[plain.ritz_values.len() - 1 - i];
            assert!((v - lv).abs() < 1e-5, "pair {i}: {v} vs {lv}");
        }
    }
}
