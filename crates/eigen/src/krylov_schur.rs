//! Thick-restart Lanczos — Krylov–Schur with block size 1 on a symmetric
//! operator, the configuration the paper runs (§4: "BKS ... We use block
//! size one").
//!
//! For symmetric operators, Stewart's Krylov–Schur restart is equivalent to
//! the thick-restart Lanczos of Wu & Simon: after building an
//! `m`-dimensional Krylov space, the projected matrix's best `keep` Ritz
//! pairs are locked into the basis, the last Lanczos residual vector is
//! carried over, and the recurrence continues from dimension `keep + 1`.
//! The projected matrix is then "arrowhead + tridiagonal", which we solve
//! with the dense Jacobi routine.

use std::cell::RefCell;
use std::sync::Arc;

use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};
use sf2d_sim::fault::ChaosRuntime;
use sf2d_spmv::{DistVector, LinearOperator};

use crate::dense::{symmetric_eig, DenseMat};
use crate::ortho::cgs2;

/// Options for the eigensolver.
#[derive(Debug, Clone, Copy)]
pub struct KrylovSchurConfig {
    /// Number of (largest) eigenpairs wanted. The paper computes 10.
    pub nev: usize,
    /// Maximum subspace dimension before restarting.
    pub max_basis: usize,
    /// Relative residual tolerance. The paper solves to 1e-3.
    pub tol: f64,
    /// Maximum number of restart cycles.
    pub max_restarts: usize,
    /// Seed for the random start vector.
    pub seed: u64,
}

impl KrylovSchurConfig {
    /// The paper's setting: ten largest eigenpairs to 1e-3.
    pub fn paper(seed: u64) -> KrylovSchurConfig {
        KrylovSchurConfig {
            nev: 10,
            max_basis: 40,
            tol: 1e-3,
            max_restarts: 200,
            seed,
        }
    }
}

/// The result of an eigensolve.
#[derive(Debug)]
pub struct EigResult {
    /// Converged eigenvalues, largest first.
    pub values: Vec<f64>,
    /// Matching Ritz vectors.
    pub vectors: Vec<DistVector>,
    /// Relative residual estimates per pair.
    pub residuals: Vec<f64>,
    /// Operator applications performed.
    pub op_applies: usize,
    /// Restart cycles performed.
    pub restarts: usize,
    /// Whether the tolerance was met for all `nev` pairs.
    pub converged: bool,
}

/// Computes the `nev` largest eigenpairs of a symmetric operator.
///
/// # Panics
/// Panics if `nev == 0`, the basis is too small (`max_basis < nev + 2`),
/// or the operator dimension is smaller than `max_basis`.
pub fn krylov_schur_largest(
    op: &dyn LinearOperator,
    cfg: &KrylovSchurConfig,
    ledger: &mut CostLedger,
) -> EigResult {
    krylov_schur_core(op, cfg, ledger, None)
}

/// [`krylov_schur_largest`] with checkpoint/restart at restart-cycle
/// boundaries, for runs whose operator applications go through a fault
/// plan (e.g. [`sf2d_spmv::ChaosSpmvOp`] sharing the same runtime):
///
/// * the outer-loop state (locked basis, projected matrix, coupling row,
///   breakdown salt) is snapshotted on entry to every restart cycle — a
///   node-local memory copy, free of charge;
/// * after each cycle's Lanczos expansion the loop polls
///   [`ChaosRuntime::take_crash`] with a monotone executed-cycle epoch;
///   on a crash the snapshot is restored, every rank's re-read of its
///   slice of the checkpointed basis is billed as one
///   [`Phase::Recovery`] superstep, and the cycle re-executes (the lost
///   operator applications stay counted in `op_applies` — honest work);
/// * message-level faults inside the operator are healed and billed by
///   the operator itself.
///
/// Because the chaos protocol always delivers fault-free values, the
/// returned eigenpairs are **bit-identical** to the fault-free solve;
/// with no crash drawn (e.g. rate 0) the ledger is byte-identical too.
pub fn krylov_schur_largest_resilient(
    op: &dyn LinearOperator,
    cfg: &KrylovSchurConfig,
    ledger: &mut CostLedger,
    rt: &RefCell<ChaosRuntime>,
) -> EigResult {
    krylov_schur_core(op, cfg, ledger, Some(rt))
}

fn krylov_schur_core(
    op: &dyn LinearOperator,
    cfg: &KrylovSchurConfig,
    ledger: &mut CostLedger,
    chaos: Option<&RefCell<ChaosRuntime>>,
) -> EigResult {
    assert!(cfg.nev >= 1, "need nev >= 1");
    assert!(cfg.max_basis >= cfg.nev + 2, "max_basis too small");
    let map = Arc::clone(op.vmap());
    assert!(
        map.n() >= cfg.max_basis,
        "operator smaller than the Krylov basis"
    );
    let m = cfg.max_basis;
    let p = map.nprocs();

    // Basis vectors V[0..=m]; T is the projected m x m matrix.
    let mut basis: Vec<DistVector> = Vec::with_capacity(m + 1);
    let mut t = DenseMat::zeros(m);
    let mut k = 0usize; // locked Ritz vectors after restart
    let mut coupling: Vec<f64> = Vec::new(); // b_i, i < k
    let mut op_applies = 0usize;
    let mut restarts = 0usize;

    let mut v0 = DistVector::random(Arc::clone(&map), cfg.seed);
    let n0 = v0.norm2(ledger);
    scale_free(&mut v0, 1.0 / n0);
    basis.push(v0);

    let mut rng_salt = 1u64;
    // Monotone count of *executed* expansion cycles: the crash epoch.
    // Unlike `restarts` it advances on crashed cycles too, so a replayed
    // cycle polls a fresh epoch and the recovery loop terminates.
    let mut epoch = 0u64;
    loop {
        // Trace one outer (restart) cycle as a span on the simulated
        // clock, bounded by the ledger totals at entry and exit.
        let cycle = restarts;
        let cycle_t0 = ledger.total;

        // Checkpoint the outer-loop state at the cycle boundary (a
        // node-local copy — free of charge, like DistVector::copy_from).
        let snapshot = chaos.map(|_| (basis.clone(), t.clone(), k, coupling.clone(), rng_salt));

        // --- Lanczos expansion from k to m ---
        let mut beta_last = 0.0f64;
        for j in k..m {
            let mut w = DistVector::zeros(Arc::clone(&map));
            op.apply(&basis[j], &mut w, ledger);
            op_applies += 1;

            let alpha = w.dot(&basis[j], ledger);
            t[(j, j)] = alpha;
            // Subtractions of previous basis directions are folded into the
            // full CGS2 reorthogonalization below (numerically stronger than
            // the bare three-term recurrence on scale-free spectra).
            let norm = cgs2(&mut w, &basis[..=j], ledger);

            if j < m {
                if norm < 1e-12 * (1.0 + alpha.abs()) {
                    // Breakdown: restart the recurrence with a fresh random
                    // direction orthogonal to everything so far.
                    let mut fresh =
                        DistVector::random(Arc::clone(&map), cfg.seed ^ (rng_salt << 32));
                    rng_salt += 1;
                    let fresh_norm = cgs2(&mut fresh, &basis[..=j], ledger);
                    scale_free(&mut fresh, 1.0 / fresh_norm.max(1e-300));
                    basis.truncate(j + 1);
                    basis.push(fresh);
                    if j + 1 < m {
                        t[(j, j + 1)] = 0.0;
                        t[(j + 1, j)] = 0.0;
                    }
                    beta_last = 0.0;
                } else {
                    scale_free(&mut w, 1.0 / norm);
                    basis.truncate(j + 1);
                    basis.push(w);
                    if j + 1 < m {
                        t[(j, j + 1)] = norm;
                        t[(j + 1, j)] = norm;
                    }
                    beta_last = norm;
                }
            }
            // Coupling row from a previous restart.
            if j == k && k > 0 {
                for (i, &b) in coupling.iter().enumerate() {
                    t[(i, k)] = b;
                    t[(k, i)] = b;
                }
            }
        }

        // A rank crash during the cycle loses the expansion: restore the
        // checkpoint, bill every rank's re-read of its slice of the
        // snapshotted basis, and re-execute. The replayed applications
        // recompute the same bits (the chaos protocol always delivers
        // fault-free values), so recovery cannot change the answer.
        if let Some(rt) = chaos {
            let crashed = rt.borrow_mut().take_crash(epoch);
            epoch += 1;
            if crashed {
                let (b, tt, kk, c, s) = snapshot.expect("snapshot taken under chaos");
                let restored = b.len();
                basis = b;
                t = tt;
                k = kk;
                coupling = c;
                rng_salt = s;
                let restore: Vec<PhaseCost> = (0..p)
                    .map(|r| PhaseCost::comm(1, 8 * (restored * map.nlocal(r)) as u64))
                    .collect();
                ledger.superstep(Phase::Recovery, &restore);
                if sf2d_obs::enabled() {
                    sf2d_obs::record_sim_span(
                        sf2d_obs::PhaseKind::Recovery,
                        format!("krylov-schur cycle {cycle} (crashed, restored)"),
                        cycle_t0,
                        ledger.total,
                    );
                }
                continue;
            }
        }

        // --- Solve the projected problem ---
        let (vals, vecs) = symmetric_eig(&t);
        // Largest nev (Jacobi returns ascending).
        let sel: Vec<usize> = (0..m).rev().take(cfg.nev).collect();
        let residuals: Vec<f64> = sel
            .iter()
            .map(|&i| {
                let r = (beta_last * vecs[(m - 1, i)]).abs();
                r / vals[i].abs().max(1e-30)
            })
            .collect();
        let converged = residuals.iter().all(|&r| r <= cfg.tol);

        if converged || restarts >= cfg.max_restarts {
            // Form the Ritz vectors X = V[0..m] * S_sel.
            let vectors = rotate_basis(&basis[..m], &vecs, &sel, p, ledger);
            let values: Vec<f64> = sel.iter().map(|&i| vals[i]).collect();
            if sf2d_obs::enabled() {
                sf2d_obs::record_sim_span(
                    sf2d_obs::PhaseKind::SolverIteration,
                    format!("krylov-schur cycle {cycle} (final)"),
                    cycle_t0,
                    ledger.total,
                );
            }
            return EigResult {
                values,
                vectors,
                residuals,
                op_applies,
                restarts,
                converged,
            };
        }

        // --- Thick restart ---
        restarts += 1;
        let keep = (cfg.nev + (m - cfg.nev) / 2).min(m - 1);
        let kept: Vec<usize> = (0..m).rev().take(keep).collect();
        let mut new_basis = rotate_basis(&basis[..m], &vecs, &kept, p, ledger);
        // Residual vector carries over as the (keep+1)-th basis vector.
        new_basis.push(basis[m].clone());
        coupling = kept.iter().map(|&i| beta_last * vecs[(m - 1, i)]).collect();
        t = DenseMat::zeros(m);
        for (j, &i) in kept.iter().enumerate() {
            t[(j, j)] = vals[i];
        }
        basis = new_basis;
        k = keep;
        if sf2d_obs::enabled() {
            sf2d_obs::record_sim_span(
                sf2d_obs::PhaseKind::SolverIteration,
                format!("krylov-schur cycle {cycle}"),
                cycle_t0,
                ledger.total,
            );
        }
    }
}

/// Scales a vector without charging the ledger (used only for normalization
/// right after a costed norm computation; the flops are negligible and the
/// costed path for user-visible scaling is `DistVector::scale`).
fn scale_free(v: &mut DistVector, s: f64) {
    for l in &mut v.locals {
        for x in l {
            *x *= s;
        }
    }
}

/// Computes `out_j = Σ_i basis_i * vecs[(i, sel_j)]`, charged as one vector
/// superstep (`2 · |basis| · |sel|` flops per local entry).
fn rotate_basis(
    basis: &[DistVector],
    vecs: &DenseMat,
    sel: &[usize],
    p: usize,
    ledger: &mut CostLedger,
) -> Vec<DistVector> {
    let map = Arc::clone(&basis[0].map);
    let mut out: Vec<DistVector> = sel
        .iter()
        .map(|_| DistVector::zeros(Arc::clone(&map)))
        .collect();
    let mut costs = vec![PhaseCost::default(); p];
    for (oj, &col) in sel.iter().enumerate() {
        for (i, b) in basis.iter().enumerate() {
            let c = vecs[(i, col)];
            for r in 0..p {
                for (o, &x) in out[oj].locals[r].iter_mut().zip(&b.locals[r]) {
                    *o += c * x;
                }
            }
        }
    }
    for r in 0..p {
        costs[r].flops += 2 * (basis.len() * sel.len() * map.nlocal(r)) as u64;
    }
    ledger.superstep(Phase::VectorOp, &costs);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::{grid_2d, rmat, RmatConfig};
    use sf2d_graph::normalized_laplacian;
    use sf2d_partition::MatrixDist;
    use sf2d_sim::Machine;
    use sf2d_spmv::{DistCsrMatrix, PlainSpmvOp};

    fn dist_op(a: &sf2d_graph::CsrMatrix, p: usize) -> PlainSpmvOp {
        let d = MatrixDist::block_1d(a.nrows(), p);
        PlainSpmvOp::new(DistCsrMatrix::from_global(a, &d))
    }

    /// Dense oracle via repeated Jacobi on the full matrix.
    fn dense_largest(a: &sf2d_graph::CsrMatrix, nev: usize) -> Vec<f64> {
        let n = a.nrows();
        let mut dm = DenseMat::zeros(n);
        for (i, j, v) in a.iter() {
            dm[(i as usize, j as usize)] = v;
        }
        let (vals, _) = symmetric_eig(&dm);
        vals.into_iter().rev().take(nev).collect()
    }

    #[test]
    fn tracing_emits_one_span_per_outer_cycle_without_perturbing() {
        let a = grid_2d(5, 7);
        let l = normalized_laplacian(&a).unwrap();
        let op = dist_op(&l, 3);
        let cfg = KrylovSchurConfig {
            nev: 4,
            max_basis: 20,
            tol: 1e-8,
            max_restarts: 100,
            seed: 1,
        };
        let mut l_off = CostLedger::new(Machine::cab());
        let r_off = krylov_schur_largest(&op, &cfg, &mut l_off);

        sf2d_obs::enable();
        let mut l_on = CostLedger::new(Machine::cab());
        let r_on = krylov_schur_largest(&op, &cfg, &mut l_on);
        sf2d_obs::disable();
        let events = sf2d_obs::take_events();

        assert_eq!(r_off.values, r_on.values);
        assert_eq!(r_off.restarts, r_on.restarts);
        assert_eq!(l_off.total.to_bits(), l_on.total.to_bits());

        let spans: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                sf2d_obs::TraceEvent::SimSpan {
                    kind: sf2d_obs::PhaseKind::SolverIteration,
                    label,
                    t_start,
                    t_end,
                } => Some((label.clone(), *t_start, *t_end)),
                _ => None,
            })
            .collect();
        // One span per restart cycle plus the final cycle.
        assert_eq!(spans.len(), r_on.restarts + 1);
        // Spans tile the simulated timeline: contiguous, ending at total.
        for w in spans.windows(2) {
            assert_eq!(w[0].2, w[1].1);
        }
        // The first cycle starts after the initial normalization's
        // charges; the last ends exactly at the ledger total.
        assert!(spans[0].1 > 0.0 && spans[0].1 < spans[0].2);
        assert_eq!(spans.last().unwrap().2, l_on.total);
        assert!(spans.last().unwrap().0.contains("final"));
        // Superstep events rode along from the ledger.
        assert!(events
            .iter()
            .any(|e| matches!(e, sf2d_obs::TraceEvent::Superstep { .. })));
    }

    #[test]
    fn matches_dense_oracle_on_small_laplacian() {
        // A rectangular grid avoids the eigenvalue multiplicities a square
        // grid's x/y symmetry creates: single-vector (block size 1) Lanczos
        // finds each *distinct* eigenvalue once, exactly like the paper's
        // block-size-1 BKS configuration.
        let a = grid_2d(5, 7);
        let l = normalized_laplacian(&a).unwrap();
        let op = dist_op(&l, 3);
        let cfg = KrylovSchurConfig {
            nev: 4,
            max_basis: 20,
            tol: 1e-8,
            max_restarts: 100,
            seed: 1,
        };
        let mut ledger = CostLedger::new(Machine::cab());
        let res = krylov_schur_largest(&op, &cfg, &mut ledger);
        assert!(res.converged, "residuals {:?}", res.residuals);
        let want = dense_largest(&l, 4);
        for (got, want) in res.values.iter().zip(&want) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn eigenvectors_satisfy_residual_equation() {
        let a = grid_2d(5, 5);
        let l = normalized_laplacian(&a).unwrap();
        let op = dist_op(&l, 2);
        let cfg = KrylovSchurConfig {
            nev: 3,
            max_basis: 15,
            tol: 1e-9,
            max_restarts: 100,
            seed: 2,
        };
        let mut ledger = CostLedger::new(Machine::cab());
        let res = krylov_schur_largest(&op, &cfg, &mut ledger);
        for (i, v) in res.vectors.iter().enumerate() {
            let xg = v.to_global();
            let ax = l.spmv_dense(&xg);
            let lam = res.values[i];
            let rnorm: f64 = ax
                .iter()
                .zip(&xg)
                .map(|(a, x)| (a - lam * x).powi(2))
                .sum::<f64>()
                .sqrt();
            let xnorm: f64 = xg.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(
                rnorm < 1e-6 * xnorm.max(1e-30),
                "pair {i}: residual {rnorm}"
            );
        }
    }

    #[test]
    fn normalized_laplacian_eigenvalues_in_range() {
        // All eigenvalues of L̂ lie in [0, 2]; the largest approaches 2 for
        // near-bipartite graphs (the paper's §5.3 motivation).
        let a = rmat(&RmatConfig::graph500(7), 3);
        let l = normalized_laplacian(&a).unwrap();
        let op = dist_op(&l, 4);
        let cfg = KrylovSchurConfig {
            nev: 5,
            max_basis: 30,
            tol: 1e-4,
            max_restarts: 300,
            seed: 3,
        };
        let mut ledger = CostLedger::new(Machine::cab());
        let res = krylov_schur_largest(&op, &cfg, &mut ledger);
        assert!(res.converged, "residuals {:?}", res.residuals);
        for &v in &res.values {
            assert!(v > 0.5 && v <= 2.0 + 1e-9, "eigenvalue {v}");
        }
        // Sorted descending.
        for w in res.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn identical_results_for_different_layouts() {
        // The eigensolve is deterministic and layout-invariant (same seeds,
        // same reduction order): values agree to rounding noise introduced
        // by differently-ordered local sums.
        let a = grid_2d(8, 8);
        let l = normalized_laplacian(&a).unwrap();
        let cfg = KrylovSchurConfig {
            nev: 3,
            max_basis: 18,
            tol: 1e-8,
            max_restarts: 100,
            seed: 7,
        };

        let op1 = dist_op(&l, 2);
        let d2 = MatrixDist::block_2d(l.nrows(), 2, 2);
        let op2 = PlainSpmvOp::new(DistCsrMatrix::from_global(&l, &d2));

        let mut l1 = CostLedger::new(Machine::cab());
        let mut l2 = CostLedger::new(Machine::cab());
        let r1 = krylov_schur_largest(&op1, &cfg, &mut l1);
        let r2 = krylov_schur_largest(&op2, &cfg, &mut l2);
        for (a, b) in r1.values.iter().zip(&r2.values) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn resilient_solver_recovers_crashes_to_identical_bits() {
        use sf2d_sim::sf2d_chaos::FaultScript;
        use sf2d_spmv::ChaosSpmvOp;

        let a = grid_2d(5, 7);
        let l = normalized_laplacian(&a).unwrap();
        let d = MatrixDist::block_1d(l.nrows(), 3);
        let dm = DistCsrMatrix::from_global(&l, &d);
        let cfg = KrylovSchurConfig {
            nev: 4,
            max_basis: 20,
            tol: 1e-8,
            max_restarts: 100,
            seed: 1,
        };
        let mut led_gold = CostLedger::new(Machine::cab());
        let gold = krylov_schur_largest(&PlainSpmvOp::new(dm.clone()), &cfg, &mut led_gold);
        assert!(gold.converged);

        // Scripted crash in the second expansion cycle: the solver must
        // rewind to the cycle checkpoint, bill a Recovery superstep, and
        // still land on the gold bits.
        let rt = RefCell::new(ChaosRuntime::scripted(FaultScript::default().crash(1)));
        let op = ChaosSpmvOp { a: &dm, rt: &rt };
        let mut ledger = CostLedger::new(Machine::cab());
        let res = krylov_schur_largest_resilient(&op, &cfg, &mut ledger, &rt);
        assert_eq!(res.values, gold.values);
        assert_eq!(res.residuals, gold.residuals);
        assert_eq!(res.restarts, gold.restarts);
        for (v, w) in res.vectors.iter().zip(&gold.vectors) {
            assert_eq!(v.locals, w.locals, "recovered Ritz vectors differ");
        }
        assert_eq!(rt.borrow().stats.crashes, 1);
        assert!(ledger.by_phase[&Phase::Recovery] > 0.0);
        // The crashed cycle's operator applications are honest lost work.
        assert!(res.op_applies > gold.op_applies);

        // Seeded chaos (message faults + whatever crashes the plan
        // draws): still the gold bits, with retransmissions itemized.
        let rt = RefCell::new(ChaosRuntime::seeded(0xC0FFEE, 0.25));
        let op = ChaosSpmvOp { a: &dm, rt: &rt };
        let mut ledger = CostLedger::new(Machine::cab());
        let res = krylov_schur_largest_resilient(&op, &cfg, &mut ledger, &rt);
        assert_eq!(res.values, gold.values);
        assert!(rt.borrow().stats.message_faults() > 0);
        assert!(ledger.by_phase[&Phase::Retransmit] > 0.0);
    }

    #[test]
    fn rate_zero_resilient_solve_is_byte_identical_to_plain() {
        use sf2d_spmv::ChaosSpmvOp;

        let a = grid_2d(5, 7);
        let l = normalized_laplacian(&a).unwrap();
        let d = MatrixDist::block_1d(l.nrows(), 3);
        let dm = DistCsrMatrix::from_global(&l, &d);
        let cfg = KrylovSchurConfig {
            nev: 3,
            max_basis: 16,
            tol: 1e-8,
            max_restarts: 100,
            seed: 2,
        };
        let mut led_gold = CostLedger::new(Machine::cab());
        let gold = krylov_schur_largest(&PlainSpmvOp::new(dm.clone()), &cfg, &mut led_gold);

        let rt = RefCell::new(ChaosRuntime::seeded(7, 0.0));
        let op = ChaosSpmvOp { a: &dm, rt: &rt };
        let mut ledger = CostLedger::new(Machine::cab());
        let res = krylov_schur_largest_resilient(&op, &cfg, &mut ledger, &rt);
        assert_eq!(res.values, gold.values);
        assert_eq!(ledger.total.to_bits(), led_gold.total.to_bits());
        assert_eq!(ledger.steps, led_gold.steps);
        assert_eq!(ledger.by_phase, led_gold.by_phase);
        assert!(!rt.borrow().stats.any());
    }

    #[test]
    fn cost_ledger_sees_spmv_and_vector_work() {
        let a = grid_2d(7, 7);
        let l = normalized_laplacian(&a).unwrap();
        let op = dist_op(&l, 4);
        let cfg = KrylovSchurConfig {
            nev: 2,
            max_basis: 12,
            tol: 1e-6,
            max_restarts: 50,
            seed: 5,
        };
        let mut ledger = CostLedger::new(Machine::cab());
        let res = krylov_schur_largest(&op, &cfg, &mut ledger);
        assert!(res.op_applies >= cfg.max_basis);
        assert!(ledger.spmv_time() > 0.0);
        assert!(ledger.by_phase[&Phase::VectorOp] > ledger.spmv_time() * 0.01);
    }
}
