#![warn(missing_docs)]
// Loops that index several parallel arrays at once are clearer as range
// loops than as the zipped-iterator rewrites clippy suggests.
#![allow(clippy::needless_range_loop)]

//! # sf2d-eigen
//!
//! Distributed eigensolvers and iterative methods for the SC'13
//! reproduction:
//!
//! * [`krylov_schur`] — thick-restart Lanczos, i.e. **Block Krylov–Schur
//!   with block size 1** on a symmetric operator: exactly the Anasazi
//!   configuration the paper runs for the ten largest eigenpairs of the
//!   normalized Laplacian (§4, §5.3);
//! * [`lanczos`](crate::lanczos::lanczos) — plain full-reorthogonalized Lanczos (cross-check and
//!   spectral estimates);
//! * [`power`] — power method and PageRank (§1's motivating workload);
//! * [`cg`] — distributed conjugate gradients (the paper's "applies
//!   immediately to iterative methods for linear systems" claim);
//! * [`ortho`] — batched CGS2 orthogonalization, the vector-bound kernel
//!   whose cost exposes vector imbalance (Table 5);
//! * [`dense`] — the small dense eigensolvers for the projected problems.
//!
//! Every kernel executes on `sf2d-sim` logical ranks and charges an exact
//! α-β-γ cost ledger, so solve-time comparisons across data layouts
//! reproduce the paper's Tables 4 and 5.

pub mod block_lanczos;
pub mod cg;
pub mod dense;
pub mod krylov_schur;
pub mod lanczos;
pub mod lobpcg;
pub mod ortho;
pub mod power;

pub use block_lanczos::{block_lanczos, BlockLanczosResult};
pub use cg::{conjugate_gradient, CgConfig, CgResult};
pub use krylov_schur::{
    krylov_schur_largest, krylov_schur_largest_resilient, EigResult, KrylovSchurConfig,
};
pub use lanczos::{lanczos, LanczosResult};
pub use lobpcg::{lobpcg_largest, LobpcgConfig, LobpcgResult};
pub use power::{pagerank, power_method, PageRankResult};
