//! Block Lanczos with full reorthogonalization (no restarting).
//!
//! The generalization of [`lanczos`](crate::lanczos()) to block size `b`:
//! the basis grows `b` vectors at a time, each new candidate being the
//! operator applied to the vector `b` positions back. The projected matrix
//! `T = Vᵀ A V` is assembled explicitly (robust at these subspace sizes)
//! and solved densely.
//!
//! This exists to test the paper's §4 choice empirically: "We use block
//! size one, as we did not observe any advantage of larger blocks on
//! scale-free graphs." The `ablations` harness compares operator
//! applications and simulated time across block sizes.

use std::sync::Arc;

use sf2d_sim::cost::CostLedger;
use sf2d_spmv::{DistVector, LinearOperator};

use crate::dense::{symmetric_eig, DenseMat};
use crate::ortho::cgs2;

/// Result of a block-Lanczos run.
#[derive(Debug)]
pub struct BlockLanczosResult {
    /// Ritz values, ascending.
    pub ritz_values: Vec<f64>,
    /// Relative residual estimates (‖A x − θ x‖ / |θ|) for each Ritz pair.
    pub residuals: Vec<f64>,
    /// Basis size actually reached.
    pub basis_size: usize,
    /// Operator applications.
    pub op_applies: usize,
}

/// Runs block Lanczos with block size `b` until the basis reaches `m`
/// vectors, then solves the projected problem.
///
/// # Panics
/// Panics unless `1 <= b <= m <= n`.
pub fn block_lanczos(
    op: &dyn LinearOperator,
    b: usize,
    m: usize,
    seed: u64,
    ledger: &mut CostLedger,
) -> BlockLanczosResult {
    let map = Arc::clone(op.vmap());
    assert!(b >= 1 && b <= m && m <= map.n(), "need 1 <= b <= m <= n");

    // Initial orthonormal block of b random vectors.
    let mut basis: Vec<DistVector> = Vec::with_capacity(m);
    for i in 0..b {
        let mut v = DistVector::random(Arc::clone(&map), seed ^ ((i as u64) << 20));
        let nrm = cgs2(&mut v, &basis, ledger);
        v.scale(1.0 / nrm.max(1e-300), ledger);
        basis.push(v);
    }

    // Expansion: candidate j comes from A * basis[j - b].
    let mut op_applies = 0usize;
    let mut salt = 1u64;
    while basis.len() < m {
        let src = basis.len() - b;
        let mut w = DistVector::zeros(Arc::clone(&map));
        op.apply(&basis[src], &mut w, ledger);
        op_applies += 1;
        let nrm = cgs2(&mut w, &basis, ledger);
        if nrm < 1e-12 {
            // Breakdown: inject a fresh random direction.
            let mut fresh = DistVector::random(Arc::clone(&map), seed ^ (salt << 33));
            salt += 1;
            let fn_ = cgs2(&mut fresh, &basis, ledger);
            fresh.scale(1.0 / fn_.max(1e-300), ledger);
            basis.push(fresh);
        } else {
            w.scale(1.0 / nrm, ledger);
            basis.push(w);
        }
    }

    // Projected matrix T = Vᵀ A V, built column by column.
    let dim = basis.len();
    let mut t = DenseMat::zeros(dim);
    for j in 0..dim {
        let mut av = DistVector::zeros(Arc::clone(&map));
        op.apply(&basis[j], &mut av, ledger);
        op_applies += 1;
        for i in 0..=j {
            let v = av.dot(&basis[i], ledger);
            t[(i, j)] = v;
            t[(j, i)] = v;
        }
    }
    let (vals, vecs) = symmetric_eig(&t);

    // Exact residuals of the Ritz pairs: ‖A y − θ y‖ with y = V s. The
    // cheap way: A y = Σ s_i (A v_i) would need the stored applications;
    // recompute via the projected identity instead: ‖A y − θ y‖² =
    // ‖A y‖² − θ² (with orthonormal V this is not available without A y),
    // so we evaluate the top few pairs directly.
    let check = dim.min(10);
    let mut residuals = vec![f64::NAN; dim];
    for rank in 0..check {
        let col = dim - 1 - rank; // largest first
        let mut y = DistVector::zeros(Arc::clone(&map));
        for (i, v) in basis.iter().enumerate() {
            y.axpy(vecs[(i, col)], v, ledger);
        }
        let mut ay = DistVector::zeros(Arc::clone(&map));
        op.apply(&y, &mut ay, ledger);
        op_applies += 1;
        ay.axpy(-vals[col], &y, ledger);
        residuals[col] = ay.norm2(ledger) / vals[col].abs().max(1e-30);
    }

    BlockLanczosResult {
        ritz_values: vals,
        residuals,
        basis_size: dim,
        op_applies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::grid_2d;
    use sf2d_graph::normalized_laplacian;
    use sf2d_partition::MatrixDist;
    use sf2d_sim::{CostLedger, Machine};
    use sf2d_spmv::{DistCsrMatrix, PlainSpmvOp};

    fn op_of(a: &sf2d_graph::CsrMatrix, p: usize) -> PlainSpmvOp {
        let d = MatrixDist::block_1d(a.nrows(), p);
        PlainSpmvOp::new(DistCsrMatrix::from_global(a, &d))
    }

    #[test]
    fn block_one_matches_plain_lanczos_quality() {
        let a = grid_2d(6, 7);
        let l = normalized_laplacian(&a).unwrap();
        let op = op_of(&l, 2);
        let mut ledger = CostLedger::new(Machine::cab());
        let res = block_lanczos(&op, 1, 30, 5, &mut ledger);
        // Largest Ritz value approximates lambda_max = 2 (bipartite).
        let top = *res.ritz_values.last().unwrap();
        assert!((top - 2.0).abs() < 1e-6, "top {top}");
        assert!(
            res.residuals[res.basis_size - 1] < 1e-3,
            "residual {}",
            res.residuals[res.basis_size - 1]
        );
    }

    #[test]
    fn larger_blocks_capture_degenerate_eigenvalues() {
        // A square grid's L-hat has multiplicity-2 eigenvalues that single
        // -vector Krylov spaces cannot see twice; a block of 2 can.
        let a = grid_2d(6, 6);
        let l = normalized_laplacian(&a).unwrap();
        let op = op_of(&l, 2);
        let mut ledger = CostLedger::new(Machine::cab());
        let b1 = block_lanczos(&op, 1, 30, 7, &mut ledger);
        let b2 = block_lanczos(&op, 2, 30, 7, &mut ledger);
        // Count Ritz values within 1e-8 of the known double eigenvalue
        // nearest 2 (pair lambda, with multiplicity 2 by x/y symmetry).
        let near =
            |vals: &[f64], target: f64| vals.iter().filter(|v| (**v - target).abs() < 1e-7).count();
        // Find the largest non-simple eigenvalue from the block-2 run.
        let target = b2.ritz_values[b2.basis_size - 2];
        assert!(
            near(&b2.ritz_values, target) >= near(&b1.ritz_values, target),
            "block 2 should see at least as many copies"
        );
    }

    #[test]
    fn op_applies_grow_with_block_size_for_same_accuracy() {
        // The paper's observation, measurably: to reach the same basis size
        // (and roughly the same top-pair accuracy), block 4 spends the same
        // number of expansion applies but its per-step convergence along
        // the dominant direction is slower.
        let a = grid_2d(5, 9);
        let l = normalized_laplacian(&a).unwrap();
        let op = op_of(&l, 2);
        let mut ledger = CostLedger::new(Machine::cab());
        let b1 = block_lanczos(&op, 1, 20, 3, &mut ledger);
        let b4 = block_lanczos(&op, 4, 20, 3, &mut ledger);
        let top1 = b1.residuals[b1.basis_size - 1];
        let top4 = b4.residuals[b4.basis_size - 1];
        assert!(
            top1 <= top4 * 10.0,
            "block 1 should be at least comparable: {top1} vs {top4}"
        );
    }
}
