//! Distributed conjugate gradients.
//!
//! The paper's §1: "Although the eigenvalue problem is our primary target,
//! our work applies immediately to iterative methods for linear and
//! nonlinear systems of equations as well." This is that application: CG
//! on a symmetric positive-definite operator, with every SpMV, dot and
//! axpy running on the same distributed machinery — so a data layout's
//! effect on a *linear solve* can be measured exactly like its effect on
//! the eigensolver.

use std::sync::Arc;

use sf2d_sim::cost::CostLedger;
use sf2d_spmv::{DistVector, LinearOperator};

/// Options for the CG solver.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Relative residual tolerance (‖r‖ / ‖b‖).
    pub tol: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            tol: 1e-8,
            max_iters: 500,
        }
    }
}

/// CG result.
#[derive(Debug)]
pub struct CgResult {
    /// The solution.
    pub x: DistVector,
    /// Final relative residual.
    pub rel_residual: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Solves `Op x = b` for a symmetric positive-definite operator.
pub fn conjugate_gradient(
    op: &dyn LinearOperator,
    b: &DistVector,
    cfg: &CgConfig,
    ledger: &mut CostLedger,
) -> CgResult {
    let map = Arc::clone(op.vmap());
    let mut x = DistVector::zeros(Arc::clone(&map));
    let mut r = b.clone();
    let mut p = r.clone();
    let mut ap = DistVector::zeros(Arc::clone(&map));

    let b_norm = {
        let n = r.norm2(ledger);
        if n == 0.0 {
            return CgResult {
                x,
                rel_residual: 0.0,
                iterations: 0,
                converged: true,
            };
        }
        n
    };
    let mut rs = b_norm * b_norm;

    for it in 1..=cfg.max_iters {
        op.apply(&p, &mut ap, ledger);
        let pap = p.dot(&ap, ledger);
        if pap <= 0.0 {
            // Not SPD (or breakdown): return the best iterate so far.
            return CgResult {
                x,
                rel_residual: rs.sqrt() / b_norm,
                iterations: it,
                converged: false,
            };
        }
        let alpha = rs / pap;
        x.axpy(alpha, &p, ledger);
        r.axpy(-alpha, &ap, ledger);
        let rs_new = r.dot(&r, ledger);
        if rs_new.sqrt() <= cfg.tol * b_norm {
            return CgResult {
                x,
                rel_residual: rs_new.sqrt() / b_norm,
                iterations: it,
                converged: true,
            };
        }
        let beta = rs_new / rs;
        // p = r + beta p.
        p.scale(beta, ledger);
        p.axpy(1.0, &r, ledger);
        rs = rs_new;
    }
    CgResult {
        x,
        rel_residual: rs.sqrt() / b_norm,
        iterations: cfg.max_iters,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::grid_2d;
    use sf2d_graph::{combinatorial_laplacian, CooMatrix, CsrMatrix};
    use sf2d_partition::MatrixDist;
    use sf2d_sim::{CostLedger, Machine};
    use sf2d_spmv::{DistCsrMatrix, PlainSpmvOp};

    /// SPD test operator: L + I (Laplacian shifted off its null space).
    fn spd_op(p: usize) -> (CsrMatrix, PlainSpmvOp) {
        let a = grid_2d(8, 8);
        let l = combinatorial_laplacian(&a).unwrap();
        let mut coo = l.to_coo();
        for i in 0..l.nrows() as u32 {
            coo.push(i, i, 1.0);
        }
        let spd = CsrMatrix::from_coo(&coo);
        let d = MatrixDist::block_2d(spd.nrows(), 2, (p / 2).max(1) as u32);
        let op = PlainSpmvOp::new(DistCsrMatrix::from_global(&spd, &d));
        (spd, op)
    }

    #[test]
    fn solves_spd_system() {
        let (spd, op) = spd_op(4);
        let n = spd.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b_global = spd.spmv_dense(&x_true);
        let b = DistVector::from_global(std::sync::Arc::clone(op.vmap()), &b_global);
        let mut ledger = CostLedger::new(Machine::cab());
        let res = conjugate_gradient(&op, &b, &CgConfig::default(), &mut ledger);
        assert!(res.converged, "residual {}", res.rel_residual);
        let got = res.x.to_global();
        for (g, w) in got.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-6, "{g} vs {w}");
        }
        assert!(ledger.spmv_time() > 0.0);
    }

    #[test]
    fn zero_rhs_is_trivial() {
        let (_, op) = spd_op(4);
        let b = DistVector::zeros(std::sync::Arc::clone(op.vmap()));
        let mut ledger = CostLedger::new(Machine::cab());
        let res = conjugate_gradient(&op, &b, &CgConfig::default(), &mut ledger);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(res.x.to_global().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_cap_respected() {
        let (_, op) = spd_op(4);
        let b = DistVector::random(std::sync::Arc::clone(op.vmap()), 3);
        let mut ledger = CostLedger::new(Machine::cab());
        let cfg = CgConfig {
            tol: 1e-30,
            max_iters: 3,
        };
        let res = conjugate_gradient(&op, &b, &cfg, &mut ledger);
        assert!(!res.converged);
        assert_eq!(res.iterations, 3);
    }

    #[test]
    fn layout_invariant_solution() {
        // Same system, two layouts: identical solutions.
        let a = grid_2d(6, 6);
        let l = combinatorial_laplacian(&a).unwrap();
        let mut coo = l.to_coo();
        for i in 0..l.nrows() as u32 {
            coo.push(i, i, 0.5);
        }
        let spd = CsrMatrix::from_coo(&coo);
        let b_global: Vec<f64> = (0..spd.nrows()).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut sols = Vec::new();
        for d in [
            MatrixDist::block_1d(spd.nrows(), 4),
            MatrixDist::random_2d(spd.nrows(), 2, 3, 1),
        ] {
            let op = PlainSpmvOp::new(DistCsrMatrix::from_global(&spd, &d));
            let b = DistVector::from_global(std::sync::Arc::clone(op.vmap()), &b_global);
            let mut ledger = CostLedger::new(Machine::cab());
            let res = conjugate_gradient(&op, &b, &CgConfig::default(), &mut ledger);
            assert!(res.converged);
            sols.push(res.x.to_global());
        }
        for (a, b) in sols[0].iter().zip(&sols[1]) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn mildly_indefinite_reports_breakdown() {
        // Operator with a negative eigenvalue: -I.
        let neg = {
            let mut coo = CooMatrix::new(36, 36);
            for i in 0..36u32 {
                coo.push(i, i, -1.0);
            }
            CsrMatrix::from_coo(&coo)
        };
        let d = MatrixDist::block_1d(36, 3);
        let op = PlainSpmvOp::new(DistCsrMatrix::from_global(&neg, &d));
        let b = DistVector::random(std::sync::Arc::clone(op.vmap()), 1);
        let mut ledger = CostLedger::new(Machine::cab());
        let res = conjugate_gradient(&op, &b, &CgConfig::default(), &mut ledger);
        assert!(!res.converged);
    }
}
