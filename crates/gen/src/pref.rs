//! Barabási–Albert preferential attachment.
//!
//! Yoo et al. \[34\] — the paper's main 2D-block point of comparison —
//! evaluated on preferential-attachment graphs \[35\]. We include the model
//! both for fidelity to that baseline and because its *naturally balanced*
//! per-process nonzero counts (noted in the paper's §2.5) make it a useful
//! contrast to R-MAT in tests: block layouts look better on BA graphs than
//! they do on real data.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sf2d_graph::{CooMatrix, CsrMatrix, Vtx};

/// Generates a Barabási–Albert graph: starts from a clique on `m + 1`
/// vertices, then each new vertex attaches to `m` existing vertices chosen
/// proportionally to their current degree.
///
/// # Panics
/// Panics unless `n > m >= 1`.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> CsrMatrix {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // `endpoints` holds every edge endpoint ever created; sampling a uniform
    // element of it IS degree-proportional sampling (the classic trick).
    let mut endpoints: Vec<Vtx> = Vec::with_capacity(2 * m * n);
    let mut coo = CooMatrix::with_capacity(n, n, 2 * m * n);

    // Seed clique on m+1 vertices.
    for u in 0..=(m as Vtx) {
        for v in (u + 1)..=(m as Vtx) {
            coo.push_sym(u, v, 1.0);
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    for new in (m + 1)..n {
        let newv = new as Vtx;
        // Draw until m distinct targets; duplicates are rare because
        // endpoint multiplicity >> m. A Vec with linear membership check
        // keeps insertion order deterministic (HashSet iteration is not).
        let mut chosen: Vec<Vtx> = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            coo.push_sym(newv, t, 1.0);
            endpoints.push(newv);
            endpoints.push(t);
        }
    }
    CsrMatrix::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::stats::{looks_scale_free, DegreeStats};

    #[test]
    fn deterministic_and_symmetric() {
        let a = preferential_attachment(200, 3, 1);
        assert_eq!(a, preferential_attachment(200, 3, 1));
        assert!(a.is_structurally_symmetric());
    }

    #[test]
    fn edge_count_matches_model() {
        let (n, m) = (300usize, 4usize);
        let a = preferential_attachment(n, m, 2);
        // clique edges + m per additional vertex.
        let expect = m * (m + 1) / 2 + (n - m - 1) * m;
        assert_eq!(a.nnz() / 2, expect);
    }

    #[test]
    fn minimum_degree_is_m() {
        let a = preferential_attachment(500, 3, 3);
        for i in 0..a.nrows() {
            assert!(a.row_nnz(i) >= 3, "vertex {i} degree {}", a.row_nnz(i));
        }
    }

    #[test]
    fn produces_hubs() {
        let a = preferential_attachment(5000, 2, 4);
        assert!(looks_scale_free(&a), "{:?}", DegreeStats::of(&a));
        // Early vertices should on average be the hubs.
        let early: usize = (0..10).map(|i| a.row_nnz(i)).sum();
        let late: usize = (4980..4990).map(|i| a.row_nnz(i)).sum();
        assert!(early > 3 * late, "early {early} late {late}");
    }

    #[test]
    #[should_panic(expected = "need n > m")]
    fn invalid_sizes_rejected() {
        preferential_attachment(3, 3, 0);
    }
}
