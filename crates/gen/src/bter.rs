//! BTER — Block Two-Level Erdős–Rényi (Seshadhri, Kolda, Pinar \[31\]).
//!
//! The paper's `bter` matrix (Table 1: 3.9M rows, 63M nnz, power-law degree
//! distribution with γ = 1.9) comes from this generator. BTER reproduces
//! both a power-law degree distribution *and* high clustering:
//!
//! 1. **Phase 1 (affinity blocks):** vertices are grouped by target degree
//!    into blocks of size `d + 1`; each block becomes a dense Erdős–Rényi
//!    subgraph with connectivity `ρ(d)`, giving community structure.
//! 2. **Phase 2 (excess Chung–Lu):** the degree still missing after phase 1
//!    is satisfied with a weighted Chung–Lu pass over all vertices.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sf2d_graph::{CooMatrix, CsrMatrix, Vtx};

use crate::powerlaw::powerlaw_degrees;
use crate::util::AliasTable;

/// Configuration for the BTER generator.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct BterConfig {
    /// Number of vertices.
    pub n: usize,
    /// Power-law exponent of the target degree distribution. The paper's
    /// bter matrix uses γ = 1.9.
    pub gamma: f64,
    /// Minimum target degree.
    pub dmin: usize,
    /// Maximum target degree.
    pub dmax: usize,
    /// Block connectivity at the minimum degree; ρ decays with degree as
    /// `rho * (1/ (1 + ln d))` so larger blocks are sparser, following the
    /// published recipe's falling clustering coefficient.
    pub rho: f64,
}

impl BterConfig {
    /// The paper's parameterization (γ = 1.9) at a reduced vertex count.
    pub fn paper(n: usize, dmax: usize) -> BterConfig {
        BterConfig {
            n,
            gamma: 1.9,
            dmin: 2,
            dmax,
            rho: 0.9,
        }
    }
}

/// Generates a symmetric BTER graph.
pub fn bter(cfg: &BterConfig, seed: u64) -> CsrMatrix {
    assert!(cfg.n >= 2);
    assert!((0.0..=1.0).contains(&cfg.rho));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let degrees = powerlaw_degrees(
        cfg.n,
        cfg.gamma,
        cfg.dmin,
        cfg.dmax.min(cfg.n - 1),
        seed ^ 0xB7E5,
    );

    let n = cfg.n;
    let mut coo = CooMatrix::with_capacity(n, n, degrees.iter().sum::<usize>() * 2);
    let mut satisfied = vec![0usize; n];

    // Phase 1: affinity blocks. `degrees` is sorted descending; walk from
    // the *tail* (low degrees) grouping consecutive vertices into blocks of
    // size d+1 where d is the degree of the block's first member.
    let mut idx = n;
    while idx > 0 {
        let last = idx - 1;
        let d = degrees[last];
        if d < 1 {
            break;
        }
        let bsize = (d + 1).min(idx);
        let start = idx - bsize;
        let members: Vec<Vtx> = (start..idx).map(|v| v as Vtx).collect();
        // ER(bsize, rho_d) within the block.
        let rho_d = cfg.rho / (1.0 + (d as f64).ln());
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if rng.gen::<f64>() < rho_d {
                    coo.push_sym(members[i], members[j], 1.0);
                    satisfied[members[i] as usize] += 1;
                    satisfied[members[j] as usize] += 1;
                }
            }
        }
        idx = start;
    }

    // Phase 2: excess Chung–Lu on the unmet degree.
    let excess: Vec<f64> = degrees
        .iter()
        .zip(&satisfied)
        .map(|(&want, &have)| (want.saturating_sub(have)) as f64)
        .collect();
    let total_excess: f64 = excess.iter().sum();
    if total_excess > 1.0 {
        let table = AliasTable::new(&excess);
        let m2 = (total_excess / 2.0).round() as usize;
        for _ in 0..m2 {
            let u = table.sample(&mut rng);
            let v = table.sample(&mut rng);
            if u != v {
                coo.push_sym(u, v, 1.0);
            }
        }
    }

    // Collapse duplicates to a unit pattern.
    let a = CsrMatrix::from_coo(&coo);
    let mut unit = CooMatrix::with_capacity(n, n, a.nnz());
    for (r, c, _) in a.iter() {
        unit.push(r, c, 1.0);
    }
    CsrMatrix::from_coo(&unit)
}

pub use sf2d_graph::algorithms::clustering_coefficient;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::erdos_renyi;
    use sf2d_graph::stats::{looks_scale_free, DegreeStats};

    #[test]
    fn deterministic_and_symmetric() {
        let cfg = BterConfig::paper(500, 50);
        let a = bter(&cfg, 3);
        assert_eq!(a, bter(&cfg, 3));
        assert!(a.is_structurally_symmetric());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let cfg = BterConfig::paper(3000, 200);
        let a = bter(&cfg, 5);
        assert!(looks_scale_free(&a), "{:?}", DegreeStats::of(&a));
    }

    #[test]
    fn clustering_beats_er() {
        // BTER's defining property: clustering far above an ER graph of the
        // same size/density.
        let cfg = BterConfig::paper(1000, 60);
        let a = bter(&cfg, 7);
        let cc_bter = clustering_coefficient(&a);
        let er = erdos_renyi(1000, a.nnz() / 2, 7);
        let cc_er = clustering_coefficient(&er);
        assert!(
            cc_bter > 3.0 * cc_er + 0.01,
            "bter cc {cc_bter} vs er cc {cc_er}"
        );
    }

    #[test]
    fn no_self_loops() {
        let a = bter(&BterConfig::paper(300, 30), 9);
        for i in 0..300 {
            assert_eq!(a.get(i, i as u32), None);
        }
    }

    #[test]
    fn average_degree_tracks_target() {
        let cfg = BterConfig::paper(2000, 100);
        let want = crate::powerlaw::powerlaw_mean(cfg.gamma, cfg.dmin, cfg.dmax);
        let a = bter(&cfg, 11);
        let got = a.nnz() as f64 / a.nrows() as f64;
        // Duplicate collapse loses some edges; allow a wide but bounded band.
        assert!(
            got > 0.4 * want && got < 2.0 * want,
            "avg degree {got}, target {want}"
        );
    }
}
