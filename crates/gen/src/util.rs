//! Sampling utilities shared by the generators.

use rand::Rng;

/// Walker's alias method for O(1) sampling from a fixed discrete
/// distribution — the workhorse behind Chung–Lu and BTER, where every edge
/// endpoint is drawn proportionally to a vertex weight.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (at least one positive).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/NaN value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> AliasTable {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value"
        );
        let n = weights.len();
        let mut prob: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0, "negative weight");
                w * n as f64 / total
            })
            .collect();
        let mut alias = vec![0u32; n];

        // Standard two-worklist construction.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical slack: anything left gets probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    #[allow(dead_code)] // used by tests and kept for API symmetry
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true: `new` rejects empty input).
    #[allow(dead_code)]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index distributed proportionally to the input weights.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 4]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts {counts:?}");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let t = AliasTable::new(&[9.0, 1.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut ones = 0usize;
        const N: usize = 50_000;
        for _ in 0..N {
            if t.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        let frac = ones as f64 / N as f64;
        assert!((frac - 0.1).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn zero_weights_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn single_category() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn all_zero_weights_rejected() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_rejected() {
        AliasTable::new(&[]);
    }
}
