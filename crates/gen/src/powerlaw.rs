//! Power-law degree-sequence sampling.
//!
//! Produces the target degree sequences consumed by [`chung_lu`](crate::chung_lu::chung_lu)
//! and [`bter`](crate::bter::bter): `P(d) ∝ d^{-γ}` on `[dmin, dmax]`, sampled by
//! inverse-CDF on the discrete distribution.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Samples `n` degrees from the discrete power law `P(d) ∝ d^{-γ}`,
/// `d ∈ [dmin, dmax]`.
///
/// The returned sequence is sorted descending (hubs first), which both
/// Chung–Lu and BTER want. The sum is forced even (graphs need an even
/// total degree) by decrementing one entry if necessary.
///
/// # Panics
/// Panics unless `1 <= dmin <= dmax` and `γ > 1`.
pub fn powerlaw_degrees(n: usize, gamma: f64, dmin: usize, dmax: usize, seed: u64) -> Vec<usize> {
    assert!(dmin >= 1 && dmin <= dmax, "need 1 <= dmin <= dmax");
    assert!(gamma > 1.0, "gamma must exceed 1");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Build the CDF once: sizes here are modest (dmax <= vertices).
    let mut cdf = Vec::with_capacity(dmax - dmin + 1);
    let mut acc = 0.0f64;
    for d in dmin..=dmax {
        acc += (d as f64).powf(-gamma);
        cdf.push(acc);
    }
    let total = acc;

    let mut degrees: Vec<usize> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>() * total;
            // partition_point returns the first index with cdf > u.
            let idx = cdf.partition_point(|&c| c <= u);
            dmin + idx.min(dmax - dmin)
        })
        .collect();

    degrees.sort_unstable_by(|a, b| b.cmp(a));
    let sum: usize = degrees.iter().sum();
    if sum % 2 == 1 {
        // Decrement the *smallest* entry that can afford it — decrementing
        // an earlier (larger) one could break the descending order when it
        // ties with its successor.
        if let Some(d) = degrees.iter_mut().rev().find(|d| **d > dmin) {
            *d -= 1;
        } else {
            degrees[0] += 1;
        }
    }
    degrees
}

/// Expected mean of the discrete power law `P(d) ∝ d^{-γ}` on `[dmin, dmax]`.
/// Useful for picking `(γ, dmin, dmax)` to hit a target average degree.
pub fn powerlaw_mean(gamma: f64, dmin: usize, dmax: usize) -> f64 {
    let mut z = 0.0;
    let mut m = 0.0;
    for d in dmin..=dmax {
        let p = (d as f64).powf(-gamma);
        z += p;
        m += d as f64 * p;
    }
    m / z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_bounds_and_evenness() {
        let d = powerlaw_degrees(1001, 2.0, 2, 100, 3);
        assert_eq!(d.len(), 1001);
        assert!(d.iter().all(|&x| (2..=100).contains(&x)));
        assert_eq!(d.iter().sum::<usize>() % 2, 0);
    }

    #[test]
    fn sorted_descending() {
        let d = powerlaw_degrees(500, 2.2, 1, 50, 9);
        for w in d.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            powerlaw_degrees(100, 2.0, 1, 30, 5),
            powerlaw_degrees(100, 2.0, 1, 30, 5)
        );
    }

    #[test]
    fn heavier_tail_for_smaller_gamma() {
        // gamma 1.5 should produce a larger mean degree than gamma 3.0.
        let light = powerlaw_degrees(20_000, 3.0, 1, 1000, 7);
        let heavy = powerlaw_degrees(20_000, 1.5, 1, 1000, 7);
        let ml: f64 = light.iter().sum::<usize>() as f64 / 20_000.0;
        let mh: f64 = heavy.iter().sum::<usize>() as f64 / 20_000.0;
        assert!(mh > 2.0 * ml, "means {mh} vs {ml}");
    }

    #[test]
    fn empirical_mean_matches_theory() {
        let d = powerlaw_degrees(50_000, 2.0, 2, 500, 21);
        let emp = d.iter().sum::<usize>() as f64 / d.len() as f64;
        let theory = powerlaw_mean(2.0, 2, 500);
        assert!((emp - theory).abs() / theory < 0.05, "{emp} vs {theory}");
    }

    #[test]
    fn degenerate_single_degree() {
        let d = powerlaw_degrees(10, 2.0, 4, 4, 0);
        assert!(d.iter().all(|&x| x == 4));
    }
}
