//! R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos \[16\]).
//!
//! Each edge is placed by recursively descending `scale` levels of a 2x2
//! quadrant split with probabilities `(a, b, c, d)`. The paper's
//! `rmat_22/24/26` matrices use the Graph500 benchmark parameters
//! `a = 0.57, b = c = 0.19, d = 0.05` with average degree held constant so
//! nnz grows ~4x per two scale steps — our [`RmatConfig::graph500`] mirrors
//! that setup.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sf2d_graph::{CooMatrix, CsrMatrix, Vtx};

/// Parameters for the R-MAT generator.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Directed edges generated = `edge_factor << scale`.
    pub edge_factor: usize,
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Per-level multiplicative noise on the quadrant probabilities
    /// (0.0 = classic R-MAT; Graph500 uses a small perturbation to avoid
    /// exactly self-similar structure). Range `[0, 1)`.
    pub noise: f64,
}

impl RmatConfig {
    /// Graph500 parameters at the given scale: `a=0.57, b=c=0.19, d=0.05`,
    /// edge factor 16 — exactly the setting cited in the paper's Table 1.
    pub fn graph500(scale: u32) -> RmatConfig {
        RmatConfig {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }

    /// Implied probability of the bottom-right quadrant.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    fn validate(&self) {
        assert!(self.scale <= 31, "scale too large for u32 vertex ids");
        let d = self.d();
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && d >= -1e-12,
            "quadrant probabilities must be non-negative"
        );
        assert!((0.0..1.0).contains(&self.noise), "noise must be in [0, 1)");
    }
}

/// Generates a symmetric R-MAT adjacency matrix.
///
/// Directed R-MAT edges are generated, self-loops dropped, then the pattern
/// is symmetrized (`A + Aᵀ` with unit values, duplicates collapsed) —
/// matching the paper's preprocessing of unsymmetric inputs.
pub fn rmat(cfg: &RmatConfig, seed: u64) -> CsrMatrix {
    cfg.validate();
    let n = 1usize << cfg.scale;
    let m = cfg.edge_factor << cfg.scale;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(n, n, 2 * m);
    for _ in 0..m {
        let (u, v) = rmat_edge(cfg, &mut rng);
        if u != v {
            coo.push_sym(u, v, 1.0);
        }
    }
    let a = CsrMatrix::from_coo(&coo);
    // Collapse multi-edges to unit weight: partitioners care about the
    // pattern, and Graph500 deduplicates too.
    let mut unit = CooMatrix::with_capacity(n, n, a.nnz());
    for (r, c, _) in a.iter() {
        unit.push(r, c, 1.0);
    }
    CsrMatrix::from_coo(&unit)
}

/// Draws one directed R-MAT edge.
fn rmat_edge<R: Rng + ?Sized>(cfg: &RmatConfig, rng: &mut R) -> (Vtx, Vtx) {
    let (mut a, mut b, mut c) = (cfg.a, cfg.b, cfg.c);
    let mut row = 0 as Vtx;
    let mut col = 0 as Vtx;
    for level in 0..cfg.scale {
        let bit = 1 << (cfg.scale - 1 - level);
        let r: f64 = rng.gen();
        if r < a {
            // top-left: nothing set
        } else if r < a + b {
            col |= bit;
        } else if r < a + b + c {
            row |= bit;
        } else {
            row |= bit;
            col |= bit;
        }
        if cfg.noise > 0.0 {
            // Graph500-style per-level noise keeps hubs from being perfectly
            // nested; renormalize so probabilities stay a distribution.
            let mu = |rng: &mut R| 1.0 + cfg.noise * (rng.gen::<f64>() - 0.5);
            let (na, nb, nc, nd) = (
                a * mu(rng),
                b * mu(rng),
                c * mu(rng),
                (1.0 - a - b - c) * mu(rng),
            );
            let s = na + nb + nc + nd;
            a = na / s;
            b = nb / s;
            c = nc / s;
        }
    }
    (row, col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::stats::{looks_scale_free, DegreeStats};

    #[test]
    fn deterministic_given_seed() {
        let cfg = RmatConfig::graph500(8);
        let a = rmat(&cfg, 42);
        let b = rmat(&cfg, 42);
        assert_eq!(a, b);
        let c = rmat(&cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn dimensions_and_symmetry() {
        let cfg = RmatConfig::graph500(8);
        let a = rmat(&cfg, 1);
        assert_eq!(a.nrows(), 256);
        assert!(a.is_structurally_symmetric());
        // No self loops.
        for i in 0..a.nrows() {
            assert_eq!(a.get(i, i as u32), None);
        }
    }

    #[test]
    fn graph500_parameters_give_skewed_degrees() {
        let a = rmat(&RmatConfig::graph500(10), 7);
        assert!(looks_scale_free(&a), "stats: {:?}", DegreeStats::of(&a));
    }

    #[test]
    fn uniform_quadrants_give_er_like_graph() {
        // a=b=c=d=0.25 degenerates to (near) Erdős–Rényi: low skew.
        let cfg = RmatConfig {
            scale: 10,
            edge_factor: 8,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            noise: 0.0,
        };
        let a = rmat(&cfg, 9);
        let s = DegreeStats::of(&a);
        assert!(s.skew < 4.0, "skew {}", s.skew);
    }

    #[test]
    fn nnz_scales_roughly_4x_per_two_scales() {
        // The paper's weak-scaling setup: rmat_k and rmat_{k+2} differ ~4x.
        let a = rmat(&RmatConfig::graph500(8), 3);
        let b = rmat(&RmatConfig::graph500(10), 3);
        let ratio = b.nnz() as f64 / a.nnz() as f64;
        // Duplicate collapse bites harder at small scales, so the realized
        // ratio drifts above the nominal 4x; accept a generous band.
        assert!(ratio > 2.8 && ratio < 5.6, "ratio {ratio}");
    }

    #[test]
    fn values_are_unit() {
        let a = rmat(&RmatConfig::graph500(6), 5);
        assert!(a.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn invalid_probabilities_rejected() {
        let cfg = RmatConfig {
            scale: 4,
            edge_factor: 4,
            a: 0.9,
            b: 0.2,
            c: 0.2,
            noise: 0.0,
        };
        rmat(&cfg, 0);
    }
}
