//! Proxy configurations for the paper's Table 1 matrices.
//!
//! The six real-world inputs (UF Sparse Matrix Collection / SNAP) cannot be
//! downloaded in this environment, so each is replaced by a synthetic proxy
//! that preserves the three statistics the paper's conclusions rest on:
//!
//! 1. **average degree** (nnz / rows) — drives compute volume and the ratio
//!    of compute to communication;
//! 2. **maximum degree** relative to the graph size — drives the nonzero
//!    *imbalance* of block layouts (the paper's "up to 130x" observation);
//! 3. **locality / community structure** — what graph partitioning can
//!    exploit (web crawls have strong host locality; social networks less).
//!
//! Sizes default to 1/64 of the paper's (1/256 for the two largest). The
//! maximum degree is preserved *absolutely* where feasible (`hollywood`'s
//! 12K-degree hub fits in a 17K-vertex proxy) and capped at `n/2` otherwise
//! (`uk-2005`'s 1.8M-degree hub cannot exist in a 154K-vertex graph); the
//! cap is recorded in EXPERIMENTS.md.

use sf2d_graph::stats::DegreeStats;
use sf2d_graph::CsrMatrix;

use crate::bter::{bter, BterConfig};
use crate::chung_lu::chung_lu;
use crate::rmat::{rmat, RmatConfig};

/// Which generator builds the proxy, with its parameters.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub enum ProxyKind {
    /// Chung–Lu with Zipf weights fitted to hit a target max degree, plus an
    /// optional planted-community locality layer.
    ChungLu {
        /// Target maximum degree (capped at n/2 inside the generator).
        max_degree: usize,
        /// Number of planted communities (0 disables).
        blocks: usize,
        /// Fraction of edges kept within their community.
        locality: f64,
    },
    /// BTER with the paper's γ = 1.9.
    Bter {
        /// Target maximum degree.
        max_degree: usize,
    },
    /// R-MAT with Graph500 quadrant probabilities.
    Rmat {
        /// log2 vertex count.
        scale: u32,
        /// Directed edges per vertex.
        edge_factor: usize,
    },
}

/// A named proxy matrix configuration, mirroring one row of Table 1.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct ProxyConfig {
    /// Matrix name as printed in the paper (proxy suffix added in reports).
    pub name: &'static str,
    /// Paper's row count (for EXPERIMENTS.md bookkeeping).
    pub paper_rows: usize,
    /// Paper's nonzero count.
    pub paper_nnz: usize,
    /// Paper's max nonzeros/row.
    pub paper_max_row: usize,
    /// Proxy row count.
    pub rows: usize,
    /// Proxy target nonzero count (realized count is slightly lower after
    /// duplicate collapse).
    pub target_nnz: usize,
    /// Generator and parameters.
    pub kind: ProxyKind,
    /// True when the paper used hypergraph partitioning (HP) for this
    /// matrix — the larger inputs where ParMETIS struggled (§5.2).
    pub use_hp: bool,
}

/// The ten matrices of the paper's Table 1, at proxy scale.
pub const PAPER_MATRICES: &[ProxyConfig] = &[
    ProxyConfig {
        name: "hollywood-2009",
        paper_rows: 1_100_000,
        paper_nnz: 114_000_000,
        paper_max_row: 12_000,
        rows: 17_188,
        target_nnz: 1_781_250,
        kind: ProxyKind::ChungLu {
            max_degree: 6_000,
            blocks: 600,
            locality: 0.45,
        },
        use_hp: false,
    },
    ProxyConfig {
        name: "com-orkut",
        paper_rows: 3_100_000,
        paper_nnz: 237_000_000,
        paper_max_row: 33_000,
        rows: 48_438,
        target_nnz: 3_703_125,
        // Orkut is a social network with pronounced community structure
        // (the paper's GP layouts exploit it heavily on this matrix).
        kind: ProxyKind::ChungLu {
            max_degree: 16_000,
            blocks: 2_500,
            locality: 0.40,
        },
        use_hp: false,
    },
    ProxyConfig {
        name: "cit-Patents",
        paper_rows: 3_800_000,
        paper_nnz: 37_000_000,
        paper_max_row: 1_000,
        rows: 59_375,
        target_nnz: 578_125,
        kind: ProxyKind::ChungLu {
            max_degree: 1_000,
            blocks: 2_000,
            locality: 0.35,
        },
        use_hp: false,
    },
    ProxyConfig {
        name: "com-liveJournal",
        paper_rows: 4_000_000,
        paper_nnz: 73_000_000,
        paper_max_row: 15_000,
        rows: 62_500,
        target_nnz: 1_140_625,
        kind: ProxyKind::ChungLu {
            max_degree: 15_000,
            blocks: 1_000,
            locality: 0.25,
        },
        use_hp: false,
    },
    ProxyConfig {
        name: "wb-edu",
        paper_rows: 9_800_000,
        paper_nnz: 102_000_000,
        paper_max_row: 26_000,
        rows: 153_125,
        target_nnz: 1_593_750,
        kind: ProxyKind::ChungLu {
            max_degree: 26_000,
            blocks: 5_000,
            locality: 0.80,
        },
        use_hp: false,
    },
    ProxyConfig {
        name: "uk-2005",
        paper_rows: 39_500_000,
        paper_nnz: 1_600_000_000,
        paper_max_row: 1_800_000,
        rows: 154_297,
        target_nnz: 6_250_000,
        // Max degree capped: 1.8M does not fit in a 154K-vertex proxy.
        kind: ProxyKind::ChungLu {
            max_degree: 70_000,
            blocks: 6_000,
            locality: 0.85,
        },
        use_hp: true,
    },
    ProxyConfig {
        name: "bter",
        paper_rows: 3_900_000,
        paper_nnz: 63_000_000,
        paper_max_row: 790_000,
        rows: 60_938,
        target_nnz: 984_375,
        kind: ProxyKind::Bter { max_degree: 20_000 },
        use_hp: false,
    },
    // R-MAT scales reduced 22/24/26 -> 16/18/20, keeping the x4 nnz steps
    // of the weak-scaling study. Edge factor 4 matches the paper's realized
    // average degree (~9) after symmetrization and dedup.
    ProxyConfig {
        name: "rmat_22",
        paper_rows: 4_200_000,
        paper_nnz: 38_000_000,
        paper_max_row: 60_000,
        rows: 65_536,
        target_nnz: 520_000,
        kind: ProxyKind::Rmat {
            scale: 16,
            edge_factor: 4,
        },
        use_hp: true,
    },
    ProxyConfig {
        name: "rmat_24",
        paper_rows: 16_800_000,
        paper_nnz: 151_000_000,
        paper_max_row: 147_000,
        rows: 262_144,
        target_nnz: 2_080_000,
        kind: ProxyKind::Rmat {
            scale: 18,
            edge_factor: 4,
        },
        use_hp: true,
    },
    ProxyConfig {
        name: "rmat_26",
        paper_rows: 67_100_000,
        paper_nnz: 604_000_000,
        paper_max_row: 359_000,
        rows: 1_048_576,
        target_nnz: 8_320_000,
        kind: ProxyKind::Rmat {
            scale: 20,
            edge_factor: 4,
        },
        use_hp: true,
    },
];

/// Looks up a proxy config by paper matrix name.
pub fn by_name(name: &str) -> Option<&'static ProxyConfig> {
    PAPER_MATRICES.iter().find(|c| c.name == name)
}

impl ProxyConfig {
    /// Shrinks the proxy a further `shrink`x below its default scale (rows
    /// and nonzeros both divided, preserving average degree). For R-MAT
    /// proxies `shrink` must be a power of 4 so the scale parameter drops by
    /// whole ×4-nnz steps and the weak-scaling ratios stay intact; other
    /// power-of-two shrinks are rounded down to the nearest power of 4.
    ///
    /// # Panics
    /// Panics if `shrink` is 0 or not a power of two.
    pub fn scaled(&self, shrink: usize) -> ProxyConfig {
        assert!(
            shrink >= 1 && shrink.is_power_of_two(),
            "shrink must be a power of two"
        );
        if shrink == 1 {
            return *self;
        }
        let mut cfg = *self;
        cfg.rows = (cfg.rows / shrink).max(64);
        cfg.target_nnz = (cfg.target_nnz / shrink).max(256);
        // Scale the community count along with the rows so the *block size*
        // (vertices per community) stays constant; otherwise small proxies
        // saturate their communities and silently lose most of their edges.
        if let ProxyKind::ChungLu {
            max_degree,
            blocks,
            locality,
        } = cfg.kind
        {
            cfg.kind = ProxyKind::ChungLu {
                max_degree,
                blocks: if blocks > 0 {
                    (blocks / shrink).max(8)
                } else {
                    0
                },
                locality,
            };
        }
        if let ProxyKind::Rmat { scale, edge_factor } = cfg.kind {
            let steps = (shrink.trailing_zeros() / 2).min(scale - 6);
            cfg.kind = ProxyKind::Rmat {
                scale: scale - 2 * steps,
                edge_factor,
            };
            cfg.rows = 1usize << (scale - 2 * steps);
            cfg.target_nnz = self.target_nnz >> (2 * steps);
        }
        cfg
    }
}

/// Generates the proxy matrix for a config. Deterministic in `seed`.
pub fn proxy_matrix(cfg: &ProxyConfig, seed: u64) -> CsrMatrix {
    match cfg.kind {
        ProxyKind::ChungLu {
            max_degree,
            blocks,
            locality,
        } => {
            let edges = cfg.target_nnz / 2;
            let weights = zipf_weights(cfg.rows, edges, max_degree.min(cfg.rows / 2));
            chung_lu(&weights, edges, blocks, locality, seed)
        }
        ProxyKind::Bter { max_degree } => {
            let b = BterConfig::paper(cfg.rows, max_degree.min(cfg.rows / 2));
            bter(&b, seed)
        }
        ProxyKind::Rmat { scale, edge_factor } => {
            let r = RmatConfig {
                edge_factor,
                ..RmatConfig::graph500(scale)
            };
            rmat(&r, seed)
        }
    }
}

/// Builds Zipf-shaped integer weights `w_i ∝ (i+1)^{-α}` over `n` vertices
/// such that the *expected realized maximum degree* when `m` Chung–Lu edges
/// are drawn, `2m · w_0 / Σw`, is approximately `target_max`. The shape
/// exponent α is found by bisection (the ratio `w_0/Σw` is monotone in α).
pub fn zipf_weights(n: usize, m: usize, target_max: usize) -> Vec<usize> {
    assert!(n >= 2 && m >= 1);
    let target = (target_max as f64).min(n as f64 - 1.0).max(1.0);
    let expected_max = |alpha: f64| -> f64 {
        let w0 = 1.0f64; // (0+1)^-alpha
        let sum: f64 = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).sum();
        2.0 * m as f64 * w0 / sum
    };
    let (mut lo, mut hi) = (1e-3f64, 0.999f64);
    // Clamp to the achievable band before bisecting.
    let t = target.clamp(expected_max(lo), expected_max(hi));
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if expected_max(mid) < t {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let alpha = 0.5 * (lo + hi);
    // Scale so the head weight maps to `target` and floor at 1 so every
    // vertex can appear.
    let sum: f64 = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).sum();
    let scale = 2.0 * m as f64 / sum;
    (0..n)
        .map(|i| ((((i + 1) as f64).powf(-alpha)) * scale).round().max(1.0) as usize)
        .collect()
}

/// Convenience: stats line for Table 1 printing.
pub fn table1_row(cfg: &ProxyConfig, a: &CsrMatrix) -> String {
    let s = DegreeStats::of(a);
    format!(
        "{:<16} {:>9} {:>11} {:>9} | paper: {:>9} {:>13} {:>9}",
        cfg.name, s.nrows, s.nnz, s.max_row_nnz, cfg.paper_rows, cfg.paper_nnz, cfg.paper_max_row
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::stats::looks_scale_free;

    #[test]
    fn all_names_unique_and_lookup_works() {
        let mut names: Vec<_> = PAPER_MATRICES.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PAPER_MATRICES.len());
        assert!(by_name("com-orkut").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn zipf_weights_hit_target_ratio() {
        let w = zipf_weights(10_000, 100_000, 2_000);
        let sum: usize = w.iter().sum();
        let expected_max = 2.0 * 100_000.0 * w[0] as f64 / sum as f64;
        assert!(
            (expected_max - 2_000.0).abs() / 2_000.0 < 0.25,
            "expected max {expected_max}"
        );
    }

    #[test]
    fn small_proxy_generation_matches_shape() {
        // Shrink cit-Patents by 16x to keep the test fast, preserving ratios.
        let cfg = ProxyConfig {
            rows: 59_375 / 16,
            target_nnz: 578_125 / 16,
            ..*by_name("cit-Patents").unwrap()
        };
        let a = proxy_matrix(&cfg, 1);
        assert_eq!(a.nrows(), cfg.rows);
        let nnz = a.nnz() as f64;
        assert!(nnz > 0.5 * cfg.target_nnz as f64, "nnz {nnz}");
        assert!(a.is_structurally_symmetric());
        assert!(looks_scale_free(&a));
    }

    #[test]
    fn rmat_proxy_dimensions() {
        let cfg = ProxyConfig {
            rows: 1 << 10,
            target_nnz: 8_000,
            kind: ProxyKind::Rmat {
                scale: 10,
                edge_factor: 4,
            },
            ..*by_name("rmat_22").unwrap()
        };
        let a = proxy_matrix(&cfg, 2);
        assert_eq!(a.nrows(), 1024);
    }

    #[test]
    fn proxies_are_deterministic() {
        let cfg = ProxyConfig {
            rows: 2_000,
            target_nnz: 20_000,
            ..*by_name("com-orkut").unwrap()
        };
        assert_eq!(proxy_matrix(&cfg, 9), proxy_matrix(&cfg, 9));
    }

    #[test]
    fn scaled_divides_sizes_and_respects_rmat_steps() {
        let orkut = by_name("com-orkut").unwrap().scaled(8);
        assert_eq!(orkut.rows, 48_438 / 8);
        assert_eq!(orkut.target_nnz, 3_703_125 / 8);
        // R-MAT: shrink 16 = 2^4 -> two x4 steps -> scale drops 16 -> 12.
        let r = by_name("rmat_22").unwrap().scaled(16);
        match r.kind {
            ProxyKind::Rmat { scale, .. } => assert_eq!(scale, 12),
            _ => panic!("kind changed"),
        }
        assert_eq!(r.rows, 1 << 12);
        // shrink 1 is identity.
        let same = by_name("bter").unwrap().scaled(1);
        assert_eq!(same.rows, by_name("bter").unwrap().rows);
    }

    #[test]
    fn web_proxies_have_high_locality_settings() {
        for name in ["wb-edu", "uk-2005"] {
            match by_name(name).unwrap().kind {
                ProxyKind::ChungLu {
                    locality, blocks, ..
                } => {
                    assert!(locality >= 0.5, "{name} locality");
                    assert!(blocks > 100, "{name} blocks");
                }
                _ => panic!("{name} should be ChungLu"),
            }
        }
    }
}
