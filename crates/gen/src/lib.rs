#![warn(missing_docs)]

//! # sf2d-gen
//!
//! Deterministic scale-free (and contrast) graph generators for the SC'13
//! reproduction:
//!
//! * [`rmat`](rmat()) — the R-MAT recursive generator with Graph500 parameters
//!   (`a=0.57, b=c=0.19, d=0.05`), used for the paper's `rmat_22/24/26`
//!   weak-scaling matrices;
//! * [`bter`](bter()) — Block Two-Level Erdős–Rényi (Seshadhri, Kolda, Pinar), the
//!   paper's `bter` matrix with power-law exponent γ = 1.9;
//! * [`chung_lu`](chung_lu()) — the Chung–Lu expected-degree model, our substitute
//!   engine for the UF/SNAP matrices we cannot download;
//! * [`pref`] — Barabási–Albert preferential attachment (the generator
//!   family Yoo et al. [34, 35] used);
//! * [`er`] — Erdős–Rényi `G(n, M)`;
//! * [`mesh`] — regular 2D/3D grids, the mesh-like contrast workload for
//!   which 1D graph partitioning is known to shine;
//! * [`proxy`] — named configurations reproducing each matrix of the
//!   paper's Table 1 at reduced scale.
//!
//! Every generator takes an explicit `u64` seed and is deterministic given
//! it (we use `ChaCha8Rng`, whose stream is stable across platforms and
//! releases, unlike `StdRng`).

pub mod bter;
pub mod chung_lu;
pub mod er;
pub mod mesh;
pub mod powerlaw;
pub mod pref;
pub mod proxy;
pub mod rmat;
mod util;

pub use bter::{bter, BterConfig};
pub use chung_lu::chung_lu;
pub use er::erdos_renyi;
pub use mesh::{grid_2d, grid_3d};
pub use powerlaw::powerlaw_degrees;
pub use pref::preferential_attachment;
pub use proxy::{proxy_matrix, ProxyConfig, ProxyKind, PAPER_MATRICES};
pub use rmat::{rmat, RmatConfig};
