//! Erdős–Rényi `G(n, M)` generator.
//!
//! Used directly in tests and as the within-block generator inside
//! [`bter`](crate::bter::bter). Degrees concentrate around `2M/n`, so ER graphs
//! are the *anti*-scale-free baseline: block layouts balance them well and
//! graph partitioners find little structure to exploit.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sf2d_graph::{CooMatrix, CsrMatrix, Vtx};

/// Generates a symmetric `G(n, M)` graph: `m` distinct undirected edges
/// drawn uniformly (no self-loops, no multi-edges).
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n(n-1)/2`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrMatrix {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "m = {m} exceeds max possible edges {max_edges}"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut coo = CooMatrix::with_capacity(n, n, 2 * m);
    // Rejection sampling is fine while m is far below max_edges; for dense
    // requests fall back to explicit enumeration to guarantee termination.
    if m * 3 < max_edges {
        while seen.len() < m {
            let u = rng.gen_range(0..n) as Vtx;
            let v = rng.gen_range(0..n) as Vtx;
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if seen.insert(key) {
                coo.push_sym(key.0, key.1, 1.0);
            }
        }
    } else {
        // Dense regime: Fisher-Yates over all possible edges.
        let mut all: Vec<(Vtx, Vtx)> = Vec::with_capacity(max_edges);
        for u in 0..n {
            for v in (u + 1)..n {
                all.push((u as Vtx, v as Vtx));
            }
        }
        for i in 0..m {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
            coo.push_sym(all[i].0, all[i].1, 1.0);
        }
    }
    CsrMatrix::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::stats::DegreeStats;

    #[test]
    fn exact_edge_count() {
        let a = erdos_renyi(100, 300, 11);
        assert_eq!(a.nnz(), 600);
        assert!(a.is_structurally_symmetric());
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(50, 100, 5), erdos_renyi(50, 100, 5));
        assert_ne!(erdos_renyi(50, 100, 5), erdos_renyi(50, 100, 6));
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let a = erdos_renyi(30, 200, 3);
        for i in 0..30 {
            assert_eq!(a.get(i, i as u32), None);
        }
        assert_eq!(a.nnz(), 400);
    }

    #[test]
    fn dense_regime_terminates() {
        // 10 vertices, 45 possible edges; ask for all of them.
        let a = erdos_renyi(10, 45, 1);
        assert_eq!(a.nnz(), 90);
        for i in 0..10usize {
            assert_eq!(a.row_nnz(i), 9);
        }
    }

    #[test]
    fn degrees_concentrate() {
        let a = erdos_renyi(2000, 20_000, 17);
        let s = DegreeStats::of(&a);
        // avg degree 20; ER max should stay within a small factor.
        assert!(s.skew < 3.0, "skew {}", s.skew);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn too_many_edges_rejected() {
        erdos_renyi(3, 10, 0);
    }
}
