//! Chung–Lu expected-degree random graphs.
//!
//! Given target degrees `w`, edges are sampled with
//! `P(u ~ v) ∝ w_u w_v` by drawing both endpoints from the alias table over
//! `w` — the "edge-skipping-free" formulation that costs `O(1)` per edge.
//! This is our substitute engine for the UF/SNAP matrices (see
//! [`proxy`](crate::proxy)): it reproduces a prescribed degree distribution,
//! which is the property of those graphs the paper's load-balance story
//! depends on, while remaining cheap and deterministic.
//!
//! An optional **community locality** layer plants `blocks` equally-sized
//! communities and biases a fraction `locality` of the edges to stay within
//! a community. Web crawls (wb-edu, uk-2005) have strong host locality that
//! graph partitioning exploits — the paper's §2.5 cites host-based
//! partitioning \[15\] — so web proxies set `locality > 0`.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sf2d_graph::{CooMatrix, CsrMatrix, Vtx};

use crate::util::AliasTable;

/// Generates a symmetric Chung–Lu graph over the given expected degrees.
///
/// `target_edges` undirected edges are attempted; self-loops and duplicate
/// edges are collapsed, so the realized count lands slightly below the
/// target (the standard Chung–Lu behaviour).
///
/// * `blocks` — number of planted communities (`0` or `1` disables the
///   locality layer).
/// * `locality` — fraction of edges forced within a community; `0.0` is the
///   classic Chung–Lu model. Within-community endpoints are re-drawn from
///   the community members' own weights.
pub fn chung_lu(
    degrees: &[usize],
    target_edges: usize,
    blocks: usize,
    locality: f64,
    seed: u64,
) -> CsrMatrix {
    let n = degrees.len();
    assert!(n >= 2, "need at least 2 vertices");
    assert!((0.0..=1.0).contains(&locality), "locality must be in [0,1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let weights: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();
    let global = AliasTable::new(&weights);

    // Per-block alias tables for the locality layer. Blocks are contiguous
    // vertex ranges (vertices are assigned round-robin so every block gets
    // a share of hubs: hubs come first in the sorted degree sequence).
    let use_blocks = blocks > 1 && locality > 0.0;
    let block_of = |v: usize| -> usize { v % blocks.max(1) };
    let block_tables: Vec<(Vec<u32>, AliasTable)> = if use_blocks {
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); blocks];
        for v in 0..n {
            members[block_of(v)].push(v as Vtx);
        }
        members
            .into_iter()
            .filter(|m| m.len() >= 2)
            .map(|m| {
                let w: Vec<f64> = m.iter().map(|&v| weights[v as usize].max(1e-9)).collect();
                let t = AliasTable::new(&w);
                (m, t)
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut coo = CooMatrix::with_capacity(n, n, 2 * target_edges);
    for _ in 0..target_edges {
        let (u, v) = if use_blocks && rng.gen::<f64>() < locality && !block_tables.is_empty() {
            // Pick a block proportional to its member count via global draw,
            // then sample both endpoints inside it.
            let pivot = global.sample(&mut rng) as usize;
            let b = block_of(pivot) % block_tables.len();
            let (members, table) = &block_tables[b];
            (
                members[table.sample(&mut rng) as usize],
                members[table.sample(&mut rng) as usize],
            )
        } else {
            (global.sample(&mut rng), global.sample(&mut rng))
        };
        if u != v {
            coo.push_sym(u, v, 1.0);
        }
    }
    let a = CsrMatrix::from_coo(&coo);
    // Collapse multi-edges to unit pattern.
    let mut unit = CooMatrix::with_capacity(n, n, a.nnz());
    for (r, c, _) in a.iter() {
        unit.push(r, c, 1.0);
    }
    CsrMatrix::from_coo(&unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::powerlaw_degrees;
    use sf2d_graph::stats::{looks_scale_free, DegreeStats};

    #[test]
    fn deterministic_and_symmetric() {
        let d = powerlaw_degrees(500, 2.0, 2, 50, 1);
        let a = chung_lu(&d, 2000, 0, 0.0, 7);
        let b = chung_lu(&d, 2000, 0, 0.0, 7);
        assert_eq!(a, b);
        assert!(a.is_structurally_symmetric());
    }

    #[test]
    fn powerlaw_degrees_produce_scale_free_graph() {
        let d = powerlaw_degrees(3000, 2.0, 2, 300, 2);
        let m: usize = d.iter().sum::<usize>() / 2;
        let a = chung_lu(&d, m, 0, 0.0, 3);
        assert!(looks_scale_free(&a), "{:?}", DegreeStats::of(&a));
    }

    #[test]
    fn hubs_get_high_degree() {
        // Vertex 0 has weight 100x the rest; its degree should dominate.
        let mut d = vec![2usize; 1000];
        d[0] = 200;
        let a = chung_lu(&d, 2000, 0, 0.0, 5);
        let s = DegreeStats::of(&a);
        assert_eq!(a.row_nnz(0), s.max_row_nnz);
        assert!(a.row_nnz(0) > 50);
    }

    #[test]
    fn locality_increases_within_block_edges() {
        let d = vec![4usize; 2000];
        let count_within = |a: &CsrMatrix, blocks: usize| -> f64 {
            let mut within = 0usize;
            let mut total = 0usize;
            for (r, c, _) in a.iter() {
                total += 1;
                if (r as usize) % blocks == (c as usize) % blocks {
                    within += 1;
                }
            }
            within as f64 / total as f64
        };
        let plain = chung_lu(&d, 4000, 8, 0.0, 11);
        let local = chung_lu(&d, 4000, 8, 0.9, 11);
        let f_plain = count_within(&plain, 8);
        let f_local = count_within(&local, 8);
        assert!(
            f_local > f_plain + 0.3,
            "locality had no effect: {f_plain} vs {f_local}"
        );
    }

    #[test]
    fn no_self_loops() {
        let d = vec![3usize; 100];
        let a = chung_lu(&d, 200, 0, 0.0, 13);
        for i in 0..100 {
            assert_eq!(a.get(i, i as u32), None);
        }
    }

    #[test]
    fn realized_edges_close_to_target_for_sparse_graphs() {
        let d = powerlaw_degrees(5000, 2.2, 2, 60, 4);
        let a = chung_lu(&d, 10_000, 0, 0.0, 9);
        let realized = a.nnz() / 2;
        assert!(realized > 9_000, "too many collisions: {realized}");
    }
}
