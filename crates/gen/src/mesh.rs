//! Regular grid meshes.
//!
//! The paper repeatedly contrasts scale-free graphs with "mesh-based
//! computations" where 1D graph partitioning excels and randomization is a
//! *poor* choice (§2.4). These generators supply that contrast for tests
//! and ablation benches: on a grid, 1D-GP should crush 1D-Random in
//! communication volume, while on R-MAT the gap narrows.

use sf2d_graph::{CooMatrix, CsrMatrix, Vtx};

/// 5-point-stencil 2D grid graph: vertices `(i, j)` for `i < nx`, `j < ny`,
/// edges to the 4 axis neighbours. Vertex `(i, j)` has index `i * ny + j`.
pub fn grid_2d(nx: usize, ny: usize) -> CsrMatrix {
    assert!(nx >= 1 && ny >= 1);
    let n = nx * ny;
    let id = |i: usize, j: usize| (i * ny + j) as Vtx;
    let mut coo = CooMatrix::with_capacity(n, n, 4 * n);
    for i in 0..nx {
        for j in 0..ny {
            if i + 1 < nx {
                coo.push_sym(id(i, j), id(i + 1, j), 1.0);
            }
            if j + 1 < ny {
                coo.push_sym(id(i, j), id(i, j + 1), 1.0);
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

/// 7-point-stencil 3D grid graph; vertex `(i, j, k)` has index
/// `(i * ny + j) * nz + k`.
pub fn grid_3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    assert!(nx >= 1 && ny >= 1 && nz >= 1);
    let n = nx * ny * nz;
    let id = |i: usize, j: usize, k: usize| ((i * ny + j) * nz + k) as Vtx;
    let mut coo = CooMatrix::with_capacity(n, n, 6 * n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                if i + 1 < nx {
                    coo.push_sym(id(i, j, k), id(i + 1, j, k), 1.0);
                }
                if j + 1 < ny {
                    coo.push_sym(id(i, j, k), id(i, j + 1, k), 1.0);
                }
                if k + 1 < nz {
                    coo.push_sym(id(i, j, k), id(i, j, k + 1), 1.0);
                }
            }
        }
    }
    CsrMatrix::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::stats::{looks_scale_free, DegreeStats};

    #[test]
    fn grid2d_structure() {
        let g = grid_2d(3, 4);
        assert_eq!(g.nrows(), 12);
        // Edges: 2*4 vertical + 3*3 horizontal... careful: (nx-1)*ny + nx*(ny-1).
        assert_eq!(g.nnz() / 2, 2 * 4 + 3 * 3);
        // Corner has degree 2, interior 4.
        assert_eq!(g.row_nnz(0), 2);
        let interior = 4 + 1; // (i=1, j=1)
        assert_eq!(g.row_nnz(interior), 4);
        assert!(g.is_structurally_symmetric());
    }

    #[test]
    fn grid3d_structure() {
        let g = grid_3d(3, 3, 3);
        assert_eq!(g.nrows(), 27);
        assert_eq!(g.nnz() / 2, 3 * (2 * 3 * 3));
        // Center vertex (1,1,1) has degree 6.
        assert_eq!(g.row_nnz((3 + 1) * 3 + 1), 6);
    }

    #[test]
    fn grids_are_not_scale_free() {
        assert!(!looks_scale_free(&grid_2d(20, 20)));
        let s = DegreeStats::of(&grid_2d(20, 20));
        assert!(s.skew < 1.5);
    }

    #[test]
    fn degenerate_grids() {
        let line = grid_2d(1, 5);
        assert_eq!(line.nnz() / 2, 4);
        let point = grid_3d(1, 1, 1);
        assert_eq!(point.nnz(), 0);
    }
}
