//! Property-based tests on generator invariants.

use proptest::prelude::*;
use sf2d_gen::{
    bter, chung_lu, erdos_renyi, powerlaw_degrees, preferential_attachment, rmat, BterConfig,
    RmatConfig,
};
use sf2d_graph::stats::DegreeStats;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// R-MAT output is always a valid loop-free symmetric unit-pattern
    /// matrix of the declared size, deterministic in its seed.
    #[test]
    fn rmat_invariants(scale in 4u32..9, ef in 1usize..6, seed in 0u64..200) {
        let cfg = RmatConfig { edge_factor: ef, ..RmatConfig::graph500(scale) };
        let a = rmat(&cfg, seed);
        prop_assert_eq!(a.nrows(), 1usize << scale);
        prop_assert!(a.is_structurally_symmetric());
        prop_assert!(a.values().iter().all(|&v| v == 1.0));
        for i in 0..a.nrows() {
            prop_assert_eq!(a.get(i, i as u32), None);
        }
        prop_assert_eq!(rmat(&cfg, seed), a);
    }

    /// Erdős–Rényi delivers the exact requested edge count.
    #[test]
    fn er_exact_edges(n in 4usize..60, frac in 0.05f64..0.9, seed in 0u64..200) {
        let max_edges = n * (n - 1) / 2;
        let m = ((max_edges as f64 * frac) as usize).max(1);
        let a = erdos_renyi(n, m, seed);
        prop_assert_eq!(a.nnz(), 2 * m);
        prop_assert!(a.is_structurally_symmetric());
    }

    /// Power-law degree sequences respect their bounds and have even sums.
    #[test]
    fn powerlaw_bounds(
        n in 10usize..500,
        gamma in 1.3f64..3.5,
        dmin in 1usize..4,
        extra in 1usize..50,
        seed in 0u64..100,
    ) {
        let dmax = dmin + extra;
        let d = powerlaw_degrees(n, gamma, dmin, dmax, seed);
        prop_assert_eq!(d.len(), n);
        prop_assert!(d.iter().all(|&x| x >= dmin.min(dmax) && x <= dmax + 1));
        prop_assert_eq!(d.iter().sum::<usize>() % 2, 0);
        // Sorted descending.
        prop_assert!(d.windows(2).all(|w| w[0] >= w[1]));
    }

    /// Chung–Lu never produces self loops and is deterministic.
    #[test]
    fn chung_lu_invariants(n in 8usize..80, m in 8usize..200, seed in 0u64..100) {
        let degs = vec![3usize; n];
        let a = chung_lu(&degs, m, 0, 0.0, seed);
        prop_assert!(a.is_structurally_symmetric());
        for i in 0..n {
            prop_assert_eq!(a.get(i, i as u32), None);
        }
        prop_assert_eq!(chung_lu(&degs, m, 0, 0.0, seed), a);
    }

    /// Preferential attachment: exact edge count and minimum degree m.
    #[test]
    fn pref_attachment_invariants(n in 10usize..120, m in 1usize..5, seed in 0u64..100) {
        prop_assume!(n > m + 1);
        let a = preferential_attachment(n, m, seed);
        let expect = m * (m + 1) / 2 + (n - m - 1) * m;
        prop_assert_eq!(a.nnz() / 2, expect);
        for i in 0..n {
            prop_assert!(a.row_nnz(i) >= m, "vertex {} degree {}", i, a.row_nnz(i));
        }
    }

    /// BTER stays within its declared dimensions and is loop-free.
    #[test]
    fn bter_invariants(n in 50usize..300, dmax in 5usize..40, seed in 0u64..50) {
        let a = bter(&BterConfig::paper(n, dmax), seed);
        prop_assert_eq!(a.nrows(), n);
        prop_assert!(a.is_structurally_symmetric());
        for i in 0..n {
            prop_assert_eq!(a.get(i, i as u32), None);
        }
        // Degrees bounded by the graph size.
        let s = DegreeStats::of(&a);
        prop_assert!(s.max_row_nnz < n);
    }
}
