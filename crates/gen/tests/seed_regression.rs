//! Generator determinism and distribution-shape regression tests.
//!
//! The experiment suite — and now the SpGEMM differential battery — leans
//! on two properties of the generators:
//!
//! 1. **Seed determinism**: the same (config, seed) must produce a
//!    byte-identical matrix on every run and platform, because golden
//!    results, differential oracles, and the partition caches all key off
//!    it. The vendored ChaCha8 RNG is bit-compatible with the upstream
//!    crate, so these assertions also pin that shim.
//! 2. **Distribution shape**: the scale-free generators must actually
//!    produce skewed degree sequences (that skew is *why* 1D layouts
//!    blow up and the paper's 2D layouts win), while ER must not.

use sf2d_gen::{chung_lu, erdos_renyi, powerlaw_degrees, rmat, RmatConfig};
use sf2d_graph::CsrMatrix;

/// Byte-level fingerprint of a CSR matrix: every structural array plus
/// the value bits.
fn fingerprint(a: &CsrMatrix) -> (Vec<usize>, Vec<u32>, Vec<u64>) {
    (
        a.rowptr().to_vec(),
        a.colidx().to_vec(),
        a.values().iter().map(|v| v.to_bits()).collect(),
    )
}

fn degrees(a: &CsrMatrix) -> Vec<usize> {
    (0..a.nrows()).map(|i| a.row_nnz(i)).collect()
}

/// Max/mean degree ratio — the crude skew signal that separates
/// scale-free graphs from ER at these sizes.
fn skew(a: &CsrMatrix) -> f64 {
    let d = degrees(a);
    let max = *d.iter().max().unwrap() as f64;
    let mean = d.iter().sum::<usize>() as f64 / d.len() as f64;
    max / mean
}

#[test]
fn same_seed_is_byte_identical_for_every_generator() {
    for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
        let r1 = rmat(&RmatConfig::graph500(8), seed);
        let r2 = rmat(&RmatConfig::graph500(8), seed);
        assert_eq!(fingerprint(&r1), fingerprint(&r2), "rmat seed {seed}");

        let degs = powerlaw_degrees(200, 2.3, 2, 50, seed);
        assert_eq!(
            degs,
            powerlaw_degrees(200, 2.3, 2, 50, seed),
            "powerlaw_degrees seed {seed}"
        );
        let c1 = chung_lu(&degs, 600, 0, 0.0, seed);
        let c2 = chung_lu(&degs, 600, 0, 0.0, seed);
        assert_eq!(fingerprint(&c1), fingerprint(&c2), "chung_lu seed {seed}");

        let e1 = erdos_renyi(200, 700, seed);
        let e2 = erdos_renyi(200, 700, seed);
        assert_eq!(fingerprint(&e1), fingerprint(&e2), "er seed {seed}");
    }
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        fingerprint(&rmat(&RmatConfig::graph500(8), 1)),
        fingerprint(&rmat(&RmatConfig::graph500(8), 2)),
        "rmat must depend on its seed"
    );
    let degs = powerlaw_degrees(200, 2.3, 2, 50, 7);
    assert_ne!(
        fingerprint(&chung_lu(&degs, 600, 0, 0.0, 1)),
        fingerprint(&chung_lu(&degs, 600, 0, 0.0, 2)),
        "chung_lu must depend on its seed"
    );
    assert_ne!(
        fingerprint(&erdos_renyi(200, 700, 1)),
        fingerprint(&erdos_renyi(200, 700, 2)),
        "er must depend on its seed"
    );
}

#[test]
fn powerlaw_degrees_have_the_requested_shape() {
    let n = 2000;
    let (dmin, dmax) = (2usize, 100usize);
    let d = powerlaw_degrees(n, 2.1, dmin, dmax, 9);
    assert_eq!(d.len(), n);
    assert!(d.iter().all(|&x| (dmin..=dmax).contains(&x)));
    // Heavy tail: a power law with gamma ~2 concentrates mass at dmin but
    // still produces high-degree vertices, and steeper gamma means a
    // lighter tail (smaller mean).
    assert!(d.iter().any(|&x| x >= dmax / 2), "tail never sampled");
    let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
    let at_floor = d.iter().filter(|&&x| x == dmin).count();
    assert!(
        at_floor * 3 > n,
        "gamma 2.1 should concentrate vertices at dmin; got {at_floor}/{n}"
    );
    let steep = powerlaw_degrees(n, 3.0, dmin, dmax, 9);
    assert!(
        mean(&steep) < mean(&d),
        "steeper gamma must lighten the tail: {} !< {}",
        mean(&steep),
        mean(&d)
    );
}

#[test]
fn scale_free_generators_are_skewed_and_er_is_not() {
    let r = rmat(&RmatConfig::graph500(10), 3);
    let degs = powerlaw_degrees(1024, 2.2, 2, 120, 3);
    let c = chung_lu(&degs, 4096, 0, 0.0, 3);
    let e = erdos_renyi(1024, 4096, 3);

    assert!(skew(&r) > 4.0, "rmat skew {} too flat", skew(&r));
    assert!(skew(&c) > 4.0, "chung_lu skew {} too flat", skew(&c));
    assert!(skew(&e) < 4.0, "er skew {} too peaked", skew(&e));

    // Chung–Lu realized degrees should track the prescribed weights:
    // the max-weight vertex must land well above the mean.
    let realized = degrees(&c);
    let hub = degs
        .iter()
        .enumerate()
        .max_by_key(|(_, &w)| w)
        .map(|(i, _)| i)
        .unwrap();
    let mean = realized.iter().sum::<usize>() as f64 / realized.len() as f64;
    assert!(
        realized[hub] as f64 > 2.0 * mean,
        "hub degree {} not above 2x mean {mean}",
        realized[hub]
    );
}
