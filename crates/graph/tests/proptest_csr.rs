//! Property-based tests for the core sparse-matrix invariants.

use proptest::prelude::*;
use sf2d_graph::io::binary;
use sf2d_graph::{CooMatrix, CsrMatrix, Permutation};

/// Strategy: a random COO matrix with dims up to 24x24 and up to 96 entries
/// (duplicates allowed, so `from_coo` duplicate-merging is exercised).
fn coo_strategy() -> impl Strategy<Value = CooMatrix> {
    (1usize..24, 1usize..24).prop_flat_map(|(nr, nc)| {
        proptest::collection::vec((0..nr as u32, 0..nc as u32, -100.0f64..100.0), 0..96).prop_map(
            move |entries| {
                let mut coo = CooMatrix::new(nr, nc);
                for (r, c, v) in entries {
                    coo.push(r, c, v);
                }
                coo
            },
        )
    })
}

/// Strategy: a random square symmetric matrix.
fn sym_strategy() -> impl Strategy<Value = CsrMatrix> {
    (2usize..20).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0.5f64..2.0), 0..64).prop_map(
            move |entries| {
                let mut coo = CooMatrix::new(n, n);
                for (r, c, v) in entries {
                    coo.push_sym(r, c, v);
                }
                CsrMatrix::from_coo(&coo)
            },
        )
    })
}

proptest! {
    /// CSR construction preserves the sum of all values per (row, col) cell.
    #[test]
    fn from_coo_sums_duplicates(coo in coo_strategy()) {
        let m = CsrMatrix::from_coo(&coo);
        // Accumulate expected sums with a hash map oracle.
        let mut expect = std::collections::HashMap::new();
        for (r, c, v) in coo.iter() {
            *expect.entry((r, c)).or_insert(0.0) += v;
        }
        prop_assert_eq!(m.nnz(), expect.len());
        for ((r, c), v) in expect {
            let got = m.get(r as usize, c).unwrap();
            prop_assert!((got - v).abs() <= 1e-9 * (1.0 + v.abs()));
        }
    }

    /// Transposing twice is the identity.
    #[test]
    fn transpose_involution(coo in coo_strategy()) {
        let m = CsrMatrix::from_coo(&coo);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// (Aᵀ)x via transpose equals manual column-wise accumulation.
    #[test]
    fn transpose_spmv_consistent(coo in coo_strategy()) {
        let m = CsrMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..m.nrows()).map(|i| (i % 5) as f64 - 2.0).collect();
        let y_t = m.transpose().spmv_dense(&x);
        // Oracle: y_t[j] = sum_i a_ij x_i.
        let mut oracle = vec![0.0; m.ncols()];
        for (r, c, v) in m.iter() {
            oracle[c as usize] += v * x[r as usize];
        }
        for (a, b) in y_t.iter().zip(&oracle) {
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
        }
    }

    /// A + Aᵀ is numerically symmetric for any square matrix.
    #[test]
    fn plus_transpose_symmetric(n in 1usize..16, entries in proptest::collection::vec((0u32..16, 0u32..16, -10.0f64..10.0), 0..64)) {
        let mut coo = CooMatrix::new(n, n);
        for (r, c, v) in entries {
            if (r as usize) < n && (c as usize) < n {
                coo.push(r, c, v);
            }
        }
        let m = CsrMatrix::from_coo(&coo);
        let s = m.plus_transpose().unwrap();
        prop_assert!(s.is_numerically_symmetric(1e-12));
    }

    /// Binary serialization round-trips exactly.
    #[test]
    fn binary_roundtrip(coo in coo_strategy()) {
        let m = CsrMatrix::from_coo(&coo);
        let back = binary::from_bytes(binary::to_bytes(&m)).unwrap();
        prop_assert_eq!(back, m);
    }

    /// Permute then inverse-permute restores the matrix, and permutation
    /// commutes with SpMV: P(Ax) = (PᵀAP)(Px).
    #[test]
    fn permutation_consistency(m in sym_strategy(), seed in 0u64..1000) {
        let n = m.nrows();
        // Derive a deterministic permutation from the seed.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        for i in (1..n).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let j = (s % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let p = Permutation::from_vec(perm).unwrap();
        let b = p.permute_matrix(&m).unwrap();
        let back = p.inverse().permute_matrix(&b).unwrap();
        prop_assert_eq!(&back, &m);

        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let lhs = p.permute_vec(&m.spmv_dense(&x));
        let rhs = b.spmv_dense(&p.permute_vec(&x));
        for (a, bb) in lhs.iter().zip(&rhs) {
            prop_assert!((a - bb).abs() <= 1e-9 * (1.0 + bb.abs()));
        }
    }

    /// Matrix Market round-trip preserves the matrix.
    #[test]
    fn matrix_market_roundtrip(coo in coo_strategy()) {
        let m = CsrMatrix::from_coo(&coo);
        let mut buf = Vec::new();
        sf2d_graph::io::write_matrix_market(&m, &mut buf).unwrap();
        let back = sf2d_graph::io::read_matrix_market(buf.as_slice()).unwrap();
        prop_assert_eq!(back.nrows(), m.nrows());
        prop_assert_eq!(back.nnz(), m.nnz());
        for (r, c, v) in m.iter() {
            let got = back.get(r as usize, c).unwrap();
            prop_assert!((got - v).abs() <= 1e-12 * (1.0 + v.abs()));
        }
    }
}
