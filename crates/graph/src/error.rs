//! Error type shared by the graph crate.

use std::fmt;

/// Errors arising from matrix construction and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// An entry's row or column index is outside the declared dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: u64,
        /// Column index of the offending entry.
        col: u64,
        /// Declared number of rows.
        nrows: usize,
        /// Declared number of columns.
        ncols: usize,
    },
    /// A file did not parse as the expected format.
    Parse {
        /// 1-based line number where parsing failed, if known.
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// An operation required a square matrix but got a rectangular one.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// Dimension mismatch between two operands.
    DimensionMismatch {
        /// What the caller was doing.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) outside matrix dimensions {nrows} x {ncols}"
            ),
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::NotSquare { nrows, ncols } => {
                write!(
                    f,
                    "operation requires a square matrix, got {nrows} x {ncols}"
                )
            }
            GraphError::DimensionMismatch {
                context,
                expected,
                actual,
            } => {
                write!(f, "{context}: expected dimension {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::IndexOutOfBounds {
            row: 7,
            col: 9,
            nrows: 4,
            ncols: 4,
        };
        let s = e.to_string();
        assert!(s.contains("(7, 9)"));
        assert!(s.contains("4 x 4"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn parse_error_mentions_line() {
        let e = GraphError::Parse {
            line: 42,
            msg: "bad token".into(),
        };
        assert!(e.to_string().contains("line 42"));
    }
}
