#![warn(missing_docs)]
// Loops that index several parallel arrays at once are clearer as range
// loops than as the zipped-iterator rewrites clippy suggests.
#![allow(clippy::needless_range_loop)]

//! # sf2d-graph
//!
//! Sparse-matrix and graph data structures underpinning the SC'13 paper
//! *"Scalable Matrix Computations on Large Scale-Free Graphs Using 2D Graph
//! Partitioning"* (Boman, Devine, Rajamanickam).
//!
//! The paper treats a graph and its (symmetric) adjacency matrix
//! interchangeably; so does this crate. The central type is [`CsrMatrix`],
//! a compressed-sparse-row matrix with `u32` column indices and `f64`
//! values, built from [`CooMatrix`] triplet lists. Graph-flavoured views
//! and operations (degrees, neighbours, Laplacians) live alongside the
//! matrix-flavoured ones (SpMV, transpose, permutation).
//!
//! ## Quick tour
//!
//! ```
//! use sf2d_graph::{CooMatrix, CsrMatrix};
//!
//! // The 4-cycle as an undirected graph / symmetric sparse matrix.
//! let mut coo = CooMatrix::new(4, 4);
//! for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
//!     coo.push_sym(u, v, 1.0);
//! }
//! let a = CsrMatrix::from_coo(&coo);
//! assert_eq!(a.nnz(), 8);
//! assert!(a.is_structurally_symmetric());
//!
//! let y = a.spmv_dense(&[1.0; 4]);
//! assert_eq!(y, vec![2.0; 4]); // every vertex has degree 2
//! ```

pub mod algorithms;
pub mod coo;
pub mod csr;
pub mod error;
pub mod graph;
pub mod io;
pub mod laplacian;
pub mod ops;
pub mod permute;
pub mod reorder;
pub mod spgemm;
pub mod stats;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use error::GraphError;
pub use graph::Graph;
pub use laplacian::{adjacency_to_pagerank, combinatorial_laplacian, normalized_laplacian};
pub use permute::Permutation;
pub use spgemm::{spgemm, spgemm_flops, spgemm_numeric, spgemm_symbolic};
pub use stats::DegreeStats;

/// Vertex / row / column index type.
///
/// The paper's largest graph (uk-2005) has 39.5M rows; our proxies are far
/// smaller, and `u32` halves index memory vs `usize` — SpMV is memory-bound,
/// so this matters (see the Rust Performance Book's "Type Sizes" chapter).
pub type Vtx = u32;

/// Nonzero value type. The paper times SpMV on doubles ("number of doubles
/// sent" is its communication-volume unit), so we fix `f64`.
pub type Val = f64;
