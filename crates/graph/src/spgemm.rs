//! Serial sparse matrix-matrix multiplication (SpGEMM) — the correctness
//! oracle for the distributed kernel in `sf2d-spgemm`.
//!
//! The algorithm is row-wise Gustavson with the classic symbolic/numeric
//! split: [`spgemm_symbolic`] computes the pattern of `C = A·B` (row
//! pointers plus sorted column indices), [`spgemm_numeric`] fills the
//! values for a known pattern, and [`spgemm`] runs both. Both passes use a
//! sparse accumulator (SPA) over the column space of `B`, stamped by a
//! generation counter so it never needs clearing between rows.
//!
//! Determinism contract: for each output row `i` the accumulation visits
//! `A`'s row-`i` entries in ascending column order `j`, and within each
//! `j` walks `B`'s row `j` in ascending column order — the exact per-entry
//! order the distributed kernel reproduces per rank, which is what makes
//! the differential suite's bitwise comparison meaningful.

use crate::{CsrMatrix, Val, Vtx};

/// The sparsity pattern of `C = A·B`: CSR row pointers and sorted column
/// indices, no values.
///
/// # Panics
/// Panics if `a.ncols() != b.nrows()`.
pub fn spgemm_symbolic(a: &CsrMatrix, b: &CsrMatrix) -> (Vec<usize>, Vec<Vtx>) {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "spgemm: inner dimensions disagree ({} vs {})",
        a.ncols(),
        b.nrows()
    );
    let mut rowptr = Vec::with_capacity(a.nrows() + 1);
    rowptr.push(0usize);
    let mut colidx: Vec<Vtx> = Vec::new();

    // SPA over B's column space: `stamp[k] == gen` marks column k as seen
    // in the current row, so resetting between rows is one integer bump.
    let mut stamp = vec![0u32; b.ncols()];
    let mut gen = 0u32;
    let mut touched: Vec<Vtx> = Vec::new();

    for i in 0..a.nrows() {
        gen += 1;
        touched.clear();
        let (acols, _) = a.row(i);
        for &j in acols {
            let (bcols, _) = b.row(j as usize);
            for &k in bcols {
                if stamp[k as usize] != gen {
                    stamp[k as usize] = gen;
                    touched.push(k);
                }
            }
        }
        touched.sort_unstable();
        colidx.extend_from_slice(&touched);
        rowptr.push(colidx.len());
    }
    (rowptr, colidx)
}

/// The values of `C = A·B` for a pattern previously computed by
/// [`spgemm_symbolic`] on the same pair. Values come out aligned with
/// `colidx` (row-major, sorted within each row).
///
/// # Panics
/// Panics if the pattern does not cover some product term — i.e. it was
/// not produced by [`spgemm_symbolic`] on this `(a, b)`.
pub fn spgemm_numeric(a: &CsrMatrix, b: &CsrMatrix, rowptr: &[usize], colidx: &[Vtx]) -> Vec<Val> {
    assert_eq!(a.ncols(), b.nrows(), "spgemm: inner dimensions disagree");
    assert_eq!(rowptr.len(), a.nrows() + 1, "pattern rowptr length");
    let mut values = vec![0.0; colidx.len()];

    // Dense scatter positions for the current row: `pos[k]` is the slot of
    // column k within the row's pattern, valid when `stamp[k] == gen`.
    let mut pos = vec![0usize; b.ncols()];
    let mut stamp = vec![0u32; b.ncols()];
    let mut gen = 0u32;

    for i in 0..a.nrows() {
        gen += 1;
        let (lo, hi) = (rowptr[i], rowptr[i + 1]);
        for (slot, &k) in colidx[lo..hi].iter().enumerate() {
            pos[k as usize] = lo + slot;
            stamp[k as usize] = gen;
        }
        let (acols, avals) = a.row(i);
        for (&j, &aij) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(j as usize);
            for (&k, &bjk) in bcols.iter().zip(bvals) {
                assert_eq!(stamp[k as usize], gen, "pattern misses ({i}, {k})");
                values[pos[k as usize]] += aij * bjk;
            }
        }
    }
    values
}

/// Serial Gustavson SpGEMM `C = A·B` — symbolic then numeric pass.
///
/// # Panics
/// Panics if `a.ncols() != b.nrows()`.
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    let (rowptr, colidx) = spgemm_symbolic(a, b);
    let values = spgemm_numeric(a, b, &rowptr, &colidx);
    CsrMatrix::from_parts(a.nrows(), b.ncols(), rowptr, colidx, values)
        .expect("spgemm output satisfies CSR invariants by construction")
}

/// Multiply-add flops of `C = A·B` under the simulator's 2-flops-per-term
/// accounting: `2 · Σ_{(i,j) ∈ A} nnz(B_j)` — the same number the
/// distributed kernel bills to [`Phase::Multiply`], summed over ranks.
///
/// [`Phase::Multiply`]: ../../sf2d_sim/cost/enum.Phase.html
pub fn spgemm_flops(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    assert_eq!(a.ncols(), b.nrows(), "spgemm: inner dimensions disagree");
    (0..a.nrows())
        .map(|i| {
            let (acols, _) = a.row(i);
            acols
                .iter()
                .map(|&j| 2 * b.row_nnz(j as usize) as u64)
                .sum::<u64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn dense_product(a: &CsrMatrix, b: &CsrMatrix) -> Vec<Vec<Val>> {
        let mut c = vec![vec![0.0; b.ncols()]; a.nrows()];
        for (i, j, v) in a.iter() {
            for (jj, k, w) in b.iter() {
                if j == jj {
                    c[i as usize][k as usize] += v * w;
                }
            }
        }
        c
    }

    fn small(nrows: usize, ncols: usize, entries: &[(u32, u32, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(nrows, ncols, entries.len());
        for &(i, j, v) in entries {
            coo.push(i, j, v);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn matches_dense_product_on_rectangular_matrices() {
        let a = small(3, 4, &[(0, 0, 2.0), (0, 3, -1.0), (1, 1, 4.0), (2, 2, 0.5)]);
        let b = small(
            4,
            2,
            &[
                (0, 0, 1.0),
                (0, 1, 3.0),
                (1, 0, -2.0),
                (3, 1, 5.0),
                (2, 0, 7.0),
            ],
        );
        let c = spgemm(&a, &b);
        assert_eq!(c.nrows(), 3);
        assert_eq!(c.ncols(), 2);
        let want = dense_product(&a, &b);
        for i in 0..3 {
            for k in 0..2u32 {
                assert_eq!(c.get(i, k).unwrap_or(0.0), want[i][k as usize], "({i},{k})");
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = small(4, 4, &[(0, 1, 1.5), (1, 3, -2.0), (3, 0, 4.0), (2, 2, 9.0)]);
        let i4 = CsrMatrix::identity(4);
        assert_eq!(spgemm(&a, &i4), a);
        assert_eq!(spgemm(&i4, &a), a);
    }

    #[test]
    fn symbolic_pattern_is_sorted_and_matches_numeric_length() {
        let a = small(3, 3, &[(0, 0, 1.0), (0, 2, 1.0), (1, 1, 1.0), (2, 0, 1.0)]);
        let b = small(3, 3, &[(0, 1, 1.0), (2, 1, 1.0), (2, 2, 1.0), (1, 0, 1.0)]);
        let (rowptr, colidx) = spgemm_symbolic(&a, &b);
        assert_eq!(rowptr.len(), 4);
        assert_eq!(*rowptr.last().unwrap(), colidx.len());
        for i in 0..3 {
            let row = &colidx[rowptr[i]..rowptr[i + 1]];
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {i} unsorted");
        }
        // Row 0 hits columns of B-rows 0 and 2: {1} ∪ {1, 2} = {1, 2}
        // (the overlap on column 1 must collapse in the pattern).
        assert_eq!(&colidx[rowptr[0]..rowptr[1]], &[1, 2]);
        let values = spgemm_numeric(&a, &b, &rowptr, &colidx);
        assert_eq!(values.len(), colidx.len());
        assert_eq!(values[0], 2.0, "overlapping terms must sum");
    }

    #[test]
    fn transpose_identity_holds() {
        let a = small(3, 4, &[(0, 1, 2.0), (1, 0, -1.0), (2, 3, 3.0), (1, 2, 4.0)]);
        let b = small(4, 3, &[(0, 0, 1.0), (1, 2, -2.0), (3, 1, 5.0), (2, 2, 6.0)]);
        let lhs = spgemm(&a, &b).transpose();
        let rhs = spgemm(&b.transpose(), &a.transpose());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn empty_rows_and_columns_survive() {
        // Row 1 of A empty, column 0 of B untouched.
        let a = small(3, 3, &[(0, 2, 1.0), (2, 2, 2.0)]);
        let b = small(3, 2, &[(2, 1, 3.0)]);
        let c = spgemm(&a, &b);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.row_nnz(1), 0);
        assert_eq!(c.get(0, 1), Some(3.0));
        assert_eq!(c.get(2, 1), Some(6.0));
    }

    #[test]
    fn flops_count_every_product_term() {
        let a = small(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0)]);
        let b = small(2, 2, &[(0, 0, 1.0), (1, 0, 1.0), (1, 1, 1.0)]);
        // Row 0: terms via j=0 (1 nnz) + j=1 (2 nnz); row 1: j=1 (2 nnz).
        assert_eq!(spgemm_flops(&a, &b), 2 * (1 + 2 + 2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn dimension_mismatch_is_rejected() {
        let a = small(2, 3, &[(0, 0, 1.0)]);
        let b = small(2, 2, &[(0, 0, 1.0)]);
        spgemm(&a, &b);
    }
}
