//! Graph Laplacians and the PageRank (Google) matrix.
//!
//! The paper's eigensolver experiments (§5.3) target the **normalized
//! Laplacian** `L̂ = I − D^{−1/2} A D^{−1/2}`, whose ten largest eigenpairs
//! reveal near-bipartite subgraphs (Kirkland & Paul \[23\]). PageRank (§1) is
//! the power method on the Google matrix built from the web-link adjacency.

use crate::{CooMatrix, CsrMatrix, GraphError, Val, Vtx};

/// Builds the normalized Laplacian `L̂ = I − D^{−1/2} A D^{−1/2}` of a
/// symmetric adjacency matrix `A` (self-loops ignored).
///
/// `D` is the diagonal degree matrix, `d_ii = Σ_j |pattern a_ij|` counted on
/// the loop-free pattern. Isolated vertices get `L̂_ii = 1` (the `I` term)
/// and no off-diagonals, the standard convention.
///
/// Eigenvalues of `L̂` lie in `[0, 2]`; the value 2 is attained iff a
/// connected component is bipartite.
pub fn normalized_laplacian(a: &CsrMatrix) -> Result<CsrMatrix, GraphError> {
    if a.nrows() != a.ncols() {
        return Err(GraphError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let adj = a.without_diagonal();
    let n = adj.nrows();
    let inv_sqrt_deg: Vec<Val> = (0..n)
        .map(|i| {
            let d = adj.row_nnz(i);
            if d == 0 {
                0.0
            } else {
                1.0 / (d as Val).sqrt()
            }
        })
        .collect();

    let mut coo = CooMatrix::with_capacity(n, n, adj.nnz() + n);
    for i in 0..n {
        coo.push(i as Vtx, i as Vtx, 1.0);
        let (cols, _) = adj.row(i);
        for &j in cols {
            coo.push(i as Vtx, j, -inv_sqrt_deg[i] * inv_sqrt_deg[j as usize]);
        }
    }
    Ok(CsrMatrix::from_coo(&coo))
}

/// Builds the combinatorial Laplacian `L = D − A` (pattern-based, self-loops
/// ignored). Its smallest nonzero eigenvalue is the algebraic connectivity.
pub fn combinatorial_laplacian(a: &CsrMatrix) -> Result<CsrMatrix, GraphError> {
    if a.nrows() != a.ncols() {
        return Err(GraphError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let adj = a.without_diagonal();
    let n = adj.nrows();
    let mut coo = CooMatrix::with_capacity(n, n, adj.nnz() + n);
    for i in 0..n {
        let d = adj.row_nnz(i);
        coo.push(i as Vtx, i as Vtx, d as Val);
        let (cols, _) = adj.row(i);
        for &j in cols {
            coo.push(i as Vtx, j, -1.0);
        }
    }
    Ok(CsrMatrix::from_coo(&coo))
}

/// Builds the column-stochastic PageRank transition matrix
/// `P = A_colnorm` from a (possibly directed) link matrix, where
/// `a_ij ≠ 0` means a link `j → i` contributes to page `i`'s rank.
///
/// Dangling columns (pages with no out-links) are left all-zero; the power
/// method in `sf2d-eigen::power` redistributes their mass uniformly, the
/// standard PageRank fix, so `P` itself stays as sparse as `A`.
pub fn adjacency_to_pagerank(a: &CsrMatrix) -> Result<CsrMatrix, GraphError> {
    if a.nrows() != a.ncols() {
        return Err(GraphError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    // Column sums = out-degrees.
    let mut colsum = vec![0.0; a.ncols()];
    for (_, c, v) in a.iter() {
        colsum[c as usize] += v.abs();
    }
    let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz());
    for (r, c, v) in a.iter() {
        let s = colsum[c as usize];
        if s > 0.0 {
            coo.push(r, c, v.abs() / s);
        }
    }
    Ok(CsrMatrix::from_coo(&coo))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push_sym(i as Vtx, (i + 1) as Vtx, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn normalized_laplacian_of_edge() {
        // Single edge: L̂ = [[1, -1], [-1, 1]], eigenvalues {0, 2}.
        let a = path_graph(2);
        let l = normalized_laplacian(&a).unwrap();
        assert_eq!(l.get(0, 0), Some(1.0));
        assert_eq!(l.get(0, 1), Some(-1.0));
        assert_eq!(l.get(1, 0), Some(-1.0));
        assert_eq!(l.get(1, 1), Some(1.0));
    }

    #[test]
    fn normalized_laplacian_rows_annihilate_sqrt_degree() {
        // L̂ D^{1/2} 1 = 0 for any graph: check on a path of 5.
        let a = path_graph(5);
        let l = normalized_laplacian(&a).unwrap();
        let adj = a.without_diagonal();
        let sqrt_deg: Vec<f64> = (0..5).map(|i| (adj.row_nnz(i) as f64).sqrt()).collect();
        let y = l.spmv_dense(&sqrt_deg);
        for v in y {
            assert!(v.abs() < 1e-12, "residual {v}");
        }
    }

    #[test]
    fn normalized_laplacian_handles_isolated_vertices() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_sym(0, 1, 1.0); // vertex 2 isolated
        let a = CsrMatrix::from_coo(&coo);
        let l = normalized_laplacian(&a).unwrap();
        assert_eq!(l.get(2, 2), Some(1.0));
        assert_eq!(l.row_nnz(2), 1);
    }

    #[test]
    fn normalized_laplacian_ignores_self_loops() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 5.0);
        coo.push_sym(0, 1, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let l = normalized_laplacian(&a).unwrap();
        assert_eq!(l.get(0, 1), Some(-1.0)); // degree 1, loop ignored
    }

    #[test]
    fn combinatorial_laplacian_row_sums_zero() {
        let a = path_graph(6);
        let l = combinatorial_laplacian(&a).unwrap();
        let y = l.spmv_dense(&[1.0; 6]);
        for v in y {
            assert!(v.abs() < 1e-12);
        }
        assert_eq!(l.get(0, 0), Some(1.0));
        assert_eq!(l.get(1, 1), Some(2.0));
    }

    #[test]
    fn pagerank_matrix_is_column_stochastic() {
        // Directed triangle plus a dangling node 3.
        let mut coo = CooMatrix::new(4, 4);
        coo.push(1, 0, 1.0);
        coo.push(2, 1, 1.0);
        coo.push(0, 2, 1.0);
        coo.push(3, 2, 1.0); // 2 links to both 0 and 3
        let a = CsrMatrix::from_coo(&coo);
        let p = adjacency_to_pagerank(&a).unwrap();
        let mut colsum = [0.0; 4];
        for (_, c, v) in p.iter() {
            assert!(v > 0.0);
            colsum[c as usize] += v;
        }
        assert!((colsum[0] - 1.0).abs() < 1e-12);
        assert!((colsum[1] - 1.0).abs() < 1e-12);
        assert!((colsum[2] - 1.0).abs() < 1e-12);
        assert_eq!(colsum[3], 0.0); // dangling column left empty
        assert_eq!(p.get(0, 2), Some(0.5));
    }

    #[test]
    fn rectangular_inputs_rejected() {
        let coo = CooMatrix::new(2, 3);
        let a = CsrMatrix::from_coo(&coo);
        assert!(normalized_laplacian(&a).is_err());
        assert!(combinatorial_laplacian(&a).is_err());
        assert!(adjacency_to_pagerank(&a).is_err());
    }
}
