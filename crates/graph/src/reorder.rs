//! Bandwidth-reducing reordering: reverse Cuthill–McKee (RCM).
//!
//! Block layouts assign *consecutive* rows to a rank, so their
//! communication volume depends entirely on how much locality the row
//! ordering happens to have. RCM maximizes that locality for a fixed
//! ordering-based layout; the `ablations` harness compares natural vs RCM
//! vs partitioned orderings to separate "ordering luck" from genuine
//! partitioning quality.

use crate::algorithms::pseudo_peripheral_vertex;
use crate::{CsrMatrix, Permutation, Vtx};

/// Computes the reverse Cuthill–McKee ordering of a symmetric pattern.
/// Returns a [`Permutation`] with `perm[old] = new`.
///
/// Within each BFS level, vertices are visited in increasing-degree order
/// (the Cuthill–McKee rule); the final order is reversed. Disconnected
/// components are processed in order of their smallest vertex id.
pub fn rcm(a: &CsrMatrix) -> Permutation {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "RCM needs a square matrix");
    let mut order: Vec<Vtx> = Vec::with_capacity(n);
    let mut seen = vec![false; n];

    let degree = |v: Vtx| a.row_nnz(v as usize);

    for s in 0..n as Vtx {
        if seen[s as usize] {
            continue;
        }
        // Start each component from a pseudo-peripheral vertex.
        let start = pseudo_peripheral_vertex(a, s);
        // Degree-sorted BFS from `start`.
        let mut queue: std::collections::VecDeque<Vtx> = std::collections::VecDeque::new();
        if !seen[start as usize] {
            seen[start as usize] = true;
            queue.push_back(start);
        }
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let (nbrs, _) = a.row(u as usize);
            let mut next: Vec<Vtx> = nbrs
                .iter()
                .copied()
                .filter(|&v| !seen[v as usize])
                .collect();
            next.sort_by_key(|&v| (degree(v), v));
            for v in next {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
        // `start` might differ from `s`; make sure s's component is fully
        // covered (it is: pseudo_peripheral stays within the component, and
        // the BFS floods it).
        if !seen[s as usize] {
            seen[s as usize] = true;
            order.push(s);
        }
    }

    order.reverse();
    // order[k] = old vertex at new position k  =>  perm[old] = new.
    let mut perm = vec![0 as Vtx; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as Vtx;
    }
    Permutation::from_vec(perm).expect("RCM produces a permutation")
}

/// Matrix bandwidth: `max |i - j|` over nonzeros. What RCM minimizes
/// (heuristically).
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut bw = 0usize;
    for (i, j, _) in a.iter() {
        bw = bw.max((i as i64 - j as i64).unsigned_abs() as usize);
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn rcm_reduces_bandwidth_of_a_shuffled_path() {
        // A path relabeled badly: bandwidth n-ish; RCM restores ~1.
        let n = 40;
        let relabel = |v: usize| ((v * 17) % n) as Vtx;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push_sym(relabel(i), relabel(i + 1), 1.0);
        }
        let a = CsrMatrix::from_coo(&coo);
        let before = bandwidth(&a);
        let p = rcm(&a);
        let b = p.permute_matrix(&a).unwrap();
        let after = bandwidth(&b);
        assert!(after <= 2, "bandwidth {before} -> {after}");
    }

    #[test]
    fn rcm_is_a_permutation_for_disconnected_graphs() {
        let mut coo = CooMatrix::new(7, 7);
        coo.push_sym(0, 1, 1.0);
        coo.push_sym(3, 4, 1.0);
        coo.push_sym(4, 5, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let p = rcm(&a);
        assert_eq!(p.len(), 7);
        // Applying it twice round-trips.
        let b = p.permute_matrix(&a).unwrap();
        let back = p.inverse().permute_matrix(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn rcm_on_grid_beats_random_labelling() {
        use crate::stats::DegreeStats;
        // 8x8 grid with scrambled labels.
        let nx = 8;
        let n = nx * nx;
        let scramble = |v: usize| ((v * 37 + 11) % n) as Vtx;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..nx {
            for j in 0..nx {
                let id = i * nx + j;
                if i + 1 < nx {
                    coo.push_sym(scramble(id), scramble(id + nx), 1.0);
                }
                if j + 1 < nx {
                    coo.push_sym(scramble(id), scramble(id + 1), 1.0);
                }
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let _ = DegreeStats::of(&a);
        let before = bandwidth(&a);
        let after = bandwidth(&rcm(&a).permute_matrix(&a).unwrap());
        assert!(after < before / 2, "{before} -> {after}");
        assert!(after >= nx - 1, "grid bandwidth cannot beat nx-1");
    }

    #[test]
    fn empty_and_single() {
        let a = CsrMatrix::from_coo(&CooMatrix::new(0, 0));
        assert_eq!(rcm(&a).len(), 0);
        let b = CsrMatrix::from_coo(&CooMatrix::new(1, 1));
        assert_eq!(rcm(&b).apply(0), 0);
    }
}
