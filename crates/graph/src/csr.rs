//! Compressed sparse row (CSR) matrices.
//!
//! CSR is the storage format used for the local blocks in the paper's
//! Epetra-based implementation (`Epetra_CrsMatrix`) and is what our
//! distributed matrix stores per rank. Rows are sorted by column index and
//! duplicate entries are summed at construction, so the structure can be
//! binary-searched and compared.

use crate::{CooMatrix, GraphError, Val, Vtx};

/// A sparse `nrows x ncols` matrix in compressed sparse row format.
///
/// Invariants (upheld by every constructor, checked by `debug_validate`):
/// * `rowptr.len() == nrows + 1`, `rowptr[0] == 0`, non-decreasing,
///   `rowptr[nrows] == colidx.len() == values.len()`;
/// * within each row, column indices are strictly increasing (sorted,
///   no duplicates) and `< ncols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<Vtx>,
    values: Vec<Val>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from triplets, summing duplicates.
    ///
    /// Runs in `O(nnz + nrows)` time using a two-pass counting sort on rows
    /// followed by a per-row sort — no global comparison sort of the
    /// triplets is needed.
    pub fn from_coo(coo: &CooMatrix) -> CsrMatrix {
        let nrows = coo.nrows();
        let ncols = coo.ncols();

        // Pass 1: count entries per row.
        let mut rowptr = vec![0usize; nrows + 1];
        for &r in &coo.rows {
            rowptr[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            rowptr[i + 1] += rowptr[i];
        }

        // Pass 2: scatter into row buckets.
        let nnz_dup = coo.len();
        let mut colidx = vec![0 as Vtx; nnz_dup];
        let mut values = vec![0.0; nnz_dup];
        let mut next = rowptr.clone();
        for ((&r, &c), &v) in coo.rows.iter().zip(&coo.cols).zip(&coo.vals) {
            let slot = next[r as usize];
            colidx[slot] = c;
            values[slot] = v;
            next[r as usize] += 1;
        }

        // Pass 3: sort each row by column and merge duplicates in place.
        let mut write = 0usize;
        let mut new_rowptr = vec![0usize; nrows + 1];
        let mut scratch: Vec<(Vtx, Val)> = Vec::new();
        for row in 0..nrows {
            let (lo, hi) = (rowptr[row], rowptr[row + 1]);
            scratch.clear();
            scratch.extend(
                colidx[lo..hi]
                    .iter()
                    .copied()
                    .zip(values[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut v) = scratch[i];
                i += 1;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                colidx[write] = c;
                values[write] = v;
                write += 1;
            }
            new_rowptr[row + 1] = write;
        }
        colidx.truncate(write);
        values.truncate(write);
        colidx.shrink_to_fit();
        values.shrink_to_fit();

        let m = CsrMatrix {
            nrows,
            ncols,
            rowptr: new_rowptr,
            colidx,
            values,
        };
        m.debug_validate();
        m
    }

    /// Builds a CSR matrix directly from its parts.
    ///
    /// Returns an error if the invariants listed on [`CsrMatrix`] do not
    /// hold. Use this for trusted, already-sorted data (e.g. deserialized
    /// matrices) to skip the COO detour.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<Vtx>,
        values: Vec<Val>,
    ) -> Result<CsrMatrix, GraphError> {
        if rowptr.len() != nrows + 1 || rowptr.first() != Some(&0) {
            return Err(GraphError::Parse {
                line: 0,
                msg: format!(
                    "rowptr length {} does not match nrows {}",
                    rowptr.len(),
                    nrows
                ),
            });
        }
        if colidx.len() != values.len() || rowptr[nrows] != colidx.len() {
            return Err(GraphError::Parse {
                line: 0,
                msg: "rowptr/colidx/values lengths inconsistent".into(),
            });
        }
        for row in 0..nrows {
            if rowptr[row] > rowptr[row + 1] || rowptr[row + 1] > colidx.len() {
                return Err(GraphError::Parse {
                    line: 0,
                    msg: format!("rowptr invalid at row {row}"),
                });
            }
            let cols = &colidx[rowptr[row]..rowptr[row + 1]];
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(GraphError::Parse {
                        line: 0,
                        msg: format!("row {row} columns not strictly increasing"),
                    });
                }
            }
            if let Some(&last) = cols.last() {
                if last as usize >= ncols {
                    return Err(GraphError::IndexOutOfBounds {
                        row: row as u64,
                        col: last as u64,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        })
    }

    /// An `n x n` identity matrix.
    pub fn identity(n: usize) -> CsrMatrix {
        CsrMatrix {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colidx: (0..n as Vtx).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// The row-pointer array (`nrows + 1` entries).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// All column indices, row-major.
    #[inline]
    pub fn colidx(&self) -> &[Vtx] {
        &self.colidx
    }

    /// All values, row-major.
    #[inline]
    pub fn values(&self) -> &[Val] {
        &self.values
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[Vtx], &[Val]) {
        let (lo, hi) = (self.rowptr[i], self.rowptr[i + 1]);
        (&self.colidx[lo..hi], &self.values[lo..hi])
    }

    /// Number of nonzeros in row `i` (the degree of vertex `i` for an
    /// adjacency matrix with no self loops).
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// The value at `(i, j)`, or `None` when the entry is structurally zero.
    pub fn get(&self, i: usize, j: Vtx) -> Option<Val> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&j).ok().map(|k| vals[k])
    }

    /// Iterates over `(row, col, value)` for every stored entry.
    pub fn iter(&self) -> impl Iterator<Item = (Vtx, Vtx, Val)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals.iter())
                .map(move |(&c, &v)| (i as Vtx, c, v))
        })
    }

    /// Converts back to a triplet list (entries emitted in CSR order).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v);
        }
        coo
    }

    /// Returns the transpose `Aᵀ` as a new matrix.
    ///
    /// Linear time via counting sort on columns; the result's rows are
    /// automatically sorted because we scan `self` in row-major order.
    pub fn transpose(&self) -> CsrMatrix {
        let mut rowptr = vec![0usize; self.ncols + 1];
        for &c in &self.colidx {
            rowptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colidx = vec![0 as Vtx; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = rowptr.clone();
        for (r, c, v) in self.iter() {
            let slot = next[c as usize];
            colidx[slot] = r;
            values[slot] = v;
            next[c as usize] += 1;
        }
        let t = CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rowptr,
            colidx,
            values,
        };
        t.debug_validate();
        t
    }

    /// Returns `A + Aᵀ`.
    ///
    /// The paper symmetrizes every unsymmetric input this way ("for
    /// unsymmetric matrices A, we constructed the symmetric matrix as
    /// A + Aᵀ", §5.1). Requires a square matrix.
    pub fn plus_transpose(&self) -> Result<CsrMatrix, GraphError> {
        if self.nrows != self.ncols {
            return Err(GraphError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, 2 * self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v);
            coo.push(c, r, v);
        }
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// True when the sparsity *pattern* is symmetric (values may differ).
    pub fn is_structurally_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        self.iter()
            .all(|(r, c, _)| self.get(c as usize, r).is_some())
    }

    /// True when `A == Aᵀ` up to `tol` in each entry.
    pub fn is_numerically_symmetric(&self, tol: Val) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        self.iter().all(|(r, c, v)| {
            self.get(c as usize, r)
                .map(|w| (v - w).abs() <= tol)
                .unwrap_or(false)
        })
    }

    /// Returns a copy with all diagonal entries removed.
    ///
    /// Self-loops are meaningless for the graph Laplacian, so proxies strip
    /// them before analysis.
    pub fn without_diagonal(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for (r, c, v) in self.iter() {
            if r != c {
                coo.push(r, c, v);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    /// The diagonal as a dense vector (structural zeros become `0.0`).
    pub fn diagonal(&self) -> Vec<Val> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i as Vtx).unwrap_or(0.0))
            .collect()
    }

    /// Dense sequential SpMV `y = A x`; the correctness oracle for the
    /// distributed implementation.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols`.
    pub fn spmv_dense(&self, x: &[Val]) -> Vec<Val> {
        let mut y = vec![0.0; self.nrows];
        self.spmv_dense_into(x, &mut y);
        y
    }

    /// [`spmv_dense`](CsrMatrix::spmv_dense) into a caller-provided output
    /// buffer — the allocation-free form the distributed SpMV workspaces
    /// use. Overwrites `y` entirely.
    ///
    /// # Panics
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn spmv_dense_into(&self, x: &[Val], y: &mut [Val]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            // Manual accumulation: the autovectorizer handles this fine and
            // we avoid the bounds checks an index-based loop would pay.
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            y[i] = acc;
        }
    }

    /// Maximum number of nonzeros in any row (the "Max nonzeros/row" column
    /// of the paper's Table 1).
    pub fn max_row_nnz(&self) -> usize {
        (0..self.nrows).map(|i| self.row_nnz(i)).max().unwrap_or(0)
    }

    /// Checks all structural invariants; debug builds only.
    #[inline]
    pub fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        {
            assert_eq!(self.rowptr.len(), self.nrows + 1);
            assert_eq!(self.rowptr[0], 0);
            assert_eq!(*self.rowptr.last().unwrap(), self.colidx.len());
            assert_eq!(self.colidx.len(), self.values.len());
            for i in 0..self.nrows {
                assert!(self.rowptr[i] <= self.rowptr[i + 1]);
                let (cols, _) = self.row(i);
                for w in cols.windows(2) {
                    assert!(w[0] < w[1], "row {i} not sorted/deduped");
                }
                if let Some(&last) = cols.last() {
                    assert!((last as usize) < self.ncols);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 1 2 0 ]
        // [ 0 0 3 ]
        // [ 4 0 5 ]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 2, 5.0);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn from_coo_sorts_rows_and_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 4);
        coo.push(0, 3, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(0, 3, 4.0); // duplicate of (0,3)
        coo.push(1, 0, -1.0);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), (&[1, 3][..], &[2.0, 5.0][..]));
        assert_eq!(m.row(1), (&[0][..], &[-1.0][..]));
    }

    #[test]
    fn get_finds_entries_and_zeros() {
        let m = small();
        assert_eq!(m.get(0, 1), Some(2.0));
        assert_eq!(m.get(1, 0), None);
        assert_eq!(m.get(2, 2), Some(5.0));
    }

    #[test]
    fn spmv_matches_hand_computation() {
        let m = small();
        let y = m.spmv_dense(&[1.0, 10.0, 100.0]);
        assert_eq!(y, vec![21.0, 300.0, 504.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = small();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_entries() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.get(0, 2), Some(4.0));
        assert_eq!(t.get(2, 1), Some(3.0));
        assert_eq!(t.get(1, 0), Some(2.0));
    }

    #[test]
    fn plus_transpose_is_symmetric() {
        let m = small();
        let s = m.plus_transpose().unwrap();
        assert!(s.is_structurally_symmetric());
        assert!(s.is_numerically_symmetric(0.0));
        assert_eq!(s.get(0, 0), Some(2.0)); // diagonal doubled
        assert_eq!(s.get(0, 2), Some(4.0));
        assert_eq!(s.get(2, 0), Some(4.0));
    }

    #[test]
    fn symmetry_checks_detect_asymmetry() {
        let m = small();
        assert!(!m.is_structurally_symmetric());
        assert!(!m.is_numerically_symmetric(1e-12));
    }

    #[test]
    fn without_diagonal_strips_loops() {
        let m = small();
        let d = m.without_diagonal();
        assert_eq!(d.nnz(), 3); // (0,1), (1,2), (2,0) survive

        assert_eq!(d.get(0, 0), None);
        assert_eq!(d.get(0, 1), Some(2.0));
    }

    #[test]
    fn diagonal_extraction() {
        let m = small();
        assert_eq!(m.diagonal(), vec![1.0, 0.0, 5.0]);
    }

    #[test]
    fn identity_behaves() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        let x = vec![3.0, -1.0, 0.5, 9.0];
        assert_eq!(i.spmv_dense(&x), x);
    }

    #[test]
    fn max_row_nnz_and_row_nnz() {
        let m = small();
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 1);
        assert_eq!(m.max_row_nnz(), 2);
    }

    #[test]
    fn from_parts_validates() {
        // Valid.
        let ok = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(ok.is_ok());
        // Unsorted row.
        let bad = CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
        assert!(bad.is_err());
        // Column out of range.
        let bad = CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(bad.is_err());
        // rowptr wrong length.
        let bad = CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(bad.is_err());
    }

    #[test]
    fn to_coo_roundtrip() {
        let m = small();
        let back = CsrMatrix::from_coo(&m.to_coo());
        assert_eq!(back, m);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let coo = CooMatrix::new(0, 0);
        let m = CsrMatrix::from_coo(&coo);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.spmv_dense(&[]), Vec::<f64>::new());
    }
}
