//! Basic graph algorithms: BFS and connected components.
//!
//! Used by the reordering module (RCM is BFS-based), by proxy validation
//! (a proxy that shatters into fragments would distort partitioning
//! results), and by examples.

use std::collections::VecDeque;

use crate::{CsrMatrix, Vtx};

/// Breadth-first order over the pattern of a symmetric matrix, starting at
/// `start`; unreachable vertices are appended afterwards in index order (so
/// the result is always a permutation-ready full ordering).
pub fn bfs_order(a: &CsrMatrix, start: Vtx) -> Vec<Vtx> {
    let n = a.nrows();
    assert!((start as usize) < n, "start vertex out of range");
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();

    queue.push_back(start);
    seen[start as usize] = true;
    while let Some(u) = queue.pop_front() {
        order.push(u);
        let (nbrs, _) = a.row(u as usize);
        for &v in nbrs {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    for v in 0..n as Vtx {
        if !seen[v as usize] {
            order.push(v);
        }
    }
    order
}

/// Connected components of a symmetric pattern. Returns `(labels, count)`
/// with labels in `0..count`, numbered by first appearance.
pub fn connected_components(a: &CsrMatrix) -> (Vec<u32>, usize) {
    let n = a.nrows();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = count;
        stack.push(s as Vtx);
        while let Some(u) = stack.pop() {
            let (nbrs, _) = a.row(u as usize);
            for &v in nbrs {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Size of the largest connected component.
pub fn largest_component_size(a: &CsrMatrix) -> usize {
    let (labels, count) = connected_components(a);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// Global clustering coefficient: `3 x triangles / wedges` (a.k.a.
/// transitivity). Scale-free models differ sharply here — BTER's whole
/// point is matching it while Chung–Lu and R-MAT produce near-zero values
/// at equal density.
pub fn clustering_coefficient(a: &CsrMatrix) -> f64 {
    let n = a.nrows();
    let mut triangles = 0usize;
    let mut wedges = 0usize;
    for u in 0..n {
        let (nbrs, _) = a.row(u);
        let d = nbrs.len();
        wedges += d * d.saturating_sub(1) / 2;
        for (i, &v) in nbrs.iter().enumerate() {
            for &w in &nbrs[i + 1..] {
                if a.get(v as usize, w).is_some() {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    }
}

/// Eccentricity-ish heuristic: runs BFS twice to find a pseudo-peripheral
/// vertex (standard starting point for RCM).
pub fn pseudo_peripheral_vertex(a: &CsrMatrix, start: Vtx) -> Vtx {
    let mut v = start;
    let mut last_level = 0usize;
    // Two BFS sweeps usually suffice; cap at 4 for safety.
    for _ in 0..4 {
        let (far, level) = bfs_farthest(a, v);
        if level <= last_level {
            break;
        }
        last_level = level;
        v = far;
    }
    v
}

/// Farthest vertex from `start` (within its component) and its BFS depth.
fn bfs_farthest(a: &CsrMatrix, start: Vtx) -> (Vtx, usize) {
    let n = a.nrows();
    let mut depth = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    depth[start as usize] = 0;
    queue.push_back(start);
    let mut far = start;
    let mut far_depth = 0usize;
    while let Some(u) = queue.pop_front() {
        let du = depth[u as usize];
        if du > far_depth {
            far_depth = du;
            far = u;
        }
        let (nbrs, _) = a.row(u as usize);
        for &v in nbrs {
            if depth[v as usize] == usize::MAX {
                depth[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    (far, far_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn path(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push_sym(i as Vtx, (i + 1) as Vtx, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn bfs_visits_in_level_order() {
        let a = path(5);
        assert_eq!(bfs_order(&a, 2), vec![2, 1, 3, 0, 4]);
        assert_eq!(bfs_order(&a, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_appends_unreachable() {
        // Two disconnected edges: 0-1 and 2-3.
        let mut coo = CooMatrix::new(4, 4);
        coo.push_sym(0, 1, 1.0);
        coo.push_sym(2, 3, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let order = bfs_order(&a, 0);
        assert_eq!(order.len(), 4);
        assert_eq!(&order[..2], &[0, 1]);
    }

    #[test]
    fn components_counted() {
        let mut coo = CooMatrix::new(6, 6);
        coo.push_sym(0, 1, 1.0);
        coo.push_sym(1, 2, 1.0);
        coo.push_sym(3, 4, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let (labels, count) = connected_components(&a);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(largest_component_size(&a), 3);
    }

    #[test]
    fn peripheral_vertex_of_path_is_an_end() {
        let a = path(9);
        let v = pseudo_peripheral_vertex(&a, 4);
        assert!(v == 0 || v == 8, "got {v}");
    }

    #[test]
    fn clustering_of_triangle_and_path() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_sym(0, 1, 1.0);
        coo.push_sym(1, 2, 1.0);
        coo.push_sym(0, 2, 1.0);
        let tri = CsrMatrix::from_coo(&coo);
        assert!((clustering_coefficient(&tri) - 1.0).abs() < 1e-12);
        assert_eq!(clustering_coefficient(&path(4)), 0.0);
    }

    #[test]
    fn fully_connected_is_one_component() {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                coo.push_sym(i, j, 1.0);
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        assert_eq!(connected_components(&a).1, 1);
    }
}
