//! Degree statistics and power-law diagnostics.
//!
//! Used to (a) print the paper's Table 1 (rows, nonzeros, max nonzeros/row)
//! and (b) verify that generated proxy graphs actually are scale-free — the
//! property the entire evaluation hinges on.

use crate::CsrMatrix;

/// Summary statistics of a matrix's row-nonzero (degree) distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of rows (vertices).
    pub nrows: usize,
    /// Number of stored nonzeros (2x the undirected edge count).
    pub nnz: usize,
    /// Maximum nonzeros in any row — the paper's "Max nonzeros/row".
    pub max_row_nnz: usize,
    /// Mean nonzeros per row.
    pub avg_row_nnz: f64,
    /// Number of empty rows (isolated vertices).
    pub empty_rows: usize,
    /// Ratio max/avg: >> 1 signals power-law skew. Mesh-like graphs sit
    /// near 1; the paper's graphs range from ~27 (cit-Patents) to ~45,000
    /// (uk-2005).
    pub skew: f64,
}

impl DegreeStats {
    /// Computes statistics for a matrix.
    pub fn of(a: &CsrMatrix) -> DegreeStats {
        let nrows = a.nrows();
        let nnz = a.nnz();
        let mut max = 0usize;
        let mut empty = 0usize;
        for i in 0..nrows {
            let d = a.row_nnz(i);
            max = max.max(d);
            if d == 0 {
                empty += 1;
            }
        }
        let avg = if nrows == 0 {
            0.0
        } else {
            nnz as f64 / nrows as f64
        };
        DegreeStats {
            nrows,
            nnz,
            max_row_nnz: max,
            avg_row_nnz: avg,
            empty_rows: empty,
            skew: if avg > 0.0 { max as f64 / avg } else { 0.0 },
        }
    }
}

/// Degree histogram: `hist[d]` = number of rows with exactly `d` nonzeros.
pub fn degree_histogram(a: &CsrMatrix) -> Vec<usize> {
    let mut hist = vec![0usize; a.max_row_nnz() + 1];
    for i in 0..a.nrows() {
        hist[a.row_nnz(i)] += 1;
    }
    hist
}

/// Estimates the power-law exponent `γ` of the degree distribution by the
/// discrete maximum-likelihood (Hill) estimator over degrees `>= dmin`:
///
/// `γ̂ = 1 + m / Σ ln(d_i / (dmin − 1/2))`.
///
/// Returns `None` when fewer than 10 vertices have degree `>= dmin` — too
/// few for the estimate to mean anything.
pub fn powerlaw_exponent_mle(a: &CsrMatrix, dmin: usize) -> Option<f64> {
    assert!(dmin >= 1, "dmin must be at least 1");
    let mut m = 0usize;
    let mut logsum = 0.0;
    let denom = dmin as f64 - 0.5;
    for i in 0..a.nrows() {
        let d = a.row_nnz(i);
        if d >= dmin {
            m += 1;
            logsum += (d as f64 / denom).ln();
        }
    }
    if m < 10 || logsum <= 0.0 {
        return None;
    }
    Some(1.0 + m as f64 / logsum)
}

/// True when the degree distribution is "scale-free-like": skew well above
/// mesh levels. The threshold 4.0 separates every scale-free graph in the
/// paper's Table 1 (min skew ≈ 27) from regular meshes (skew ≈ 1).
pub fn looks_scale_free(a: &CsrMatrix) -> bool {
    DegreeStats::of(a).skew > 4.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    /// Star graph: hub 0 connected to 1..n.
    fn star(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n + 1, n + 1);
        for i in 1..=n {
            coo.push_sym(0, i as u32, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    /// Cycle graph on n vertices (2-regular).
    fn cycle(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push_sym(i as u32, ((i + 1) % n) as u32, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn stats_of_star() {
        let s = DegreeStats::of(&star(10));
        assert_eq!(s.nrows, 11);
        assert_eq!(s.nnz, 20);
        assert_eq!(s.max_row_nnz, 10);
        assert_eq!(s.empty_rows, 0);
        assert!(s.skew > 5.0);
    }

    #[test]
    fn stats_of_cycle_has_unit_skew() {
        let s = DegreeStats::of(&cycle(16));
        assert_eq!(s.max_row_nnz, 2);
        assert!((s.avg_row_nnz - 2.0).abs() < 1e-12);
        assert!((s.skew - 1.0).abs() < 1e-12);
        assert!(!looks_scale_free(&cycle(16)));
    }

    #[test]
    fn star_looks_scale_free() {
        assert!(looks_scale_free(&star(100)));
    }

    #[test]
    fn histogram_counts_all_rows() {
        let h = degree_histogram(&star(5));
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[1], 5); // five leaves
        assert_eq!(h[5], 1); // one hub
    }

    #[test]
    fn empty_matrix_stats() {
        let a = CsrMatrix::from_coo(&CooMatrix::new(0, 0));
        let s = DegreeStats::of(&a);
        assert_eq!(s.nrows, 0);
        assert_eq!(s.avg_row_nnz, 0.0);
        assert_eq!(s.skew, 0.0);
    }

    #[test]
    fn mle_rejects_tiny_samples() {
        assert!(powerlaw_exponent_mle(&star(5), 2).is_none());
    }

    #[test]
    fn mle_estimates_powerlaw_tail() {
        // Construct a graph with a deliberate power-law-ish degree sequence:
        // many degree-2 rows, fewer high-degree rows via nested stars.
        // Check the estimator returns a finite, plausible exponent (1.5..4).
        let mut coo = CooMatrix::new(2000, 2000);
        let mut next = 100u32;
        // 100 hubs with degree ~ proportional to 1/rank.
        for hub in 0..100u32 {
            let deg = (1000 / (hub + 1)).max(2);
            for _ in 0..deg {
                if (next as usize) < 2000 {
                    coo.push_sym(hub, next, 1.0);
                    next += 1;
                } else {
                    next = 100;
                }
            }
        }
        let a = CsrMatrix::from_coo(&coo);
        let gamma = powerlaw_exponent_mle(&a, 2).unwrap();
        assert!(gamma > 1.0 && gamma < 6.0, "gamma = {gamma}");
    }
}
