//! Compact binary CSR container.
//!
//! Generated proxy matrices are expensive to rebuild for every benchmark
//! invocation; this module serializes a [`CsrMatrix`] to a little-endian
//! binary blob with a magic header, using the `bytes` crate for buffer
//! management.
//!
//! Layout (all little-endian):
//! ```text
//! magic   : 8 bytes  = b"SF2DCSR1"
//! nrows   : u64
//! ncols   : u64
//! nnz     : u64
//! rowptr  : (nrows + 1) x u64
//! colidx  : nnz x u32
//! values  : nnz x f64
//! ```

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{CsrMatrix, GraphError, Vtx};

const MAGIC: &[u8; 8] = b"SF2DCSR1";

/// Serializes a matrix into an owned byte buffer.
pub fn to_bytes(a: &CsrMatrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + 8 * (a.nrows() + 1) + 12 * a.nnz());
    buf.put_slice(MAGIC);
    buf.put_u64_le(a.nrows() as u64);
    buf.put_u64_le(a.ncols() as u64);
    buf.put_u64_le(a.nnz() as u64);
    for &p in a.rowptr() {
        buf.put_u64_le(p as u64);
    }
    for &c in a.colidx() {
        buf.put_u32_le(c);
    }
    for &v in a.values() {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Deserializes a matrix from a byte buffer, validating all invariants.
pub fn from_bytes(mut buf: impl Buf) -> Result<CsrMatrix, GraphError> {
    let fail = |msg: &str| GraphError::Parse {
        line: 0,
        msg: msg.into(),
    };
    if buf.remaining() < 32 {
        return Err(fail("truncated header"));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let nrows = buf.get_u64_le() as usize;
    let ncols = buf.get_u64_le() as usize;
    let nnz = buf.get_u64_le() as usize;
    let need = 8 * (nrows + 1) + 12 * nnz;
    if buf.remaining() < need {
        return Err(fail("truncated body"));
    }
    let mut rowptr = Vec::with_capacity(nrows + 1);
    for _ in 0..=nrows {
        rowptr.push(buf.get_u64_le() as usize);
    }
    let mut colidx: Vec<Vtx> = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        colidx.push(buf.get_u32_le());
    }
    let mut values = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        values.push(buf.get_f64_le());
    }
    CsrMatrix::from_parts(nrows, ncols, rowptr, colidx, values)
}

/// Writes a matrix to any `Write` sink in the binary format.
pub fn write_binary_csr<W: Write>(a: &CsrMatrix, mut writer: W) -> Result<(), GraphError> {
    writer.write_all(&to_bytes(a))?;
    writer.flush()?;
    Ok(())
}

/// Reads a matrix from any `Read` source in the binary format.
pub fn read_binary_csr<R: Read>(mut reader: R) -> Result<CsrMatrix, GraphError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    from_bytes(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(5, 7);
        coo.push(0, 6, 1.5);
        coo.push(2, 0, -2.0);
        coo.push(4, 3, 1e-300);
        coo.push(4, 4, f64::MAX);
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn roundtrip_bytes() {
        let m = sample();
        let back = from_bytes(to_bytes(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn roundtrip_io() {
        let m = sample();
        let mut buf = Vec::new();
        write_binary_csr(&m, &mut buf).unwrap();
        let back = read_binary_csr(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut data = to_bytes(&sample()).to_vec();
        data[0] = b'X';
        assert!(from_bytes(Bytes::from(data)).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let data = to_bytes(&sample());
        for cut in [0, 10, 31, data.len() - 1] {
            assert!(
                from_bytes(data.slice(..cut)).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn rejects_corrupted_structure() {
        let m = sample();
        let mut data = to_bytes(&m).to_vec();
        // Corrupt rowptr[1] to a huge value: from_parts must reject it.
        let off = 32 + 8;
        data[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(from_bytes(Bytes::from(data)).is_err());
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = CsrMatrix::from_coo(&CooMatrix::new(0, 0));
        assert_eq!(from_bytes(to_bytes(&m)).unwrap(), m);
    }
}
