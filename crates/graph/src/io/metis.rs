//! METIS graph-file format.
//!
//! The format ParMETIS (the paper's partitioner) consumes: first line
//! `nv ne [fmt [ncon]]`, then one line per vertex listing its neighbours
//! (1-based). We support plain graphs (`fmt` absent or `0`), vertex
//! weights (`fmt = 10`), and edge weights (`fmt = 1` / `11`), matching the
//! format manual's common cases.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::{CooMatrix, CsrMatrix, Graph, GraphError, Vtx};

/// Reads a METIS graph file into a [`Graph`].
pub fn read_metis<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    // Header (skip % comments).
    let header = loop {
        match lines.next() {
            Some(l) => {
                lineno += 1;
                let l = l?;
                let t = l.trim().to_string();
                if !t.is_empty() && !t.starts_with('%') {
                    break t;
                }
            }
            None => {
                return Err(GraphError::Parse {
                    line: lineno,
                    msg: "empty file".into(),
                })
            }
        }
    };
    let head: Vec<u64> = header
        .split_whitespace()
        .map(|t| t.parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|e| GraphError::Parse {
            line: lineno,
            msg: format!("bad header: {e}"),
        })?;
    if head.len() < 2 {
        return Err(GraphError::Parse {
            line: lineno,
            msg: "header needs nv ne".into(),
        });
    }
    let (nv, ne) = (head[0] as usize, head[1] as usize);
    let fmt = head.get(2).copied().unwrap_or(0);
    let has_vwgt = fmt / 10 % 10 == 1;
    let has_ewgt = fmt % 10 == 1;
    let ncon = head.get(3).copied().unwrap_or(1) as usize;
    if has_vwgt && ncon != 1 {
        return Err(GraphError::Parse {
            line: lineno,
            msg: format!("only ncon = 1 supported, got {ncon}"),
        });
    }

    let mut coo = CooMatrix::with_capacity(nv, nv, 2 * ne);
    let mut vwgt: Vec<i64> = Vec::with_capacity(nv);
    let mut v = 0usize;
    for l in lines {
        lineno += 1;
        let l = l?;
        let t = l.trim();
        if t.starts_with('%') {
            continue;
        }
        if v >= nv {
            if t.is_empty() {
                continue;
            }
            return Err(GraphError::Parse {
                line: lineno,
                msg: "extra vertex lines".into(),
            });
        }
        let mut it = t.split_whitespace();
        if has_vwgt {
            let w: i64 = it
                .next()
                .ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    msg: "missing vwgt".into(),
                })?
                .parse()
                .map_err(|e| GraphError::Parse {
                    line: lineno,
                    msg: format!("bad vwgt: {e}"),
                })?;
            vwgt.push(w);
        }
        while let Some(tok) = it.next() {
            let u: usize = tok.parse().map_err(|e| GraphError::Parse {
                line: lineno,
                msg: format!("bad nbr: {e}"),
            })?;
            if u == 0 || u > nv {
                return Err(GraphError::Parse {
                    line: lineno,
                    msg: format!("neighbour {u} out of 1..={nv}"),
                });
            }
            let w: f64 = if has_ewgt {
                it.next()
                    .ok_or_else(|| GraphError::Parse {
                        line: lineno,
                        msg: "missing ewgt".into(),
                    })?
                    .parse()
                    .map_err(|e| GraphError::Parse {
                        line: lineno,
                        msg: format!("bad ewgt: {e}"),
                    })?
            } else {
                1.0
            };
            // METIS lists each edge from both endpoints, so pushing every
            // neighbour reference once yields the full symmetric pattern.
            coo.push(v as Vtx, (u - 1) as Vtx, w);
        }
        v += 1;
    }
    if v != nv {
        return Err(GraphError::Parse {
            line: lineno,
            msg: format!("declared {nv} vertices, found {v}"),
        });
    }
    let adj = CsrMatrix::from_coo(&coo);
    if !adj.is_structurally_symmetric() {
        return Err(GraphError::Parse {
            line: lineno,
            msg: "METIS graph must be symmetric (every edge listed from both endpoints)".into(),
        });
    }
    if adj.nnz() != 2 * ne {
        return Err(GraphError::Parse {
            line: lineno,
            msg: format!("declared {ne} edges, found {}", adj.nnz() / 2),
        });
    }
    Ok(if has_vwgt {
        Graph::with_weights(adj, vwgt)
    } else {
        Graph::from_symmetric_matrix(&adj)
    })
}

/// Writes a graph in METIS format with vertex weights (`fmt = 10`).
pub fn write_metis<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "% written by sf2d-graph")?;
    writeln!(w, "{} {} 10", g.nv(), g.ne())?;
    for v in 0..g.nv() {
        write!(w, "{}", g.vwgt[v])?;
        let (nbrs, _) = g.neighbors(v);
        for &u in nbrs {
            write!(w, " {}", u + 1)?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_plain_graph() {
        // Triangle: 3 vertices, 3 edges.
        let src = "% comment\n3 3\n2 3\n1 3\n1 2\n";
        let g = read_metis(src.as_bytes()).unwrap();
        assert_eq!(g.nv(), 3);
        assert_eq!(g.ne(), 3);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn reads_vertex_weights() {
        let src = "2 1 10\n5 2\n7 1\n";
        let g = read_metis(src.as_bytes()).unwrap();
        assert_eq!(g.vwgt, vec![5, 7]);
        assert_eq!(g.ne(), 1);
    }

    #[test]
    fn reads_edge_weights() {
        let src = "2 1 1\n2 4\n1 4\n";
        let g = read_metis(src.as_bytes()).unwrap();
        assert_eq!(g.neighbors(0).1, &[4.0]);
    }

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let back = read_metis(buf.as_slice()).unwrap();
        assert_eq!(back.nv(), g.nv());
        assert_eq!(back.ne(), g.ne());
        assert_eq!(back.vwgt, g.vwgt);
        for v in 0..g.nv() {
            assert_eq!(back.neighbors(v).0, g.neighbors(v).0);
        }
    }

    #[test]
    fn rejects_inconsistencies() {
        // Asymmetric edge listing.
        assert!(read_metis("2 1\n2\n\n".as_bytes()).is_err());
        // Wrong edge count.
        assert!(read_metis("3 5\n2\n1 3\n2\n".as_bytes()).is_err());
        // Out-of-range neighbour.
        assert!(read_metis("2 1\n9\n1\n".as_bytes()).is_err());
        // Wrong vertex count.
        assert!(read_metis("3 1\n2\n1\n".as_bytes()).is_err());
    }
}
