//! SNAP-style edge-list I/O.
//!
//! SNAP datasets (com-orkut, com-liveJournal, cit-Patents, …) ship as plain
//! text: one `u v` pair per line, `#` comments. We read them as directed
//! edges with unit weight; callers symmetrize via
//! [`CsrMatrix::plus_transpose`](crate::CsrMatrix::plus_transpose) or build
//! a [`Graph`](crate::Graph) directly.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::{CooMatrix, CsrMatrix, GraphError, Vtx};

/// Reads a whitespace-separated edge list.
///
/// Vertex ids may be arbitrary `u64`s; they are compacted to `0..nv` in
/// first-appearance order (SNAP files often have gaps in their id space).
/// Returns the unit-weight directed adjacency matrix over the compacted ids.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrMatrix, GraphError> {
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for (lineno0, line) in BufReader::new(reader).lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u64 = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno,
                msg: "missing source".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno,
                msg: format!("bad source: {e}"),
            })?;
        let v: u64 = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno,
                msg: "missing target".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno,
                msg: format!("bad target: {e}"),
            })?;
        edges.push((u, v));
    }

    // Compact ids in first-appearance order.
    let mut remap = std::collections::HashMap::new();
    let mut next: Vtx = 0;
    let mut id = |raw: u64, remap: &mut std::collections::HashMap<u64, Vtx>| -> Vtx {
        *remap.entry(raw).or_insert_with(|| {
            let v = next;
            next += 1;
            v
        })
    };
    let compact: Vec<(Vtx, Vtx)> = edges
        .iter()
        .map(|&(u, v)| (id(u, &mut remap), id(v, &mut remap)))
        .collect();
    let nv = next as usize;

    let mut coo = CooMatrix::with_capacity(nv, nv, compact.len());
    for (u, v) in compact {
        coo.push(u, v, 1.0);
    }
    Ok(CsrMatrix::from_coo(&coo))
}

/// Writes the sparsity pattern as a `u v` edge list with a size comment.
pub fn write_edge_list<W: Write>(a: &CsrMatrix, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# sf2d edge list: {} vertices, {} edges",
        a.nrows(),
        a.nnz()
    )?;
    for (r, c, _) in a.iter() {
        writeln!(w, "{r} {c}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_simple_list_with_comments() {
        let src = "# SNAP header\n0 1\n1 2\n\n2 0\n";
        let m = read_edge_list(src.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), Some(1.0));
    }

    #[test]
    fn compacts_sparse_id_space() {
        let src = "1000000 5\n5 99\n";
        let m = read_edge_list(src.as_bytes()).unwrap();
        // Ids compacted to 0,1,2 in first-appearance order.
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.get(0, 1), Some(1.0)); // 1000000 -> 0, 5 -> 1
        assert_eq!(m.get(1, 2), Some(1.0)); // 99 -> 2
    }

    #[test]
    fn duplicate_edges_sum() {
        let src = "0 1\n0 1\n";
        let m = read_edge_list(src.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 1), Some(2.0));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edge_list("0\n".as_bytes()).is_err());
        assert!(read_edge_list("a b\n".as_bytes()).is_err());
    }

    #[test]
    fn roundtrip() {
        let src = "0 1\n1 2\n2 0\n";
        let m = read_edge_list(src.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&m, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(back.nnz(), m.nnz());
        assert_eq!(back.nrows(), m.nrows());
    }
}
