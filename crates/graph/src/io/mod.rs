//! Graph and matrix file I/O.
//!
//! Four formats:
//! * [`matrix_market`] — the UF Sparse Matrix Collection format the paper's
//!   inputs ship in (`.mtx`, coordinate, real/pattern, general/symmetric);
//! * [`edge_list`] — SNAP-style whitespace-separated `u v` lines;
//! * [`binary`] — a compact little-endian binary CSR container for fast
//!   reload of generated proxy matrices between benchmark runs;
//! * [`metis`] — the METIS/ParMETIS graph format (the partitioner the
//!   paper used reads this).

pub mod binary;
pub mod edge_list;
pub mod matrix_market;
pub mod metis;

pub use binary::{read_binary_csr, write_binary_csr};
pub use edge_list::{read_edge_list, write_edge_list};
pub use matrix_market::{read_matrix_market, write_matrix_market};
pub use metis::{read_metis, write_metis};
