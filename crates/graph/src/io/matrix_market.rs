//! Matrix Market (`.mtx`) coordinate-format reader/writer.
//!
//! Supports the subset the UF Sparse Matrix Collection / SNAP exports use:
//! `matrix coordinate (real|integer|pattern) (general|symmetric)`.
//! Pattern entries get value `1.0`; symmetric files are expanded to full
//! storage (both `(i,j)` and `(j,i)`), matching how the paper stores
//! undirected edges twice.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::{CooMatrix, CsrMatrix, GraphError, Vtx};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a Matrix Market coordinate file into a CSR matrix.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix, GraphError> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let header = loop {
        match lines.next() {
            Some(l) => {
                lineno += 1;
                let l = l?;
                if !l.trim().is_empty() {
                    break l;
                }
            }
            None => {
                return Err(GraphError::Parse {
                    line: lineno,
                    msg: "empty file".into(),
                });
            }
        }
    };
    let toks: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(GraphError::Parse {
            line: lineno,
            msg: format!("bad MatrixMarket header: {header}"),
        });
    }
    if toks[2] != "coordinate" {
        return Err(GraphError::Parse {
            line: lineno,
            msg: format!("only coordinate format supported, got {}", toks[2]),
        });
    }
    let field = match toks[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(GraphError::Parse {
                line: lineno,
                msg: format!("unsupported field type {other}"),
            });
        }
    };
    let symmetry = match toks[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(GraphError::Parse {
                line: lineno,
                msg: format!("unsupported symmetry {other}"),
            });
        }
    };

    // Size line: skip comments.
    let size_line = loop {
        match lines.next() {
            Some(l) => {
                lineno += 1;
                let l = l?;
                let t = l.trim();
                if !t.is_empty() && !t.starts_with('%') {
                    break l;
                }
            }
            None => {
                return Err(GraphError::Parse {
                    line: lineno,
                    msg: "missing size line".into(),
                });
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| GraphError::Parse {
            line: lineno,
            msg: format!("bad size line: {e}"),
        })?;
    if dims.len() != 3 {
        return Err(GraphError::Parse {
            line: lineno,
            msg: format!("size line needs 3 fields, got {}", dims.len()),
        });
    }
    let (nrows, ncols, nnz_decl) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(
        nrows,
        ncols,
        if symmetry == Symmetry::Symmetric {
            2 * nnz_decl
        } else {
            nnz_decl
        },
    );
    let mut read = 0usize;
    for l in lines {
        lineno += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno,
                msg: "missing row".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno,
                msg: format!("bad row: {e}"),
            })?;
        let j: usize = it
            .next()
            .ok_or_else(|| GraphError::Parse {
                line: lineno,
                msg: "missing col".into(),
            })?
            .parse()
            .map_err(|e| GraphError::Parse {
                line: lineno,
                msg: format!("bad col: {e}"),
            })?;
        let v: f64 = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    msg: "missing value".into(),
                })?
                .parse()
                .map_err(|e| GraphError::Parse {
                    line: lineno,
                    msg: format!("bad value: {e}"),
                })?,
        };
        if i == 0 || j == 0 {
            return Err(GraphError::Parse {
                line: lineno,
                msg: "MatrixMarket indices are 1-based; found 0".into(),
            });
        }
        let (r, c) = ((i - 1) as Vtx, (j - 1) as Vtx);
        coo.try_push(r, c, v)?;
        if symmetry == Symmetry::Symmetric && r != c {
            coo.push(c, r, v);
        }
        read += 1;
    }
    if read != nnz_decl {
        return Err(GraphError::Parse {
            line: lineno,
            msg: format!("declared {nnz_decl} entries, found {read}"),
        });
    }
    Ok(CsrMatrix::from_coo(&coo))
}

/// Writes a matrix in Matrix Market `coordinate real general` format.
pub fn write_matrix_market<W: Write>(a: &CsrMatrix, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by sf2d-graph")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (r, c, v) in a.iter() {
        writeln!(w, "{} {} {v:.17}", r + 1, c + 1)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_general_real() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   % comment\n\
                   3 3 2\n\
                   1 2 5.0\n\
                   3 1 -1.5\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.get(0, 1), Some(5.0));
        assert_eq!(m.get(2, 0), Some(-1.5));
    }

    #[test]
    fn reads_symmetric_pattern_expanding_entries() {
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                   3 3 2\n\
                   2 1\n\
                   3 3\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3); // (1,0), (0,1), (2,2)
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 0), Some(1.0));
        assert_eq!(m.get(2, 2), Some(1.0));
    }

    #[test]
    fn roundtrip_write_read() {
        let mut coo = crate::CooMatrix::new(4, 4);
        coo.push(0, 3, 2.25);
        coo.push(2, 1, -7.0);
        coo.push(3, 3, 0.5);
        let m = CsrMatrix::from_coo(&coo);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1 1\n1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_count_mismatch_and_zero_index() {
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
        let zero = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(zero.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(matches!(
            read_matrix_market(src.as_bytes()),
            Err(GraphError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn integer_field_parses() {
        let src = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 7\n";
        let m = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), Some(7.0));
    }
}
