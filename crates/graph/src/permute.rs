//! Symmetric permutations `PᵀAP`.
//!
//! The paper explains its 2D layout as "partition the permuted matrix PᵀAP
//! by the block 2D method, where the block sizes correspond to the part
//! sizes from the graph partition" (§3.1) — the permutation is conceptual
//! there, but we implement it for tests that verify the conceptual and
//! implemented layouts coincide, and for the `layout_explorer` example that
//! renders Figure 3.

use crate::{CooMatrix, CsrMatrix, GraphError, Vtx};

/// A permutation of `0..n`, stored as `perm` with `perm[old] = new`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<Vtx>,
}

impl Permutation {
    /// Identity permutation on `n` elements.
    pub fn identity(n: usize) -> Permutation {
        Permutation {
            perm: (0..n as Vtx).collect(),
        }
    }

    /// Builds from `perm[old] = new`. Returns an error if `perm` is not a
    /// bijection on `0..perm.len()`.
    pub fn from_vec(perm: Vec<Vtx>) -> Result<Permutation, GraphError> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            if (p as usize) >= n || seen[p as usize] {
                return Err(GraphError::Parse {
                    line: 0,
                    msg: format!("not a permutation: value {p} repeated or out of range"),
                });
            }
            seen[p as usize] = true;
        }
        Ok(Permutation { perm })
    }

    /// Builds the permutation that *sorts by part number*: vertices of part
    /// 0 first, then part 1, etc., preserving original order within a part
    /// (a stable counting sort). This is the `P` of the paper's Figure 3.
    pub fn sort_by_part(part: &[u32], nparts: usize) -> Permutation {
        let mut counts = vec![0usize; nparts + 1];
        for &p in part {
            assert!((p as usize) < nparts, "part id {p} >= nparts {nparts}");
            counts[p as usize + 1] += 1;
        }
        for i in 0..nparts {
            counts[i + 1] += counts[i];
        }
        let mut perm = vec![0 as Vtx; part.len()];
        for (old, &p) in part.iter().enumerate() {
            perm[old] = counts[p as usize] as Vtx;
            counts[p as usize] += 1;
        }
        Permutation { perm }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the permutation is over the empty set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// New position of `old`.
    #[inline]
    pub fn apply(&self, old: usize) -> usize {
        self.perm[old] as usize
    }

    /// The inverse permutation (`inv[new] = old`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as Vtx; self.perm.len()];
        for (old, &new) in self.perm.iter().enumerate() {
            inv[new as usize] = old as Vtx;
        }
        Permutation { perm: inv }
    }

    /// Applies the symmetric permutation to a square matrix: returns
    /// `B = PᵀAP` with `b_{perm(i), perm(j)} = a_{ij}`.
    pub fn permute_matrix(&self, a: &CsrMatrix) -> Result<CsrMatrix, GraphError> {
        if a.nrows() != a.ncols() {
            return Err(GraphError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        if a.nrows() != self.perm.len() {
            return Err(GraphError::DimensionMismatch {
                context: "Permutation::permute_matrix",
                expected: self.perm.len(),
                actual: a.nrows(),
            });
        }
        let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz());
        for (r, c, v) in a.iter() {
            coo.push(self.perm[r as usize], self.perm[c as usize], v);
        }
        Ok(CsrMatrix::from_coo(&coo))
    }

    /// Permutes a dense vector: `out[perm[i]] = v[i]`.
    pub fn permute_vec<T: Copy + Default>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.perm.len());
        let mut out = vec![T::default(); v.len()];
        for (old, &new) in self.perm.iter().enumerate() {
            out[new as usize] = v[old];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(3);
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 2, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        assert_eq!(p.permute_matrix(&a).unwrap(), a);
    }

    #[test]
    fn from_vec_rejects_non_bijections() {
        assert!(Permutation::from_vec(vec![0, 0]).is_err());
        assert!(Permutation::from_vec(vec![0, 5]).is_err());
        assert!(Permutation::from_vec(vec![1, 0, 2]).is_ok());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let inv = p.inverse();
        for i in 0..3 {
            assert_eq!(inv.apply(p.apply(i)), i);
        }
    }

    #[test]
    fn permute_matrix_moves_entries() {
        // perm: 0->1, 1->0 (swap).
        let p = Permutation::from_vec(vec![1, 0]).unwrap();
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 3.0);
        let a = CsrMatrix::from_coo(&coo);
        let b = p.permute_matrix(&a).unwrap();
        assert_eq!(b.get(1, 0), Some(3.0));
        assert_eq!(b.get(0, 1), None);
    }

    #[test]
    fn sort_by_part_groups_vertices() {
        let part = [1u32, 0, 1, 0, 2];
        let p = Permutation::sort_by_part(&part, 3);
        // Part 0 holds old vertices 1, 3 -> new 0, 1; part 1 holds 0, 2 ->
        // new 2, 3; part 2 holds 4 -> new 4.
        assert_eq!(p.apply(1), 0);
        assert_eq!(p.apply(3), 1);
        assert_eq!(p.apply(0), 2);
        assert_eq!(p.apply(2), 3);
        assert_eq!(p.apply(4), 4);
    }

    #[test]
    fn permute_vec_matches_apply() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let out = p.permute_vec(&[10, 20, 30]);
        assert_eq!(out, vec![20, 30, 10]);
    }

    #[test]
    fn spectrum_preserved_under_permutation() {
        // PᵀAP has the same row sums multiset as A for symmetric A.
        let mut coo = CooMatrix::new(4, 4);
        coo.push_sym(0, 1, 1.0);
        coo.push_sym(1, 2, 1.0);
        coo.push_sym(2, 3, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let p = Permutation::from_vec(vec![3, 1, 0, 2]).unwrap();
        let b = p.permute_matrix(&a).unwrap();
        let mut sums_a: Vec<f64> = a.spmv_dense(&[1.0; 4]);
        let mut sums_b: Vec<f64> = b.spmv_dense(&[1.0; 4]);
        sums_a.sort_by(f64::total_cmp);
        sums_b.sort_by(f64::total_cmp);
        assert_eq!(sums_a, sums_b);
    }
}
