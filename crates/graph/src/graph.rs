//! Undirected-graph view over a symmetric sparse matrix.
//!
//! Partitioners (crate `sf2d-partition`) consume this view: vertices with
//! weights, neighbour lists with edge weights. A [`Graph`] borrows nothing —
//! it owns its CSR adjacency so coarsened graphs in the multilevel hierarchy
//! can be stored independently.

use crate::{CooMatrix, CsrMatrix, Val, Vtx};

/// An undirected weighted graph stored as a symmetric CSR adjacency matrix
/// plus per-vertex weights.
///
/// Self-loops are removed at construction (they are irrelevant to both
/// partitioning and Laplacians). Edge `(u, v)` appears in both `u`'s and
/// `v`'s neighbour list.
#[derive(Debug, Clone)]
pub struct Graph {
    adj: CsrMatrix,
    /// One weight per vertex. For the paper's experiments this is the number
    /// of nonzeros in the vertex's matrix row ("we will always balance the
    /// nonzeros", §2.2); multiconstraint partitioning adds a unit weight.
    pub vwgt: Vec<i64>,
}

impl Graph {
    /// Builds a graph from a structurally-symmetric matrix, dropping
    /// self-loops and taking `|a_ij|` as edge weights. Vertex weights
    /// default to `1 + row nnz` of the *original* matrix (diagonal included),
    /// i.e. the SpMV work for that row.
    ///
    /// # Panics
    /// Panics if the matrix is not square or not structurally symmetric.
    pub fn from_symmetric_matrix(a: &CsrMatrix) -> Graph {
        assert_eq!(a.nrows(), a.ncols(), "graph requires a square matrix");
        debug_assert!(
            a.is_structurally_symmetric(),
            "graph requires symmetric structure"
        );
        let vwgt = (0..a.nrows()).map(|i| a.row_nnz(i).max(1) as i64).collect();
        Graph {
            adj: a.without_diagonal(),
            vwgt,
        }
    }

    /// Builds a graph from an arbitrary square matrix by symmetrizing the
    /// pattern (`A + Aᵀ`) first — the paper's §5.1 preprocessing.
    pub fn from_matrix_symmetrized(a: &CsrMatrix) -> Graph {
        let s = a.plus_transpose().expect("square matrix required");
        Graph::from_symmetric_matrix(&s)
    }

    /// Builds a graph directly from an undirected edge list.
    pub fn from_edges(nv: usize, edges: &[(Vtx, Vtx)]) -> Graph {
        let mut coo = CooMatrix::with_capacity(nv, nv, 2 * edges.len());
        for &(u, v) in edges {
            if u != v {
                coo.push_sym(u, v, 1.0);
            }
        }
        let adj = CsrMatrix::from_coo(&coo);
        let vwgt = (0..nv).map(|i| adj.row_nnz(i).max(1) as i64).collect();
        Graph { adj, vwgt }
    }

    /// Builds a graph from an adjacency matrix and explicit vertex weights.
    ///
    /// # Panics
    /// Panics if `vwgt.len() != a.nrows()`.
    pub fn with_weights(a: CsrMatrix, vwgt: Vec<i64>) -> Graph {
        assert_eq!(vwgt.len(), a.nrows());
        let adj = a.without_diagonal();
        Graph { adj, vwgt }
    }

    /// Number of vertices.
    #[inline]
    pub fn nv(&self) -> usize {
        self.adj.nrows()
    }

    /// Number of undirected edges (each stored twice internally).
    #[inline]
    pub fn ne(&self) -> usize {
        self.adj.nnz() / 2
    }

    /// The underlying symmetric adjacency matrix (no diagonal).
    #[inline]
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }

    /// Neighbours of `u` with edge weights.
    #[inline]
    pub fn neighbors(&self, u: usize) -> (&[Vtx], &[Val]) {
        self.adj.row(u)
    }

    /// Degree of vertex `u` (number of distinct neighbours).
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj.row_nnz(u)
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> i64 {
        self.vwgt.iter().sum()
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_ewgt(&self) -> Val {
        self.adj.values().iter().sum::<Val>() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2)])
    }

    #[test]
    fn from_edges_counts() {
        let g = path3();
        assert_eq!(g.nv(), 3);
        assert_eq!(g.ne(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1).0, &[0, 2]);
    }

    #[test]
    fn self_loops_dropped() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.ne(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn duplicate_edges_merge_weights() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.ne(), 1);
        // Two parallel unit edges merge into weight 2.
        assert_eq!(g.neighbors(0).1, &[2.0]);
        assert_eq!(g.total_ewgt(), 2.0);
    }

    #[test]
    fn default_vertex_weights_are_row_nnz() {
        let g = path3();
        assert_eq!(g.vwgt, vec![1, 2, 1]);
        assert_eq!(g.total_vwgt(), 4);
    }

    #[test]
    fn from_symmetric_matrix_keeps_nnz_weight_including_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push_sym(0, 1, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let g = Graph::from_symmetric_matrix(&a);
        // Row 0 had 2 nonzeros (diag + edge); weight preserves SpMV work.
        assert_eq!(g.vwgt, vec![2, 1]);
        assert_eq!(g.ne(), 1);
    }

    #[test]
    fn symmetrized_construction_from_directed_input() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0); // directed edge only
        coo.push(2, 1, 1.0);
        let a = CsrMatrix::from_coo(&coo);
        let g = Graph::from_matrix_symmetrized(&a);
        assert_eq!(g.ne(), 2);
        assert_eq!(g.degree(1), 2);
    }
}
