//! Dense vector kernels used throughout the workspace.
//!
//! These are the sequential reference versions; `sf2d-spmv::multivec` wraps
//! them per-rank for the distributed case. They are deliberately simple,
//! allocation-free loops — the hot paths the Rust Performance Book tells us
//! to keep branch-free and bounds-check-friendly.

use crate::Val;

/// `y += alpha * x`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn axpy(alpha: Val, x: &[Val], y: &mut [Val]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * x + beta * y`.
#[inline]
pub fn axpby(alpha: Val, x: &[Val], beta: Val, y: &mut [Val]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// Dot product `xᵀ y`.
#[inline]
pub fn dot(x: &[Val], y: &[Val]) -> Val {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[Val]) -> Val {
    dot(x, x).sqrt()
}

/// Scales `x` in place by `alpha`.
#[inline]
pub fn scale(alpha: Val, x: &mut [Val]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// 1-norm `Σ |x_i|`.
#[inline]
pub fn norm1(x: &[Val]) -> Val {
    x.iter().map(|v| v.abs()).sum()
}

/// Infinity norm `max |x_i]`.
#[inline]
pub fn norm_inf(x: &[Val]) -> Val {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Elementwise multiply `y_i *= x_i` (diagonal scaling).
#[inline]
pub fn hadamard(x: &[Val], y: &mut [Val]) {
    assert_eq!(x.len(), y.len(), "hadamard length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi *= xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
    }

    #[test]
    fn axpby_combines() {
        let mut y = vec![1.0, 1.0];
        axpby(3.0, &[1.0, 2.0], -1.0, &mut y);
        assert_eq!(y, vec![2.0, 5.0]);
    }

    #[test]
    fn dot_and_norms() {
        let x = [3.0, -4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn scale_and_hadamard() {
        let mut x = vec![1.0, -2.0, 3.0];
        scale(-2.0, &mut x);
        assert_eq!(x, vec![-2.0, 4.0, -6.0]);
        hadamard(&[0.5, 0.5, 0.5], &mut x);
        assert_eq!(x, vec![-1.0, 2.0, -3.0]);
    }

    #[test]
    fn empty_vectors_are_fine() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
        let mut y: Vec<f64> = vec![];
        axpy(1.0, &[], &mut y);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
