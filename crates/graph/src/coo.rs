//! Coordinate (triplet) matrix assembly.
//!
//! Graph generators and file readers produce unordered `(row, col, value)`
//! triplets; [`CooMatrix`] collects them and is the input to
//! [`CsrMatrix::from_coo`](crate::CsrMatrix::from_coo). Duplicate entries are
//! *summed* on conversion, matching the behaviour of Epetra's
//! `InsertGlobalValues` + `FillComplete` pipeline the paper's implementation
//! uses.

use crate::{GraphError, Val, Vtx};

/// An unordered list of `(row, col, value)` triplets with declared dimensions.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    /// Row indices, parallel to `cols` and `vals`.
    pub rows: Vec<Vtx>,
    /// Column indices.
    pub cols: Vec<Vtx>,
    /// Nonzero values.
    pub vals: Vec<Val>,
}

impl CooMatrix {
    /// Creates an empty triplet list for an `nrows x ncols` matrix.
    ///
    /// # Panics
    /// Panics if either dimension exceeds `u32::MAX` (indices are `u32`).
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(
            nrows <= u32::MAX as usize,
            "nrows {nrows} exceeds u32 index range"
        );
        assert!(
            ncols <= u32::MAX as usize,
            "ncols {ncols} exceeds u32 index range"
        );
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty triplet list with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut m = Self::new(nrows, ncols);
        m.rows.reserve(cap);
        m.cols.reserve(cap);
        m.vals.reserve(cap);
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates counted separately).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no triplets have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends one entry. Debug-asserts bounds; use [`try_push`](Self::try_push)
    /// for checked insertion of untrusted data.
    #[inline]
    pub fn push(&mut self, row: Vtx, col: Vtx, val: Val) {
        debug_assert!((row as usize) < self.nrows, "row {row} out of bounds");
        debug_assert!((col as usize) < self.ncols, "col {col} out of bounds");
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Appends one entry, returning an error when it lies outside the
    /// declared dimensions.
    pub fn try_push(&mut self, row: Vtx, col: Vtx, val: Val) -> Result<(), GraphError> {
        if (row as usize) >= self.nrows || (col as usize) >= self.ncols {
            return Err(GraphError::IndexOutOfBounds {
                row: row as u64,
                col: col as u64,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.push(row, col, val);
        Ok(())
    }

    /// Appends the entry and its transpose: `(u, v, w)` **and** `(v, u, w)`.
    ///
    /// Undirected graph edges are stored twice in matrix form, as the paper
    /// notes in §3.1 ("undirected edges are stored twice in the matrix").
    /// Self-loops are inserted once.
    #[inline]
    pub fn push_sym(&mut self, u: Vtx, v: Vtx, w: Val) {
        self.push(u, v, w);
        if u != v {
            self.push(v, u, w);
        }
    }

    /// Appends all triplets of `other` (dimensions must match).
    pub fn extend_from(&mut self, other: &CooMatrix) -> Result<(), GraphError> {
        if other.nrows != self.nrows {
            return Err(GraphError::DimensionMismatch {
                context: "CooMatrix::extend_from rows",
                expected: self.nrows,
                actual: other.nrows,
            });
        }
        if other.ncols != self.ncols {
            return Err(GraphError::DimensionMismatch {
                context: "CooMatrix::extend_from cols",
                expected: self.ncols,
                actual: other.ncols,
            });
        }
        self.rows.extend_from_slice(&other.rows);
        self.cols.extend_from_slice(&other.cols);
        self.vals.extend_from_slice(&other.vals);
        Ok(())
    }

    /// Iterates over `(row, col, value)` triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Vtx, Vtx, Val)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Returns the transpose as a new triplet list (rows and columns swapped).
    pub fn transposed(&self) -> CooMatrix {
        CooMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter_roundtrip() {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 1, 2.0);
        m.push(2, 0, -1.0);
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 1, 2.0), (2, 0, -1.0)]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn push_sym_stores_both_directions_once_for_loops() {
        let mut m = CooMatrix::new(4, 4);
        m.push_sym(1, 2, 1.0);
        m.push_sym(3, 3, 5.0);
        assert_eq!(m.len(), 3); // (1,2), (2,1), (3,3)
    }

    #[test]
    fn try_push_rejects_out_of_bounds() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.try_push(0, 0, 1.0).is_ok());
        assert!(matches!(
            m.try_push(2, 0, 1.0),
            Err(GraphError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            m.try_push(0, 5, 1.0),
            Err(GraphError::IndexOutOfBounds { .. })
        ));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn extend_from_checks_dims() {
        let mut a = CooMatrix::new(2, 3);
        let mut b = CooMatrix::new(2, 3);
        b.push(1, 2, 9.0);
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 1);

        let c = CooMatrix::new(3, 3);
        assert!(matches!(
            a.extend_from(&c),
            Err(GraphError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transposed_swaps_dims_and_indices() {
        let mut a = CooMatrix::new(2, 5);
        a.push(1, 4, 7.0);
        let t = a.transposed();
        assert_eq!((t.nrows(), t.ncols()), (5, 2));
        assert_eq!(t.iter().next(), Some((4, 1, 7.0)));
    }
}
