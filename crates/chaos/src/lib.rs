#![warn(missing_docs)]

//! # sf2d-chaos
//!
//! A **seeded, deterministic fault-injection engine** for the simulated
//! distributed runtime. Real runs of the paper's experiments on Hopper
//! and cab tolerated retransmits, stragglers, and node failures that a
//! clean simulator pretends never happen; this crate supplies the
//! misbehaving network so the runtime's verify-retry-timeout and
//! checkpoint/restart paths can be exercised — and their cost billed
//! honestly through the α-β-γ machine model.
//!
//! ## Determinism contract
//!
//! Every fault decision is a **pure function of logical coordinates**:
//!
//! ```text
//! fault(seed, superstep, src, dst, seq, attempt) -> Option<FaultKind>
//! stall(seed, superstep, rank)                   -> bool
//! crash(seed, epoch)                             -> bool
//! ```
//!
//! There is **no global RNG state** — decisions are independent hashes
//! (splitmix64-style finalizers over the coordinate words), so the fault
//! schedule does not depend on the order in which messages are examined,
//! on thread interleaving, or on `SF2D_THREADS`. The same `(seed, rate)`
//! produces the same schedule under any execution strategy, which is what
//! makes chaos runs reproducible and recovered results comparable
//! bit-for-bit against fault-free gold.
//!
//! ## Fault model
//!
//! | fault | effect on the wire | recovery path |
//! |---|---|---|
//! | [`FaultKind::Drop`] | message never arrives | receiver NACKs at the superstep barrier; sender retransmits |
//! | [`FaultKind::Duplicate`] | message arrives twice | receiver dedups by `(src, seq)` |
//! | [`FaultKind::BitFlip`] | one payload bit flips | checksum mismatch; receiver discards + NACKs; retransmit |
//! | [`FaultKind::Delay`] | latency spike on delivery | billed as extra α terms; no retransmit |
//! | stall | a rank loses a compute quantum at the superstep boundary | billed as extra γ flops |
//! | crash | a rank dies at an iteration/cycle boundary | checkpoint restore + deterministic re-execution |
//!
//! The policy decisions live here; the *mechanics* (checksum envelopes,
//! retry loops, checkpointing, cost billing) live in `sf2d-sim`'s `fault`
//! module and the solver crates.

use serde::{Deserialize, Serialize};

/// Retry budget per message before the runtime declares a timeout and
/// panics. At the capped fault rate (see [`ChaosConfig::new`]) the
/// probability of exhausting 64 attempts is below 1e-19, so a timeout in
/// practice means a scripted plan demanded the impossible.
pub const MAX_ATTEMPTS: u32 = 64;

/// Highest accepted fault rate. Above this, retry loops stop converging
/// in any reasonable attempt budget.
pub const MAX_RATE: f64 = 0.5;

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

/// splitmix64 finalizer — the standard 64-bit avalanche mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes a word sequence by chaining the splitmix64 finalizer. Order
/// matters; there is no internal state beyond the accumulator, so equal
/// word sequences always hash equal, in any thread.
#[inline]
pub fn mix(words: &[u64]) -> u64 {
    let mut acc = 0x0005_F2DC_4A05_u64; // "sf2d-chaos" domain root
    for &w in words {
        acc = splitmix64(acc ^ w);
    }
    acc
}

/// Maps a hash to a uniform float in `[0, 1)` using the top 53 bits.
#[inline]
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

// Domain-separation tags so the same coordinates feed independent
// decisions (fault? / which kind? / stall? / crash? / which bit?).
const TAG_MSG: u64 = 0x004D_5347;
const TAG_KIND: u64 = 0x4B49_4E44;
const TAG_STALL: u64 = 0x5354_414C;
const TAG_CRASH: u64 = 0x4352_4153;
const TAG_CORRUPT: u64 = 0x464C_4950;

// ---------------------------------------------------------------------------
// Fault kinds and coordinates
// ---------------------------------------------------------------------------

/// A message-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// The message is lost on the wire; the receiver NACKs at the
    /// superstep barrier and the sender retransmits.
    Drop,
    /// The message arrives twice; the receiver dedups by `(src, seq)`.
    Duplicate,
    /// One payload bit flips in flight; the checksum catches it and the
    /// corrupted copy is discarded + retransmitted.
    BitFlip,
    /// The message arrives late — a latency spike billed as extra α
    /// terms; no retransmission needed.
    Delay,
}

/// Logical coordinates of one transmission attempt. `seq` is the
/// sender-side enqueue index (unique per `(src, dst)` pair within a
/// superstep); `attempt` counts retransmissions, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MsgCoord {
    /// Superstep (routing round) number.
    pub step: u64,
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Sender-side enqueue index toward `dst` within this superstep.
    pub seq: u32,
    /// Retransmission attempt, 0 for the first try.
    pub attempt: u32,
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Seed + rate pair defining a seeded chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Root seed; every decision hashes this with its coordinates.
    pub seed: u64,
    /// Per-message fault probability in `[0, MAX_RATE]`.
    pub rate: f64,
}

impl ChaosConfig {
    /// Validated constructor. Rates outside `[0, MAX_RATE]` (or NaN) are
    /// rejected — above the cap, retry loops no longer converge within
    /// [`MAX_ATTEMPTS`].
    pub fn new(seed: u64, rate: f64) -> Result<ChaosConfig, String> {
        if !(0.0..=MAX_RATE).contains(&rate) {
            return Err(format!(
                "chaos rate must be in [0, {MAX_RATE}], got {rate:?}"
            ));
        }
        Ok(ChaosConfig { seed, rate })
    }

    /// Reads `SF2D_CHAOS_SEED` / `SF2D_CHAOS_RATE`. Returns:
    ///
    /// * `Ok(None)` — chaos off (`SF2D_CHAOS_RATE` unset, empty, or `0`);
    /// * `Ok(Some(cfg))` — chaos on (rate > 0; seed defaults to
    ///   `0xC0FFEE` when `SF2D_CHAOS_SEED` is unset);
    /// * `Err(msg)` — either variable is set to garbage. Callers should
    ///   fail loudly: a typo silently disabling fault injection would
    ///   invalidate a chaos run.
    pub fn from_env() -> Result<Option<ChaosConfig>, String> {
        let rate = std::env::var("SF2D_CHAOS_RATE").ok();
        let seed = std::env::var("SF2D_CHAOS_SEED").ok();
        ChaosConfig::parse_env(rate.as_deref(), seed.as_deref())
    }

    /// Pure core of [`ChaosConfig::from_env`]: interpret the raw
    /// `SF2D_CHAOS_RATE` / `SF2D_CHAOS_SEED` values (`None` = unset).
    /// Split out so the parsing rules are unit-testable without touching
    /// process-global environment state.
    pub fn parse_env(
        rate: Option<&str>,
        seed: Option<&str>,
    ) -> Result<Option<ChaosConfig>, String> {
        let rate = match rate {
            None => return Ok(None),
            Some(v) if v.trim().is_empty() => return Ok(None),
            Some(v) => v
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("SF2D_CHAOS_RATE={v:?} is not a number: {e}"))?,
        };
        if rate == 0.0 {
            return Ok(None);
        }
        let seed = match seed {
            None => 0xC0FFEE,
            Some(v) if v.trim().is_empty() => 0xC0FFEE,
            // Published seeds are written in hex; accept both bases.
            Some(v) => match v.trim().strip_prefix("0x").or(v.trim().strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16)
                    .map_err(|e| format!("SF2D_CHAOS_SEED={v:?} is not a u64: {e}"))?,
                None => v
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| format!("SF2D_CHAOS_SEED={v:?} is not a u64: {e}"))?,
            },
        };
        ChaosConfig::new(seed, rate).map(Some)
    }
}

// ---------------------------------------------------------------------------
// Scripted faults
// ---------------------------------------------------------------------------

/// An explicit fault schedule, for tests that need a exact, readable
/// sequence of events (e.g. "drop the Expand message from rank 3 to rank
/// 0 in superstep 2, then crash at iteration 5").
///
/// Scripted faults fire on `attempt == 0` only, so the scheduled
/// retransmission always succeeds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultScript {
    /// Message faults keyed by `(step, src, dst, seq)`.
    pub messages: Vec<ScriptedFault>,
    /// Stalls keyed by `(step, rank)`.
    pub stalls: Vec<ScriptedStall>,
    /// Persistently-jammed messages (the scripted kind fires on
    /// **every** attempt) — exists to test the retry-timeout path; a
    /// drop-jammed message can never be delivered.
    pub jams: Vec<ScriptedFault>,
    /// Epochs (iteration / restart-cycle numbers) at which a rank crash
    /// is injected. Each fires at most once.
    pub crashes: Vec<u64>,
}

/// One scripted message fault (see [`FaultScript`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedFault {
    /// Superstep number.
    pub step: u64,
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Sender-side enqueue index.
    pub seq: u32,
    /// What happens to the message.
    pub kind: FaultKind,
}

/// One scripted rank stall (see [`FaultScript`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedStall {
    /// Superstep number.
    pub step: u64,
    /// Stalling rank.
    pub rank: u32,
}

impl FaultScript {
    /// Schedules a message fault.
    pub fn fault(mut self, step: u64, src: u32, dst: u32, seq: u32, kind: FaultKind) -> Self {
        self.messages.push(ScriptedFault {
            step,
            src,
            dst,
            seq,
            kind,
        });
        self
    }

    /// Schedules a rank stall.
    pub fn stall(mut self, step: u64, rank: u32) -> Self {
        self.stalls.push(ScriptedStall { step, rank });
        self
    }

    /// Jams a message: the fault fires on every attempt, so a `Drop`
    /// jam exhausts the retry budget and times out.
    pub fn jam(mut self, step: u64, src: u32, dst: u32, seq: u32, kind: FaultKind) -> Self {
        self.jams.push(ScriptedFault {
            step,
            src,
            dst,
            seq,
            kind,
        });
        self
    }

    /// Schedules a crash at an epoch boundary.
    pub fn crash(mut self, epoch: u64) -> Self {
        self.crashes.push(epoch);
        self
    }
}

// ---------------------------------------------------------------------------
// The plan
// ---------------------------------------------------------------------------

/// A resolved fault plan: either hash-derived from a seed or an explicit
/// script. All methods are pure — the plan holds no mutable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultPlan {
    /// Hash-derived faults at the configured rate.
    Seeded {
        /// The seed + rate pair.
        cfg: ChaosConfig,
    },
    /// Explicitly scheduled faults.
    Scripted {
        /// The explicit schedule.
        script: FaultScript,
    },
}

impl FaultPlan {
    /// Convenience constructor for a seeded plan.
    pub fn seeded(cfg: ChaosConfig) -> FaultPlan {
        FaultPlan::Seeded { cfg }
    }

    /// Convenience constructor for a scripted plan.
    pub fn scripted(script: FaultScript) -> FaultPlan {
        FaultPlan::Scripted { script }
    }
}

impl FaultPlan {
    /// The fault (if any) afflicting one transmission attempt.
    pub fn message_fault(&self, c: &MsgCoord) -> Option<FaultKind> {
        match self {
            FaultPlan::Seeded { cfg } => {
                let h = mix(&[
                    cfg.seed,
                    TAG_MSG,
                    c.step,
                    c.src as u64,
                    c.dst as u64,
                    c.seq as u64,
                    c.attempt as u64,
                ]);
                if unit(h) >= cfg.rate {
                    return None;
                }
                let k = mix(&[
                    cfg.seed,
                    TAG_KIND,
                    c.step,
                    c.src as u64,
                    c.dst as u64,
                    c.seq as u64,
                    c.attempt as u64,
                ]) % 100;
                Some(match k {
                    0..=34 => FaultKind::Drop,
                    35..=54 => FaultKind::Duplicate,
                    55..=79 => FaultKind::BitFlip,
                    _ => FaultKind::Delay,
                })
            }
            FaultPlan::Scripted { script: s } => {
                let hit = |f: &&ScriptedFault| {
                    f.step == c.step && f.src == c.src && f.dst == c.dst && f.seq == c.seq
                };
                if let Some(j) = s.jams.iter().find(hit) {
                    return Some(j.kind);
                }
                if c.attempt != 0 {
                    return None;
                }
                s.messages.iter().find(hit).map(|f| f.kind)
            }
        }
    }

    /// Does `rank` stall at the boundary of superstep `step`? Seeded
    /// plans stall at a quarter of the message-fault rate.
    pub fn stall(&self, step: u64, rank: u32) -> bool {
        match self {
            FaultPlan::Seeded { cfg } => {
                let h = mix(&[cfg.seed, TAG_STALL, step, rank as u64]);
                unit(h) < cfg.rate * 0.25
            }
            FaultPlan::Scripted { script: s } => {
                s.stalls.iter().any(|s| s.step == step && s.rank == rank)
            }
        }
    }

    /// Is a rank crash injected at epoch boundary `epoch`? (Epochs are
    /// solver-level: SpMV iterations or Krylov-Schur restart cycles.)
    /// Seeded plans crash at half the message-fault rate. The *runtime*
    /// consumes each epoch's decision at most once — see
    /// `sf2d_sim::fault::ChaosRuntime::take_crash` — so deterministic
    /// re-execution after a restore cannot re-trip the same crash.
    pub fn crash(&self, epoch: u64) -> bool {
        match self {
            FaultPlan::Seeded { cfg } => {
                let h = mix(&[cfg.seed, TAG_CRASH, epoch]);
                unit(h) < cfg.rate * 0.5
            }
            FaultPlan::Scripted { script: s } => s.crashes.contains(&epoch),
        }
    }

    /// The effective message-fault rate (0 for an empty script — used by
    /// rate-0 fast paths).
    pub fn rate(&self) -> f64 {
        match self {
            FaultPlan::Seeded { cfg } => cfg.rate,
            FaultPlan::Scripted { script: s } => {
                if s.messages.is_empty()
                    && s.stalls.is_empty()
                    && s.crashes.is_empty()
                    && s.jams.is_empty()
                {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Checksums and corruption
// ---------------------------------------------------------------------------

/// FNV-1a checksum over a message envelope: the `(src, seq)` identity
/// words followed by the payload's IEEE-754 bit patterns. Collision odds
/// against a *single* flipped bit are zero (FNV-1a is injective on
/// single-bit differences of the final word and astronomically unlikely
/// otherwise), which is the threat model here.
pub fn checksum(src: u32, seq: u32, data: &[f64]) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    let mut absorb = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    absorb(src as u64);
    absorb(seq as u64);
    for &x in data {
        absorb(x.to_bits());
    }
    h
}

/// Flips one deterministically-chosen payload bit in place (no-op on an
/// empty payload — there is nothing to corrupt). Which bit is derived
/// from the message coordinates so corruption, like every other fault,
/// is schedule-independent.
pub fn corrupt(data: &mut [f64], seed: u64, c: &MsgCoord) {
    if data.is_empty() {
        return;
    }
    let h = mix(&[
        seed,
        TAG_CORRUPT,
        c.step,
        c.src as u64,
        c.dst as u64,
        c.seq as u64,
        c.attempt as u64,
    ]);
    let idx = (h as usize) % data.len();
    let bit = (h >> 32) % 64;
    data[idx] = f64::from_bits(data[idx].to_bits() ^ (1u64 << bit));
}

// ---------------------------------------------------------------------------
// Fault accounting
// ---------------------------------------------------------------------------

/// Counters of injected faults and the retransmission traffic they
/// caused. Owned by the runtime (`sf2d_sim::fault::ChaosRuntime`),
/// serialized into recovery-trace artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Messages dropped on the wire.
    pub drops: u64,
    /// Messages duplicated in flight.
    pub duplicates: u64,
    /// Payload bit-flips caught by checksum.
    pub bit_flips: u64,
    /// Latency spikes.
    pub delays: u64,
    /// Rank stalls at superstep boundaries.
    pub stalls: u64,
    /// Rank crashes recovered via checkpoint restore.
    pub crashes: u64,
    /// Extra messages sent because of faults (retransmits, NACKs,
    /// duplicate copies).
    pub retransmit_msgs: u64,
    /// Extra bytes moved because of faults.
    pub retransmit_bytes: u64,
}

impl FaultStats {
    /// True if any fault was injected.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }

    /// Total message-level faults (excludes stalls and crashes).
    pub fn message_faults(&self) -> u64 {
        self.drops + self.duplicates + self.bit_flips + self.delays
    }

    /// Element-wise sum.
    pub fn merge(&mut self, o: &FaultStats) {
        self.drops += o.drops;
        self.duplicates += o.duplicates;
        self.bit_flips += o.bit_flips;
        self.delays += o.delays;
        self.stalls += o.stalls;
        self.crashes += o.crashes;
        self.retransmit_msgs += o.retransmit_msgs;
        self.retransmit_bytes += o.retransmit_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord(step: u64, src: u32, dst: u32, seq: u32, attempt: u32) -> MsgCoord {
        MsgCoord {
            step,
            src,
            dst,
            seq,
            attempt,
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let plan = FaultPlan::seeded(ChaosConfig::new(42, 0.3).unwrap());
        // Query in two different orders; answers must match exactly.
        let coords: Vec<MsgCoord> = (0..200)
            .map(|i| coord(i / 50, (i % 7) as u32, (i % 5) as u32, (i % 11) as u32, 0))
            .collect();
        let forward: Vec<_> = coords.iter().map(|c| plan.message_fault(c)).collect();
        let backward: Vec<_> = coords.iter().rev().map(|c| plan.message_fault(c)).collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn rate_zero_injects_nothing() {
        let plan = FaultPlan::seeded(ChaosConfig::new(7, 0.0).unwrap());
        for step in 0..20 {
            for src in 0..8 {
                for dst in 0..8 {
                    assert_eq!(plan.message_fault(&coord(step, src, dst, 0, 0)), None);
                    assert!(!plan.stall(step, src));
                }
            }
            assert!(!plan.crash(step));
        }
    }

    #[test]
    fn seeded_rate_is_roughly_honored_and_all_kinds_appear() {
        let plan = FaultPlan::seeded(ChaosConfig::new(0xDEAD, 0.3).unwrap());
        let mut hits = 0usize;
        let mut kinds = std::collections::BTreeSet::new();
        let n = 20_000;
        for i in 0..n {
            let c = coord(
                i as u64 / 100,
                (i % 13) as u32,
                (i % 17) as u32,
                (i % 7) as u32,
                0,
            );
            if let Some(k) = plan.message_fault(&c) {
                hits += 1;
                kinds.insert(k);
            }
        }
        let observed = hits as f64 / n as f64;
        assert!(
            (observed - 0.3).abs() < 0.02,
            "observed fault rate {observed} far from 0.3"
        );
        assert_eq!(
            kinds.len(),
            4,
            "all four fault kinds should appear: {kinds:?}"
        );
    }

    #[test]
    fn different_attempts_fault_independently() {
        // A message faulted on attempt 0 must eventually get a clean
        // attempt: P(64 consecutive faults) at the max rate is ~1e-20.
        let plan = FaultPlan::seeded(ChaosConfig::new(99, MAX_RATE).unwrap());
        for i in 0..500u32 {
            let clean = (0..MAX_ATTEMPTS).any(|a| {
                plan.message_fault(&coord(3, i % 16, (i / 16) % 16, i, a))
                    .is_none()
            });
            assert!(clean, "message {i} never got a clean attempt");
        }
    }

    #[test]
    fn scripted_faults_fire_exactly_once() {
        let plan = FaultPlan::scripted(
            FaultScript::default()
                .fault(2, 3, 0, 1, FaultKind::Drop)
                .stall(4, 7)
                .crash(5),
        );
        assert_eq!(
            plan.message_fault(&coord(2, 3, 0, 1, 0)),
            Some(FaultKind::Drop)
        );
        // Retransmission (attempt 1) is clean.
        assert_eq!(plan.message_fault(&coord(2, 3, 0, 1, 1)), None);
        // Other coordinates are clean.
        assert_eq!(plan.message_fault(&coord(2, 3, 0, 2, 0)), None);
        assert_eq!(plan.message_fault(&coord(1, 3, 0, 1, 0)), None);
        assert!(plan.stall(4, 7));
        assert!(!plan.stall(4, 6));
        assert!(plan.crash(5));
        assert!(!plan.crash(4));
    }

    #[test]
    fn checksum_catches_single_bit_flips() {
        let data: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let clean = checksum(3, 9, &data);
        let plan_seed = 0xF1F1;
        for attempt in 0..32 {
            let mut corrupted = data.clone();
            corrupt(&mut corrupted, plan_seed, &coord(1, 3, 2, 9, attempt));
            assert_ne!(corrupted, data, "corrupt() must change the payload");
            assert_ne!(
                checksum(3, 9, &corrupted),
                clean,
                "checksum must catch the flip"
            );
        }
        // Identity words are part of the envelope.
        assert_ne!(checksum(4, 9, &data), clean);
        assert_ne!(checksum(3, 8, &data), clean);
    }

    #[test]
    fn corrupt_empty_payload_is_noop() {
        let mut empty: Vec<f64> = vec![];
        corrupt(&mut empty, 1, &coord(0, 0, 1, 0, 0));
        assert!(empty.is_empty());
    }

    #[test]
    fn config_rejects_bad_rates() {
        assert!(ChaosConfig::new(1, -0.1).is_err());
        assert!(ChaosConfig::new(1, 0.6).is_err());
        assert!(ChaosConfig::new(1, f64::NAN).is_err());
        assert!(ChaosConfig::new(1, 0.0).is_ok());
        assert!(ChaosConfig::new(1, MAX_RATE).is_ok());
    }

    #[test]
    fn env_parsing_accepts_decimal_and_hex_seeds() {
        // Unset or empty rate, or rate 0: chaos off, seed irrelevant.
        assert_eq!(ChaosConfig::parse_env(None, Some("junk")), Ok(None));
        assert_eq!(ChaosConfig::parse_env(Some("  "), None), Ok(None));
        assert_eq!(ChaosConfig::parse_env(Some("0"), Some("7")), Ok(None));

        // Seed defaults when unset/empty, and parses in both bases —
        // the published seeds are written as hex (`0xC0FFEE`).
        let on = |rate, seed| ChaosConfig::parse_env(Some(rate), seed).unwrap().unwrap();
        assert_eq!(on("0.25", None).seed, 0xC0FFEE);
        assert_eq!(on("0.25", Some("")).seed, 0xC0FFEE);
        assert_eq!(on("0.25", Some("42")).seed, 42);
        assert_eq!(on("0.25", Some("0xC0FFEE")).seed, 0xC0FFEE);
        assert_eq!(on("0.25", Some(" 0XdeadBEEF ")).seed, 0xDEAD_BEEF);
        assert_eq!(on("0.25", Some("0xC0FFEE")).rate, 0.25);
    }

    #[test]
    fn env_parsing_fails_loudly_on_garbage() {
        let err = |rate, seed| ChaosConfig::parse_env(rate, seed).unwrap_err();
        assert!(err(Some("lots"), None).contains("SF2D_CHAOS_RATE"));
        assert!(err(Some("0.25"), Some("coffee")).contains("SF2D_CHAOS_SEED"));
        assert!(err(Some("0.25"), Some("0xZZ")).contains("SF2D_CHAOS_SEED"));
        assert!(err(Some("0.25"), Some("-1")).contains("SF2D_CHAOS_SEED"));
        // In-range parse but out-of-range rate still fails validation.
        assert!(err(Some("0.75"), Some("1")).contains("rate"));
    }

    #[test]
    fn stats_merge_and_any() {
        let mut a = FaultStats::default();
        assert!(!a.any());
        let b = FaultStats {
            drops: 2,
            retransmit_msgs: 4,
            retransmit_bytes: 512,
            ..FaultStats::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert!(a.any());
        assert_eq!(a.drops, 4);
        assert_eq!(a.retransmit_bytes, 1024);
        assert_eq!(a.message_faults(), 4);
    }

    #[test]
    fn script_roundtrips_through_serde() {
        let plan = FaultPlan::scripted(
            FaultScript::default()
                .fault(0, 1, 2, 3, FaultKind::BitFlip)
                .crash(7),
        );
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
