//! Golden-file test pinning the Chrome trace JSON schema: stable field
//! order (`name, cat, ph, ts, dur, pid, tid, args`), pid = rank,
//! tid = phase kind. Regenerate with
//! `SF2D_BLESS=1 cargo test -p sf2d-obs --test golden_chrome`.

use sf2d_obs::event::{PhaseKind, RankSample, TraceEvent};
use sf2d_obs::sink::{chrome_trace_json, validate_chrome_trace};

fn fixture_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent::Superstep {
            step: 0,
            phase: PhaseKind::Expand,
            t_start: 0.0,
            samples: vec![
                RankSample {
                    rank: 0,
                    time: 1.25e-6,
                    msgs: 3,
                    bytes: 96,
                    flops: 0,
                },
                RankSample {
                    rank: 1,
                    time: 2.5e-6,
                    msgs: 5,
                    bytes: 160,
                    flops: 0,
                },
            ],
        },
        TraceEvent::Superstep {
            step: 1,
            phase: PhaseKind::LocalCompute,
            t_start: 2.5e-6,
            samples: vec![
                RankSample {
                    rank: 0,
                    time: 4.0e-6,
                    msgs: 0,
                    bytes: 0,
                    flops: 4000,
                },
                RankSample {
                    rank: 1,
                    time: 3.0e-6,
                    msgs: 0,
                    bytes: 0,
                    flops: 3000,
                },
            ],
        },
        TraceEvent::SimSpan {
            kind: PhaseKind::SolverIteration,
            label: "restart 0".to_string(),
            t_start: 0.0,
            t_end: 6.5e-6,
        },
        TraceEvent::WallSpan {
            kind: PhaseKind::Pack,
            label: "spmv:expand-pack".to_string(),
            t_start: 0.000125,
            dur: 0.0000625,
        },
    ]
}

#[test]
fn chrome_trace_matches_golden_file() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace.json"
    );
    let rendered = chrome_trace_json(&fixture_events());

    if std::env::var_os("SF2D_BLESS").is_some() {
        std::fs::write(golden_path, &rendered).expect("bless golden file");
    }

    let golden = std::fs::read_to_string(golden_path).expect("golden file present");
    assert_eq!(
        rendered, golden,
        "Chrome trace output drifted from the golden schema; if the change \
         is intentional, re-bless with SF2D_BLESS=1"
    );
}

#[test]
fn golden_file_passes_the_validator() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace.json"
    );
    let golden = std::fs::read_to_string(golden_path).expect("golden file present");
    // 4 superstep samples + 1 sim span + 1 wall span.
    assert_eq!(validate_chrome_trace(&golden), Ok(6));
}

#[test]
fn golden_file_pins_pid_rank_and_tid_phase() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace.json"
    );
    let golden = std::fs::read_to_string(golden_path).expect("golden file present");
    // rank 1's LocalCompute sample: pid = rank, tid = the phase's stable id.
    let tid = PhaseKind::LocalCompute.tid();
    assert!(golden.contains(&format!("\"pid\":1,\"tid\":{tid}")));
    // Field order is part of the schema contract.
    assert!(golden.contains("{\"name\":\"Expand\",\"cat\":\"superstep\",\"ph\":\"X\",\"ts\":0,"));
}
