//! Post-run critical-path analysis over the simulated timeline.
//!
//! BSP semantics make the critical path explicit: every superstep's
//! elapsed time is its slowest rank's time, so the critical path of a run
//! is the chain of *bounding ranks* — one per superstep — and the total
//! time is exactly the sum of their sample times. This module reconstructs
//! that chain from [`TraceEvent::Superstep`] events, classifies what each
//! bounding rank was paying for under the α-β-γ model, splits volumes into
//! **bottleneck** (max over ranks) vs **total** (sum over ranks) à la
//! Ahrens' bottleneck-vs-total communication distinction, and ranks the
//! top-k imbalance offenders (the ranks everyone else waited for).

use std::collections::BTreeMap;

use crate::event::{PhaseKind, RankSample, TraceEvent};

/// The α-β-γ parameters used to attribute a bounding rank's time.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostParams {
    /// Seconds of latency per message.
    pub alpha: f64,
    /// Seconds per byte.
    pub beta: f64,
    /// Seconds per flop.
    pub gamma: f64,
}

/// Which α-β-γ term dominates a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BoundTerm {
    /// Per-message latency (α·msgs).
    Latency,
    /// Bandwidth (β·bytes).
    Bandwidth,
    /// Compute (γ·flops).
    Compute,
}

impl BoundTerm {
    /// Classifies a sample under the given parameters.
    pub fn of(p: &CostParams, s: &RankSample) -> BoundTerm {
        let a = p.alpha * s.msgs as f64;
        let b = p.beta * s.bytes as f64;
        let g = p.gamma * s.flops as f64;
        if a >= b && a >= g {
            BoundTerm::Latency
        } else if b >= g {
            BoundTerm::Bandwidth
        } else {
            BoundTerm::Compute
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            BoundTerm::Latency => "latency",
            BoundTerm::Bandwidth => "bandwidth",
            BoundTerm::Compute => "compute",
        }
    }
}

/// One superstep's entry on the critical path.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StepCritical {
    /// Step ordinal (as recorded by the ledger).
    pub step: u64,
    /// Phase kind charged.
    pub phase: PhaseKind,
    /// Simulated start time.
    pub t_start: f64,
    /// Step time = the bounding rank's time.
    pub time: f64,
    /// Mean rank time — `time / mean_time` is the step's imbalance.
    pub mean_time: f64,
    /// The rank that bounded the step (first rank achieving the max).
    pub bound_rank: u32,
    /// The bounding rank's raw sample.
    pub bound_sample: RankSample,
    /// What the bounding rank was paying for.
    pub term: BoundTerm,
}

impl StepCritical {
    /// Max/mean imbalance of the step (1.0 when perfectly balanced or
    /// when the step was free).
    pub fn imbalance(&self) -> f64 {
        if self.mean_time > 0.0 {
            self.time / self.mean_time
        } else {
            1.0
        }
    }
}

/// Per-phase aggregate: time plus bottleneck-vs-total traffic.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseTotal {
    /// Phase kind.
    pub phase: PhaseKind,
    /// Simulated seconds spent in the phase (sum of its step times).
    pub time: f64,
    /// Steps charged to the phase.
    pub steps: usize,
    /// Max messages charged to a single rank in a single step (bottleneck).
    pub msgs_max_rank: u64,
    /// Total messages charged across ranks and steps.
    pub msgs_total: u64,
    /// Max bytes charged to a single rank in a single step (bottleneck).
    pub bytes_max_rank: u64,
    /// Total bytes charged across ranks and steps.
    pub bytes_total: u64,
    /// Total flops charged.
    pub flops_total: u64,
}

/// One rank's imbalance record: how often and how long it bounded steps.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankOffender {
    /// Rank.
    pub rank: u32,
    /// Number of supersteps this rank bounded.
    pub steps_bound: usize,
    /// Simulated seconds of steps this rank bounded (its critical-path
    /// contribution).
    pub time_bound: f64,
    /// Total busy time of the rank across all steps.
    pub busy: f64,
    /// Total time the rank spent waiting for stragglers.
    pub idle: f64,
}

/// Aggregate of host wall-clock spans ([`TraceEvent::WallSpan`]) sharing a
/// phase kind — **real** elapsed time of instrumented host-side work
/// (partitioning, plan compilation), as opposed to the *simulated* seconds
/// of the superstep records.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WallPhase {
    /// Phase kind the spans were tagged with.
    pub phase: PhaseKind,
    /// Total wall-clock seconds across the spans.
    pub time: f64,
    /// Number of spans aggregated.
    pub spans: usize,
}

/// Aggregate of host wall-clock spans sharing a label (e.g.
/// `gp:recursive-bisection`), for the per-stage breakdown.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WallLabel {
    /// Span label.
    pub label: String,
    /// Phase kind of the spans.
    pub phase: PhaseKind,
    /// Total wall-clock seconds across same-labelled spans.
    pub time: f64,
    /// Number of spans aggregated.
    pub spans: usize,
}

/// The full analysis of one traced run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CriticalPathReport {
    /// Number of ranks seen.
    pub nranks: usize,
    /// Total simulated time = sum of step times (equals the ledger total).
    pub total: f64,
    /// The critical path, one entry per superstep, in order.
    pub steps: Vec<StepCritical>,
    /// Per-phase aggregates, largest time first.
    pub phases: Vec<PhaseTotal>,
    /// Top-k offenders by critical-path contribution, largest first.
    pub offenders: Vec<RankOffender>,
    /// Host wall-clock span aggregates by phase kind, largest time first
    /// (real time, disjoint from the simulated `total`).
    pub wall: Vec<WallPhase>,
    /// Host wall-clock span aggregates by label, largest time first.
    pub wall_labels: Vec<WallLabel>,
    /// Parameters used for term attribution.
    pub params: CostParams,
}

/// Analyzes the events of a trace: superstep records build the simulated
/// critical path; wall-span records aggregate into the host wall-clock
/// section (so setup costs like partitioning are attributed too, not just
/// SpMV time).
pub fn analyze(events: &[TraceEvent], params: CostParams, top_k: usize) -> CriticalPathReport {
    let mut steps = Vec::new();
    let mut phases: BTreeMap<PhaseKind, PhaseTotal> = BTreeMap::new();
    let mut by_rank: BTreeMap<u32, RankOffender> = BTreeMap::new();
    let mut wall: BTreeMap<PhaseKind, WallPhase> = BTreeMap::new();
    let mut wall_labels: BTreeMap<(PhaseKind, String), WallLabel> = BTreeMap::new();
    let mut total = 0.0;

    for ev in events {
        let TraceEvent::Superstep {
            step,
            phase,
            t_start,
            samples,
        } = ev
        else {
            if let TraceEvent::WallSpan {
                kind, label, dur, ..
            } = ev
            {
                let w = wall.entry(*kind).or_insert(WallPhase {
                    phase: *kind,
                    time: 0.0,
                    spans: 0,
                });
                w.time += dur;
                w.spans += 1;
                let l = wall_labels
                    .entry((*kind, label.clone()))
                    .or_insert(WallLabel {
                        label: label.clone(),
                        phase: *kind,
                        time: 0.0,
                        spans: 0,
                    });
                l.time += dur;
                l.spans += 1;
            }
            continue;
        };
        if samples.is_empty() {
            continue;
        }
        // First rank achieving the max bounds the step.
        let (_, bound) = samples
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.time.total_cmp(&b.1.time).then(b.0.cmp(&a.0)))
            .expect("non-empty samples");
        let time = bound.time;
        let mean_time = samples.iter().map(|s| s.time).sum::<f64>() / samples.len() as f64;
        total += time;

        let agg = phases.entry(*phase).or_insert(PhaseTotal {
            phase: *phase,
            time: 0.0,
            steps: 0,
            msgs_max_rank: 0,
            msgs_total: 0,
            bytes_max_rank: 0,
            bytes_total: 0,
            flops_total: 0,
        });
        agg.time += time;
        agg.steps += 1;
        for s in samples {
            agg.msgs_total += s.msgs;
            agg.bytes_total += s.bytes;
            agg.flops_total += s.flops;
            agg.msgs_max_rank = agg.msgs_max_rank.max(s.msgs);
            agg.bytes_max_rank = agg.bytes_max_rank.max(s.bytes);
            let r = by_rank.entry(s.rank).or_insert(RankOffender {
                rank: s.rank,
                steps_bound: 0,
                time_bound: 0.0,
                busy: 0.0,
                idle: 0.0,
            });
            r.busy += s.time;
            r.idle += time - s.time;
        }
        let off = by_rank.get_mut(&bound.rank).expect("bound rank sampled");
        off.steps_bound += 1;
        off.time_bound += time;

        steps.push(StepCritical {
            step: *step,
            phase: *phase,
            t_start: *t_start,
            time,
            mean_time,
            bound_rank: bound.rank,
            bound_sample: *bound,
            term: BoundTerm::of(&params, bound),
        });
    }

    let mut phases: Vec<PhaseTotal> = phases.into_values().collect();
    phases.sort_by(|a, b| b.time.total_cmp(&a.time).then(a.phase.cmp(&b.phase)));
    let nranks = by_rank.len();
    let mut offenders: Vec<RankOffender> = by_rank.into_values().collect();
    offenders.sort_by(|a, b| {
        b.time_bound
            .total_cmp(&a.time_bound)
            .then(a.rank.cmp(&b.rank))
    });
    offenders.truncate(top_k);

    let mut wall: Vec<WallPhase> = wall.into_values().collect();
    wall.sort_by(|a, b| b.time.total_cmp(&a.time).then(a.phase.cmp(&b.phase)));
    let mut wall_labels: Vec<WallLabel> = wall_labels.into_values().collect();
    wall_labels.sort_by(|a, b| {
        b.time
            .total_cmp(&a.time)
            .then(a.phase.cmp(&b.phase))
            .then(a.label.cmp(&b.label))
    });

    CriticalPathReport {
        nranks,
        total,
        steps,
        phases,
        offenders,
        wall,
        wall_labels,
        params,
    }
}

/// Renders the report as a markdown summary: per-phase totals with
/// bottleneck-vs-total volumes, the critical path per superstep, and the
/// top imbalance offenders.
pub fn markdown(r: &CriticalPathReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Trace summary");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{} ranks, {} supersteps, total simulated time {:.6e} s \
         (α={:.3e}, β={:.3e}, γ={:.3e})",
        r.nranks,
        r.steps.len(),
        r.total,
        r.params.alpha,
        r.params.beta,
        r.params.gamma
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "## Per-phase totals (bottleneck vs total volume)");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| phase | time (s) | share | steps | msgs max-rank/total | bytes max-rank/total |"
    );
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
    for ph in &r.phases {
        let _ = writeln!(
            out,
            "| {} | {:.3e} | {:.1}% | {} | {} / {} | {} / {} |",
            ph.phase.label(),
            ph.time,
            if r.total > 0.0 {
                100.0 * ph.time / r.total
            } else {
                0.0
            },
            ph.steps,
            ph.msgs_max_rank,
            ph.msgs_total,
            ph.bytes_max_rank,
            ph.bytes_total,
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "## Critical path (bounding rank per superstep)");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| step | phase | time (s) | bound rank | imbal (max/mean) | msgs | bytes | flops | bound by |"
    );
    let _ = writeln!(out, "|---:|---|---:|---:|---:|---:|---:|---:|---|");
    for s in &r.steps {
        let _ = writeln!(
            out,
            "| {} | {} | {:.3e} | {} | {:.2} | {} | {} | {} | {} |",
            s.step,
            s.phase.label(),
            s.time,
            s.bound_rank,
            s.imbalance(),
            s.bound_sample.msgs,
            s.bound_sample.bytes,
            s.bound_sample.flops,
            s.term.label(),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "## Top imbalance offenders");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| rank | steps bound | time bound (s) | busy (s) | idle (s) |"
    );
    let _ = writeln!(out, "|---:|---:|---:|---:|---:|");
    for o in &r.offenders {
        let _ = writeln!(
            out,
            "| {} | {} | {:.3e} | {:.3e} | {:.3e} |",
            o.rank, o.steps_bound, o.time_bound, o.busy, o.idle
        );
    }
    if !r.wall.is_empty() {
        let wall_total: f64 = r.wall.iter().map(|w| w.time).sum();
        let _ = writeln!(out);
        let _ = writeln!(out, "## Host wall-clock spans (real time, not simulated)");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Setup work measured on the host ({:.3e} s total); disjoint from \
             the simulated totals above.",
            wall_total
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "| phase | wall time (s) | share | spans |");
        let _ = writeln!(out, "|---|---:|---:|---:|");
        for w in &r.wall {
            let _ = writeln!(
                out,
                "| {} | {:.3e} | {:.1}% | {} |",
                w.phase.label(),
                w.time,
                if wall_total > 0.0 {
                    100.0 * w.time / wall_total
                } else {
                    0.0
                },
                w.spans,
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "| label | phase | wall time (s) | spans |");
        let _ = writeln!(out, "|---|---|---:|---:|");
        for l in &r.wall_labels {
            let _ = writeln!(
                out,
                "| {} | {} | {:.3e} | {} |",
                l.label,
                l.phase.label(),
                l.time,
                l.spans,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rank: u32, time: f64, msgs: u64, bytes: u64, flops: u64) -> RankSample {
        RankSample {
            rank,
            time,
            msgs,
            bytes,
            flops,
        }
    }

    fn unit_params() -> CostParams {
        CostParams {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
        }
    }

    fn demo_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Superstep {
                step: 0,
                phase: PhaseKind::Expand,
                t_start: 0.0,
                samples: vec![sample(0, 1.0, 1, 8, 0), sample(1, 3.0, 3, 24, 0)],
            },
            TraceEvent::WallSpan {
                kind: PhaseKind::Pack,
                label: "host-setup".into(),
                t_start: 0.0,
                dur: 1.0,
            },
            TraceEvent::Superstep {
                step: 1,
                phase: PhaseKind::LocalCompute,
                t_start: 3.0,
                samples: vec![sample(0, 5.0, 0, 0, 5), sample(1, 2.0, 0, 0, 2)],
            },
        ]
    }

    #[test]
    fn critical_path_names_the_bounding_rank_per_step() {
        let r = analyze(&demo_events(), unit_params(), 8);
        assert_eq!(r.steps.len(), 2);
        assert_eq!(r.steps[0].bound_rank, 1);
        assert_eq!(r.steps[1].bound_rank, 0);
        assert_eq!(r.total, 8.0);
        assert_eq!(r.nranks, 2);
        // Imbalance of step 0: max 3 / mean 2.
        assert!((r.steps[0].imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn term_attribution_follows_alpha_beta_gamma() {
        let p = CostParams {
            alpha: 1.0,
            beta: 0.1,
            gamma: 0.01,
        };
        assert_eq!(
            BoundTerm::of(&p, &sample(0, 0.0, 10, 1, 1)),
            BoundTerm::Latency
        );
        assert_eq!(
            BoundTerm::of(&p, &sample(0, 0.0, 1, 1000, 1)),
            BoundTerm::Bandwidth
        );
        assert_eq!(
            BoundTerm::of(&p, &sample(0, 0.0, 0, 0, 1000)),
            BoundTerm::Compute
        );
    }

    #[test]
    fn phase_totals_split_bottleneck_vs_total() {
        let r = analyze(&demo_events(), unit_params(), 8);
        let expand = r
            .phases
            .iter()
            .find(|p| p.phase == PhaseKind::Expand)
            .unwrap();
        assert_eq!(expand.msgs_total, 4);
        assert_eq!(expand.msgs_max_rank, 3);
        assert_eq!(expand.bytes_total, 32);
        assert_eq!(expand.bytes_max_rank, 24);
        // Phases sorted by time descending: LocalCompute (5.0) first.
        assert_eq!(r.phases[0].phase, PhaseKind::LocalCompute);
    }

    #[test]
    fn offenders_rank_by_critical_path_contribution() {
        let r = analyze(&demo_events(), unit_params(), 8);
        assert_eq!(r.offenders[0].rank, 0); // bounded 5.0 of the 8.0 total
        assert_eq!(r.offenders[0].steps_bound, 1);
        assert!((r.offenders[0].time_bound - 5.0).abs() < 1e-12);
        assert!((r.offenders[0].busy - 6.0).abs() < 1e-12);
        assert!((r.offenders[0].idle - 2.0).abs() < 1e-12);
        // top_k truncation
        let r1 = analyze(&demo_events(), unit_params(), 1);
        assert_eq!(r1.offenders.len(), 1);
    }

    #[test]
    fn ties_go_to_the_lowest_rank() {
        let ev = vec![TraceEvent::Superstep {
            step: 0,
            phase: PhaseKind::Sum,
            t_start: 0.0,
            samples: vec![sample(2, 1.0, 0, 0, 1), sample(5, 1.0, 0, 0, 1)],
        }];
        let r = analyze(&ev, unit_params(), 8);
        assert_eq!(r.steps[0].bound_rank, 2);
    }

    #[test]
    fn markdown_names_ranks_and_phases() {
        let md = markdown(&analyze(&demo_events(), unit_params(), 8));
        assert!(md.contains("Critical path"));
        assert!(md.contains("Expand"));
        assert!(md.contains("LocalCompute"));
        assert!(md.contains("bottleneck vs total"));
        assert!(md.contains("imbalance offenders"));
    }

    #[test]
    fn empty_trace_analyzes_to_nothing() {
        let r = analyze(&[], unit_params(), 4);
        assert_eq!(r.total, 0.0);
        assert!(r.steps.is_empty() && r.phases.is_empty() && r.offenders.is_empty());
        assert!(r.wall.is_empty() && r.wall_labels.is_empty());
        // No wall spans → no wall section in the markdown.
        assert!(!markdown(&r).contains("Host wall-clock"));
    }

    #[test]
    fn wall_spans_aggregate_separately_from_simulated_total() {
        let mut ev = demo_events();
        ev.push(TraceEvent::WallSpan {
            kind: PhaseKind::Partition,
            label: "gp:recursive-bisection".into(),
            t_start: 0.0,
            dur: 0.25,
        });
        ev.push(TraceEvent::WallSpan {
            kind: PhaseKind::Partition,
            label: "gp:recursive-bisection".into(),
            t_start: 0.5,
            dur: 0.75,
        });
        ev.push(TraceEvent::WallSpan {
            kind: PhaseKind::Partition,
            label: "gp:kway-refine".into(),
            t_start: 1.5,
            dur: 0.5,
        });
        let r = analyze(&ev, unit_params(), 8);
        // Simulated total stays the superstep sum — wall time is disjoint.
        assert_eq!(r.total, 8.0);
        // Sorted by time: Partition 1.5 s (3 spans) above Pack 1.0 s.
        assert_eq!(r.wall.len(), 2);
        assert_eq!(r.wall[0].phase, PhaseKind::Partition);
        assert!((r.wall[0].time - 1.5).abs() < 1e-12);
        assert_eq!(r.wall[0].spans, 3);
        assert_eq!(r.wall[1].phase, PhaseKind::Pack);
        // Same-labelled spans merge.
        let rb = r
            .wall_labels
            .iter()
            .find(|l| l.label == "gp:recursive-bisection")
            .unwrap();
        assert!((rb.time - 1.0).abs() < 1e-12);
        assert_eq!(rb.spans, 2);
        let md = markdown(&r);
        assert!(md.contains("Host wall-clock spans"));
        assert!(md.contains("gp:kway-refine"));
    }
}
