#![warn(missing_docs)]

//! # sf2d-obs
//!
//! Observability for the sf2d simulator: structured per-rank/per-phase
//! **trace events**, a per-rank **metrics registry**, and a post-run
//! **critical-path analyzer** over the α-β-γ timeline.
//!
//! The facade is **zero-cost when disabled**: every instrumentation site
//! guards on [`enabled()`] — a thread-local boolean read — before touching
//! anything, so the SpMV hot loop does no allocation and no locking with
//! tracing off (property-tested in `sf2d-spmv` to be bit-identical in both
//! results and ledger charges either way).
//!
//! State is **thread-local** by design: the simulator orchestrates every
//! run from one thread, so a thread-local tracer makes concurrent tests
//! hermetic and needs no locks. Code running *off* the orchestrator
//! thread — the persistent pool workers in `sf2d-par` — emits through the
//! sharded [`worker`] path instead: per-worker buffers behind a
//! [`WorkerTracer`] handle, drained at quiescence and merged back into
//! the thread-local stream via [`record_all()`].
//!
//! ## Usage
//!
//! ```
//! use sf2d_obs as obs;
//! use sf2d_obs::PhaseKind;
//!
//! obs::enable();
//! let v = obs::trace_span!(PhaseKind::Pack, "demo:pack", { 21 * 2 });
//! obs::counter!("demo.packs", 0, 1);
//! let events = obs::take_events();
//! obs::disable();
//! assert_eq!(v, 42);
//! assert_eq!(events.len(), 1);
//! ```
//!
//! ## Environment knobs
//!
//! * `SF2D_TRACE=<path>` — enables tracing in binaries that call
//!   [`install_from_env()`] and names the output file;
//! * `SF2D_TRACE_FORMAT=chrome|jsonl` — output format (default `chrome`,
//!   loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)).

pub mod analysis;
pub mod event;
pub mod mem;
pub mod registry;
pub mod sink;
pub mod worker;

pub use analysis::{analyze, BoundTerm, CostParams, CriticalPathReport, WallLabel, WallPhase};
pub use event::{PhaseKind, RankSample, TraceEvent};
pub use mem::{record_mem_stats, CountingAlloc, MemStats};
pub use registry::{Histogram, MetricsRegistry};
pub use worker::{SharedTracer, WorkerTracer};

use std::cell::{Cell, RefCell};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Trace output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome `trace_event` JSON (`chrome://tracing`, Perfetto).
    Chrome,
    /// One serde-serialized event per line.
    Jsonl,
}

impl TraceFormat {
    /// Parses `SF2D_TRACE_FORMAT` values; unknown strings mean Chrome.
    pub fn from_str_lossy(s: &str) -> TraceFormat {
        match s.trim().to_ascii_lowercase().as_str() {
            "jsonl" | "json-lines" | "events" => TraceFormat::Jsonl,
            _ => TraceFormat::Chrome,
        }
    }
}

/// Where and how [`finish()`] writes the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Output path.
    pub path: PathBuf,
    /// Output format.
    pub format: TraceFormat,
}

struct Tracer {
    events: Vec<TraceEvent>,
    registry: MetricsRegistry,
    origin: Option<Instant>,
    config: Option<TraceConfig>,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static TRACER: RefCell<Tracer> = RefCell::new(Tracer {
        events: Vec::new(),
        registry: MetricsRegistry::new(),
        origin: None,
        config: None,
    });
}

/// Whether tracing is enabled on this thread. The only cost instrumented
/// code pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Enables tracing on this thread (events accumulate in memory until
/// [`take_events()`] or [`finish()`]).
pub fn enable() {
    ENABLED.with(|e| e.set(true));
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        if t.origin.is_none() {
            t.origin = Some(Instant::now());
        }
    });
}

/// Disables tracing on this thread. Buffered events stay available.
pub fn disable() {
    ENABLED.with(|e| e.set(false));
}

/// Enables tracing and remembers where [`finish()`] should write.
pub fn install(config: TraceConfig) {
    TRACER.with(|t| t.borrow_mut().config = Some(config));
    enable();
}

/// Reads `SF2D_TRACE` / `SF2D_TRACE_FORMAT`; when `SF2D_TRACE` names a
/// path, installs it and returns `true`. The no-trace path costs one env
/// lookup at startup — nothing per event.
pub fn install_from_env() -> bool {
    match std::env::var("SF2D_TRACE") {
        Ok(path) if !path.trim().is_empty() => {
            let format = std::env::var("SF2D_TRACE_FORMAT")
                .map(|s| TraceFormat::from_str_lossy(&s))
                .unwrap_or(TraceFormat::Chrome);
            install(TraceConfig {
                path: PathBuf::from(path),
                format,
            });
            true
        }
        _ => false,
    }
}

/// Records a pre-built event (no-op when disabled).
pub fn record(event: TraceEvent) {
    if !enabled() {
        return;
    }
    TRACER.with(|t| t.borrow_mut().events.push(event));
}

/// Records a batch of pre-built events (no-op when disabled) — the merge
/// point for events drained from a [`SharedTracer`]'s worker shards.
pub fn record_all(events: Vec<TraceEvent>) {
    if !enabled() || events.is_empty() {
        return;
    }
    TRACER.with(|t| t.borrow_mut().events.extend(events));
}

/// Records one closed BSP superstep (no-op when disabled). Called by the
/// cost ledger with the per-rank samples it just charged.
pub fn record_superstep(step: u64, phase: PhaseKind, t_start: f64, samples: Vec<RankSample>) {
    record(TraceEvent::Superstep {
        step,
        phase,
        t_start,
        samples,
    });
}

/// Seconds of wall clock since tracing was enabled on this thread.
pub fn wall_now() -> f64 {
    TRACER.with(|t| {
        t.borrow()
            .origin
            .map(|o| o.elapsed().as_secs_f64())
            .unwrap_or(0.0)
    })
}

/// Records a host-side wall-clock span (no-op when disabled).
pub fn record_wall_span(kind: PhaseKind, label: &str, t_start: f64, dur: f64) {
    record(TraceEvent::WallSpan {
        kind,
        label: label.to_string(),
        t_start,
        dur,
    });
}

/// Records a simulated-clock span (no-op when disabled).
pub fn record_sim_span(kind: PhaseKind, label: String, t_start: f64, t_end: f64) {
    record(TraceEvent::SimSpan {
        kind,
        label,
        t_start,
        t_end,
    });
}

/// Runs `f` against this thread's metrics registry when tracing is
/// enabled; returns `None` otherwise.
pub fn with_registry<R>(f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    Some(TRACER.with(|t| f(&mut t.borrow_mut().registry)))
}

/// Drains and returns this thread's buffered events.
pub fn take_events() -> Vec<TraceEvent> {
    TRACER.with(|t| std::mem::take(&mut t.borrow_mut().events))
}

/// Drains and returns this thread's metrics registry.
pub fn take_registry() -> MetricsRegistry {
    TRACER.with(|t| std::mem::take(&mut t.borrow_mut().registry))
}

/// Writes `events` to `path` in `format`.
pub fn write_events(
    path: &Path,
    format: TraceFormat,
    events: &[TraceEvent],
) -> std::io::Result<()> {
    let text = match format {
        TraceFormat::Chrome => sink::chrome_trace_json(events),
        TraceFormat::Jsonl => sink::events_jsonl(events),
    };
    std::fs::write(path, text)
}

/// Finishes tracing on this thread: if a [`TraceConfig`] was installed,
/// drains the buffered events, writes them, disables tracing, and returns
/// the path written (with the events, so callers can analyze them too).
/// Without a config, drains and disables but writes nothing.
pub fn finish() -> std::io::Result<Option<(PathBuf, Vec<TraceEvent>)>> {
    let config = TRACER.with(|t| t.borrow_mut().config.take());
    let events = take_events();
    disable();
    match config {
        Some(cfg) => {
            write_events(&cfg.path, cfg.format, &events)?;
            Ok(Some((cfg.path, events)))
        }
        None => Ok(None),
    }
}

/// Times `$body` as a wall-clock span of `$kind` labelled `$label` when
/// tracing is enabled; compiles to a bare branch around `$body` otherwise.
#[macro_export]
macro_rules! trace_span {
    ($kind:expr, $label:expr, $body:expr) => {{
        if $crate::enabled() {
            let __sf2d_obs_t0 = $crate::wall_now();
            let __sf2d_obs_out = $body;
            let __sf2d_obs_t1 = $crate::wall_now();
            $crate::record_wall_span($kind, $label, __sf2d_obs_t0, __sf2d_obs_t1 - __sf2d_obs_t0);
            __sf2d_obs_out
        } else {
            $body
        }
    }};
}

/// Adds `$delta` to the per-rank counter `$name` when tracing is enabled;
/// a single boolean check otherwise.
#[macro_export]
macro_rules! counter {
    ($name:expr, $rank:expr, $delta:expr) => {
        if $crate::enabled() {
            let _ = $crate::with_registry(|r| r.add($name, $rank as u32, $delta as u64));
        }
    };
}

/// Records `$value` in histogram `$name` when tracing is enabled.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            let _ = $crate::with_registry(|r| r.observe($name, $value as u64));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests in this module mutate the same thread-local tracer; Rust's
    // test harness runs each #[test] on its own thread, so they are
    // hermetic.

    #[test]
    fn disabled_by_default_and_records_nothing() {
        assert!(!enabled());
        record_superstep(0, PhaseKind::Expand, 0.0, vec![]);
        counter!("c", 0, 1);
        histogram!("h", 1);
        let out = trace_span!(PhaseKind::Pack, "noop", 7);
        assert_eq!(out, 7);
        assert!(take_events().is_empty());
        assert!(take_registry().is_empty());
        assert!(with_registry(|_| ()).is_none());
    }

    #[test]
    fn enabled_records_and_drains() {
        enable();
        record_superstep(
            0,
            PhaseKind::Expand,
            0.0,
            vec![RankSample {
                rank: 0,
                time: 1.0,
                msgs: 1,
                bytes: 8,
                flops: 0,
            }],
        );
        let out = trace_span!(PhaseKind::Pack, "spanned", 1 + 1);
        counter!("c", 3, 5);
        histogram!("h", 9);
        disable();
        assert_eq!(out, 2);
        let events = take_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], TraceEvent::Superstep { .. }));
        match &events[1] {
            TraceEvent::WallSpan { label, dur, .. } => {
                assert_eq!(label, "spanned");
                assert!(*dur >= 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let reg = take_registry();
        assert_eq!(reg.counter("c", 3), 5);
        assert_eq!(reg.histogram("h").unwrap().count, 1);
        // Drained: a second take is empty.
        assert!(take_events().is_empty());
    }

    #[test]
    fn finish_writes_the_installed_path() {
        let dir = std::env::temp_dir().join("sf2d-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("finish_writes.json");
        install(TraceConfig {
            path: path.clone(),
            format: TraceFormat::Chrome,
        });
        record_superstep(
            0,
            PhaseKind::Sum,
            0.0,
            vec![RankSample {
                rank: 0,
                time: 2.0,
                msgs: 0,
                bytes: 0,
                flops: 2,
            }],
        );
        let (written, events) = finish().unwrap().expect("config installed");
        assert_eq!(written, path);
        assert_eq!(events.len(), 1);
        assert!(!enabled());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(sink::validate_chrome_trace(&text), Ok(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn finish_without_config_is_a_silent_drain() {
        enable();
        record_wall_span(PhaseKind::Other, "x", 0.0, 1.0);
        assert!(finish().unwrap().is_none());
        assert!(!enabled());
        assert!(take_events().is_empty());
    }

    #[test]
    fn format_parsing_defaults_to_chrome() {
        assert_eq!(TraceFormat::from_str_lossy("jsonl"), TraceFormat::Jsonl);
        assert_eq!(TraceFormat::from_str_lossy("JSONL"), TraceFormat::Jsonl);
        assert_eq!(TraceFormat::from_str_lossy("chrome"), TraceFormat::Chrome);
        assert_eq!(TraceFormat::from_str_lossy("garbage"), TraceFormat::Chrome);
    }

    #[test]
    fn wall_clock_is_monotonic_within_a_trace() {
        enable();
        let a = wall_now();
        let b = wall_now();
        assert!(b >= a);
        disable();
    }
}
