//! Export sinks: Chrome `trace_event` JSON and JSONL event logs.
//!
//! The Chrome format loads directly in `chrome://tracing` and Perfetto:
//! every superstep sample becomes one complete (`"ph":"X"`) event with
//! **pid = rank** and **tid = phase kind**, on the simulated clock in
//! microseconds; host-side wall spans land under a dedicated
//! [`HOST_PID`] process and solver-iteration sim spans under
//! [`SIM_PID`]. The writer emits fields in a fixed order
//! (`name, cat, ph, ts, dur, pid, tid, args`) so traces are byte-stable
//! for golden-file testing.

use std::fmt::Write as _;

use crate::event::{PhaseKind, TraceEvent};

/// Chrome-trace process id for host-side (wall-clock) spans.
pub const HOST_PID: u32 = 1_000_000;
/// Chrome-trace process id for solver-level simulated-clock spans.
pub const SIM_PID: u32 = 999_999;

/// Formats a f64 as compact JSON (shortest round-trip decimal).
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn push_complete_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    cat: &str,
    ts_us: f64,
    dur_us: f64,
    pid: u32,
    tid: u32,
    args: &[(&str, u64)],
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{",
        escape(name),
        cat,
        num(ts_us),
        num(dur_us),
        pid,
        tid
    );
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
    }
    out.push_str("}}");
}

fn push_metadata(out: &mut String, first: &mut bool, kind: &str, pid: u32, tid: u32, name: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    );
}

/// Renders events as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;

    // Process/thread metadata: one process per rank seen, plus the host
    // and sim-driver processes; one named thread per phase kind.
    let mut ranks: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Superstep { samples, .. } => Some(samples.iter().map(|s| s.rank)),
            _ => None,
        })
        .flatten()
        .collect();
    ranks.sort_unstable();
    ranks.dedup();
    let has_wall = events
        .iter()
        .any(|e| matches!(e, TraceEvent::WallSpan { .. }));
    let has_sim = events
        .iter()
        .any(|e| matches!(e, TraceEvent::SimSpan { .. }));
    let mut step_kinds: Vec<PhaseKind> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Superstep { phase, .. } => Some(*phase),
            _ => None,
        })
        .collect();
    step_kinds.sort_unstable();
    step_kinds.dedup();
    for &r in &ranks {
        push_metadata(
            &mut out,
            &mut first,
            "process_name",
            r,
            0,
            &format!("rank {r}"),
        );
        for k in &step_kinds {
            push_metadata(&mut out, &mut first, "thread_name", r, k.tid(), k.label());
        }
    }
    if has_sim {
        push_metadata(
            &mut out,
            &mut first,
            "process_name",
            SIM_PID,
            0,
            "solver (sim clock)",
        );
    }
    if has_wall {
        push_metadata(
            &mut out,
            &mut first,
            "process_name",
            HOST_PID,
            0,
            "host (wall clock)",
        );
    }

    for ev in events {
        match ev {
            TraceEvent::Superstep {
                step,
                phase,
                t_start,
                samples,
            } => {
                for s in samples {
                    push_complete_event(
                        &mut out,
                        &mut first,
                        phase.label(),
                        "superstep",
                        t_start * 1e6,
                        s.time * 1e6,
                        s.rank,
                        phase.tid(),
                        &[
                            ("step", *step),
                            ("msgs", s.msgs),
                            ("bytes", s.bytes),
                            ("flops", s.flops),
                        ],
                    );
                }
            }
            TraceEvent::WallSpan {
                kind,
                label,
                t_start,
                dur,
            } => {
                push_complete_event(
                    &mut out,
                    &mut first,
                    label,
                    "host",
                    t_start * 1e6,
                    dur * 1e6,
                    HOST_PID,
                    kind.tid(),
                    &[],
                );
            }
            TraceEvent::SimSpan {
                kind,
                label,
                t_start,
                t_end,
            } => {
                push_complete_event(
                    &mut out,
                    &mut first,
                    label,
                    "sim",
                    t_start * 1e6,
                    (t_end - t_start) * 1e6,
                    SIM_PID,
                    kind.tid(),
                    &[],
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders events as JSON lines (one serde-serialized event per line).
pub fn events_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("event serializes"));
        out.push('\n');
    }
    out
}

type JsonObj = [(String, serde::Value)];

fn field<'v>(obj: &'v JsonObj, name: &str) -> Option<&'v serde::Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn as_str(v: &serde::Value) -> Option<&str> {
    match v {
        serde::Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_f64(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::F64(x) => Some(*x),
        serde::Value::U64(u) => Some(*u as f64),
        serde::Value::I64(i) => Some(*i as f64),
        _ => None,
    }
}

fn as_u64(v: &serde::Value) -> Option<u64> {
    match v {
        serde::Value::U64(u) => Some(*u),
        _ => None,
    }
}

/// Validates that `text` is a well-formed Chrome trace our tools emit:
/// a `traceEvents` array whose entries are metadata or complete events
/// with numeric `ts`/`dur`/`pid`/`tid`. Returns the number of non-metadata
/// events, or a description of the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc: serde::Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let top = doc.as_map().ok_or("top level not an object")?;
    let events = match field(top, "traceEvents") {
        Some(serde::Value::Seq(items)) => items,
        _ => return Err("missing traceEvents array".to_string()),
    };
    let mut n = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let obj = ev.as_map().ok_or(format!("event {i} not an object"))?;
        let ph = field(obj, "ph")
            .and_then(as_str)
            .ok_or(format!("event {i} missing ph"))?;
        match ph {
            "M" => {
                let named = field(obj, "args")
                    .and_then(|a| a.as_map())
                    .and_then(|a| field(a, "name"))
                    .is_some();
                if !named {
                    return Err(format!("metadata event {i} missing args.name"));
                }
            }
            "X" => {
                for key in ["name", "cat"] {
                    if field(obj, key).and_then(as_str).is_none() {
                        return Err(format!("event {i} missing string {key}"));
                    }
                }
                for key in ["ts", "dur"] {
                    let ok = field(obj, key).and_then(as_f64).is_some_and(|v| v >= 0.0);
                    if !ok {
                        return Err(format!("event {i} missing non-negative {key}"));
                    }
                }
                for key in ["pid", "tid"] {
                    if field(obj, key).and_then(as_u64).is_none() {
                        return Err(format!("event {i} missing numeric {key}"));
                    }
                }
                n += 1;
            }
            other => return Err(format!("event {i} has unexpected ph {other:?}")),
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RankSample;

    fn demo_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Superstep {
                step: 0,
                phase: PhaseKind::Expand,
                t_start: 0.0,
                samples: vec![
                    RankSample {
                        rank: 0,
                        time: 1.5e-6,
                        msgs: 1,
                        bytes: 8,
                        flops: 0,
                    },
                    RankSample {
                        rank: 1,
                        time: 3.0e-6,
                        msgs: 2,
                        bytes: 16,
                        flops: 0,
                    },
                ],
            },
            TraceEvent::WallSpan {
                kind: PhaseKind::Pack,
                label: "spmv:expand-pack".into(),
                t_start: 0.001,
                dur: 0.0005,
            },
            TraceEvent::SimSpan {
                kind: PhaseKind::SolverIteration,
                label: "restart 0".into(),
                t_start: 0.0,
                t_end: 4.5e-6,
            },
        ]
    }

    #[test]
    fn chrome_trace_has_pid_rank_tid_phase() {
        let json = chrome_trace_json(&demo_events());
        // rank 1's Expand sample: pid=1, tid=Expand's tid (0).
        assert!(json.contains("\"pid\":1,\"tid\":0"));
        assert!(json.contains("\"name\":\"Expand\""));
        // Field order pinned for golden stability.
        assert!(json.contains("{\"name\":\"Expand\",\"cat\":\"superstep\",\"ph\":\"X\",\"ts\":0,"));
        assert!(json.contains(&format!("\"pid\":{HOST_PID}")));
        assert!(json.contains(&format!("\"pid\":{SIM_PID}")));
    }

    #[test]
    fn chrome_trace_validates() {
        let json = chrome_trace_json(&demo_events());
        // 2 samples + 1 wall span + 1 sim span.
        assert_eq!(validate_chrome_trace(&json), Ok(4));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\"}]}").is_err()
        );
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}"), Ok(0));
    }

    #[test]
    fn jsonl_round_trips() {
        let events = demo_events();
        let text = events_jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        let back: Vec<TraceEvent> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(back, events);
    }

    #[test]
    fn numbers_format_compactly() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(2.0), "2");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn labels_are_escaped() {
        let ev = vec![TraceEvent::WallSpan {
            kind: PhaseKind::Other,
            label: "quote\"back\\slash".into(),
            t_start: 0.0,
            dur: 1.0,
        }];
        let json = chrome_trace_json(&ev);
        assert!(validate_chrome_trace(&json).is_ok());
        assert!(json.contains("quote\\\"back\\\\slash"));
    }
}
