//! Export sinks: Chrome `trace_event` JSON and JSONL event logs.
//!
//! The Chrome format loads directly in `chrome://tracing` and Perfetto:
//! every superstep sample becomes one complete (`"ph":"X"`) event with
//! **pid = rank** and **tid = phase kind**, on the simulated clock in
//! microseconds; host-side wall spans land under a dedicated
//! [`HOST_PID`] process and solver-iteration sim spans under
//! [`SIM_PID`]. The writer emits fields in a fixed order
//! (`name, cat, ph, ts, dur, pid, tid, args`) so traces are byte-stable
//! for golden-file testing.

use std::fmt::Write as _;

use crate::event::{PhaseKind, TraceEvent};
use crate::registry::MetricsRegistry;

/// Chrome-trace process id for host-side (wall-clock) spans.
pub const HOST_PID: u32 = 1_000_000;
/// Chrome-trace process id for solver-level simulated-clock spans.
pub const SIM_PID: u32 = 999_999;
/// Chrome-trace process id for pool-worker (wall-clock) spans: one track
/// (`tid = worker`) per pool worker, so batches are attributable to the
/// worker that ran them.
pub const POOL_PID: u32 = 1_000_001;

/// Formats a f64 as compact JSON (shortest round-trip decimal).
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn push_complete_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    cat: &str,
    ts_us: f64,
    dur_us: f64,
    pid: u32,
    tid: u32,
    args: &[(&str, u64)],
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{",
        escape(name),
        cat,
        num(ts_us),
        num(dur_us),
        pid,
        tid
    );
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
    }
    out.push_str("}}");
}

fn push_metadata(out: &mut String, first: &mut bool, kind: &str, pid: u32, tid: u32, name: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    );
}

/// Renders events as a Chrome `trace_event` JSON document.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;

    // Process/thread metadata: one process per rank seen, plus the host
    // and sim-driver processes; one named thread per phase kind.
    let mut ranks: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Superstep { samples, .. } => Some(samples.iter().map(|s| s.rank)),
            _ => None,
        })
        .flatten()
        .collect();
    ranks.sort_unstable();
    ranks.dedup();
    let has_wall = events
        .iter()
        .any(|e| matches!(e, TraceEvent::WallSpan { .. }));
    let has_sim = events
        .iter()
        .any(|e| matches!(e, TraceEvent::SimSpan { .. }));
    let mut workers: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::WorkerSpan { worker, .. } => Some(*worker),
            _ => None,
        })
        .collect();
    workers.sort_unstable();
    workers.dedup();
    let mut step_kinds: Vec<PhaseKind> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Superstep { phase, .. } => Some(*phase),
            _ => None,
        })
        .collect();
    step_kinds.sort_unstable();
    step_kinds.dedup();
    for &r in &ranks {
        push_metadata(
            &mut out,
            &mut first,
            "process_name",
            r,
            0,
            &format!("rank {r}"),
        );
        for k in &step_kinds {
            push_metadata(&mut out, &mut first, "thread_name", r, k.tid(), k.label());
        }
    }
    if has_sim {
        push_metadata(
            &mut out,
            &mut first,
            "process_name",
            SIM_PID,
            0,
            "solver (sim clock)",
        );
    }
    if has_wall {
        push_metadata(
            &mut out,
            &mut first,
            "process_name",
            HOST_PID,
            0,
            "host (wall clock)",
        );
    }
    if !workers.is_empty() {
        push_metadata(
            &mut out,
            &mut first,
            "process_name",
            POOL_PID,
            0,
            "pool workers (wall clock)",
        );
        for &w in &workers {
            let name = if w == 0 {
                "worker 0 (submitter)".to_string()
            } else {
                format!("worker {w}")
            };
            push_metadata(&mut out, &mut first, "thread_name", POOL_PID, w, &name);
        }
    }

    for ev in events {
        match ev {
            TraceEvent::Superstep {
                step,
                phase,
                t_start,
                samples,
            } => {
                for s in samples {
                    push_complete_event(
                        &mut out,
                        &mut first,
                        phase.label(),
                        "superstep",
                        t_start * 1e6,
                        s.time * 1e6,
                        s.rank,
                        phase.tid(),
                        &[
                            ("step", *step),
                            ("msgs", s.msgs),
                            ("bytes", s.bytes),
                            ("flops", s.flops),
                        ],
                    );
                }
            }
            TraceEvent::WallSpan {
                kind,
                label,
                t_start,
                dur,
            } => {
                push_complete_event(
                    &mut out,
                    &mut first,
                    label,
                    "host",
                    t_start * 1e6,
                    dur * 1e6,
                    HOST_PID,
                    kind.tid(),
                    &[],
                );
            }
            TraceEvent::SimSpan {
                kind,
                label,
                t_start,
                t_end,
            } => {
                push_complete_event(
                    &mut out,
                    &mut first,
                    label,
                    "sim",
                    t_start * 1e6,
                    (t_end - t_start) * 1e6,
                    SIM_PID,
                    kind.tid(),
                    &[],
                );
            }
            TraceEvent::WorkerSpan {
                worker,
                kind: _,
                label,
                t_start,
                dur,
                jobs,
            } => {
                push_complete_event(
                    &mut out,
                    &mut first,
                    label,
                    "pool",
                    t_start * 1e6,
                    dur * 1e6,
                    POOL_PID,
                    *worker,
                    &[("worker", *worker as u64), ("jobs", *jobs)],
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders events as JSON lines (one serde-serialized event per line).
pub fn events_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("event serializes"));
        out.push('\n');
    }
    out
}

type JsonObj = [(String, serde::Value)];

fn field<'v>(obj: &'v JsonObj, name: &str) -> Option<&'v serde::Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn as_str(v: &serde::Value) -> Option<&str> {
    match v {
        serde::Value::Str(s) => Some(s),
        _ => None,
    }
}

fn as_f64(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::F64(x) => Some(*x),
        serde::Value::U64(u) => Some(*u as f64),
        serde::Value::I64(i) => Some(*i as f64),
        _ => None,
    }
}

fn as_u64(v: &serde::Value) -> Option<u64> {
    match v {
        serde::Value::U64(u) => Some(*u),
        _ => None,
    }
}

/// Validates that `text` is a well-formed Chrome trace our tools emit:
/// a `traceEvents` array whose entries are metadata or complete events
/// with numeric `ts`/`dur`/`pid`/`tid`. Returns the number of non-metadata
/// events, or a description of the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc: serde::Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let top = doc.as_map().ok_or("top level not an object")?;
    let events = match field(top, "traceEvents") {
        Some(serde::Value::Seq(items)) => items,
        _ => return Err("missing traceEvents array".to_string()),
    };
    let mut n = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let obj = ev.as_map().ok_or(format!("event {i} not an object"))?;
        let ph = field(obj, "ph")
            .and_then(as_str)
            .ok_or(format!("event {i} missing ph"))?;
        match ph {
            "M" => {
                let named = field(obj, "args")
                    .and_then(|a| a.as_map())
                    .and_then(|a| field(a, "name"))
                    .is_some();
                if !named {
                    return Err(format!("metadata event {i} missing args.name"));
                }
            }
            "X" => {
                for key in ["name", "cat"] {
                    if field(obj, key).and_then(as_str).is_none() {
                        return Err(format!("event {i} missing string {key}"));
                    }
                }
                for key in ["ts", "dur"] {
                    let ok = field(obj, key).and_then(as_f64).is_some_and(|v| v >= 0.0);
                    if !ok {
                        return Err(format!("event {i} missing non-negative {key}"));
                    }
                }
                for key in ["pid", "tid"] {
                    if field(obj, key).and_then(as_u64).is_none() {
                        return Err(format!("event {i} missing numeric {key}"));
                    }
                }
                n += 1;
            }
            other => return Err(format!("event {i} has unexpected ph {other:?}")),
        }
    }
    Ok(n)
}

/// Validates the per-worker pool tracks of a Chrome trace: every
/// [`POOL_PID`] span must carry a `worker` arg equal to its `tid` (tid
/// stability), each track's spans must be start-sorted and non-overlapping
/// (begin/end matched — complete events close before the next opens, up to
/// a 1 ns slack), and each track needs a `thread_name` metadata entry.
/// Returns the number of worker spans (0 when the trace has no pool
/// process at all — traces without a pool are still valid).
pub fn validate_worker_tracks(text: &str) -> Result<usize, String> {
    let doc: serde::Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let top = doc.as_map().ok_or("top level not an object")?;
    let events = match field(top, "traceEvents") {
        Some(serde::Value::Seq(items)) => items,
        _ => return Err("missing traceEvents array".to_string()),
    };
    let mut named_tids: Vec<u64> = Vec::new();
    // tid -> end of the last span seen on that track.
    let mut track_end: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    let mut n = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let obj = ev.as_map().ok_or(format!("event {i} not an object"))?;
        if field(obj, "pid").and_then(as_u64) != Some(POOL_PID as u64) {
            continue;
        }
        let tid = field(obj, "tid")
            .and_then(as_u64)
            .ok_or(format!("pool event {i} missing numeric tid"))?;
        let ph = field(obj, "ph").and_then(as_str).unwrap_or("");
        if ph == "M" {
            if field(obj, "name").and_then(as_str) == Some("thread_name") {
                named_tids.push(tid);
            }
            continue;
        }
        if ph != "X" {
            return Err(format!("pool event {i} has unexpected ph {ph:?}"));
        }
        let worker = field(obj, "args")
            .and_then(|a| a.as_map())
            .and_then(|a| field(a, "worker"))
            .and_then(as_u64)
            .ok_or(format!("pool event {i} missing args.worker"))?;
        if worker != tid {
            return Err(format!(
                "pool event {i}: worker arg {worker} does not match tid {tid}"
            ));
        }
        let ts = field(obj, "ts").and_then(as_f64).unwrap_or(-1.0);
        let dur = field(obj, "dur").and_then(as_f64).unwrap_or(-1.0);
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("pool event {i} missing non-negative ts/dur"));
        }
        // 1 ns slack (ts is in µs) absorbs float rounding at span joints.
        let end = track_end.entry(tid).or_insert(0.0);
        if ts + 1e-3 < *end {
            return Err(format!(
                "pool event {i} on track {tid} starts at {ts} before the previous span ended at {end}"
            ));
        }
        *end = end.max(ts + dur);
        n += 1;
    }
    for tid in track_end.keys() {
        if !named_tids.contains(tid) {
            return Err(format!("pool track {tid} has no thread_name metadata"));
        }
    }
    Ok(n)
}

/// Renders a metrics registry as a markdown summary: a counter table
/// (total and bottleneck-rank reductions) and one line per histogram with
/// count, mean, **p50/p99**, and min/max.
pub fn registry_markdown(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    let counters = reg.counter_names();
    if !counters.is_empty() {
        out.push_str("| counter | total | max (rank) |\n|---|---:|---:|\n");
        for name in &counters {
            let (rank, max) = reg.max(name).unwrap_or((0, 0));
            let _ = writeln!(out, "| {name} | {} | {max} (r{rank}) |", reg.sum(name));
        }
    }
    let hist_names = reg.histogram_names();
    if !hist_names.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("| histogram | count | mean | p50 | p99 | min | max |\n|---|---:|---:|---:|---:|---:|---:|\n");
        for name in &hist_names {
            let h = reg.histogram(name).expect("listed name");
            let _ = writeln!(
                out,
                "| {name} | {} | {:.1} | {:.1} | {:.1} | {} | {} |",
                h.count,
                h.mean(),
                h.p50().unwrap_or(0.0),
                h.p99().unwrap_or(0.0),
                if h.count == 0 { 0 } else { h.min },
                h.max
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RankSample;

    fn demo_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Superstep {
                step: 0,
                phase: PhaseKind::Expand,
                t_start: 0.0,
                samples: vec![
                    RankSample {
                        rank: 0,
                        time: 1.5e-6,
                        msgs: 1,
                        bytes: 8,
                        flops: 0,
                    },
                    RankSample {
                        rank: 1,
                        time: 3.0e-6,
                        msgs: 2,
                        bytes: 16,
                        flops: 0,
                    },
                ],
            },
            TraceEvent::WallSpan {
                kind: PhaseKind::Pack,
                label: "spmv:expand-pack".into(),
                t_start: 0.001,
                dur: 0.0005,
            },
            TraceEvent::SimSpan {
                kind: PhaseKind::SolverIteration,
                label: "restart 0".into(),
                t_start: 0.0,
                t_end: 4.5e-6,
            },
        ]
    }

    #[test]
    fn chrome_trace_has_pid_rank_tid_phase() {
        let json = chrome_trace_json(&demo_events());
        // rank 1's Expand sample: pid=1, tid=Expand's tid (0).
        assert!(json.contains("\"pid\":1,\"tid\":0"));
        assert!(json.contains("\"name\":\"Expand\""));
        // Field order pinned for golden stability.
        assert!(json.contains("{\"name\":\"Expand\",\"cat\":\"superstep\",\"ph\":\"X\",\"ts\":0,"));
        assert!(json.contains(&format!("\"pid\":{HOST_PID}")));
        assert!(json.contains(&format!("\"pid\":{SIM_PID}")));
    }

    #[test]
    fn chrome_trace_validates() {
        let json = chrome_trace_json(&demo_events());
        // 2 samples + 1 wall span + 1 sim span.
        assert_eq!(validate_chrome_trace(&json), Ok(4));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\"}]}").is_err()
        );
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}"), Ok(0));
    }

    #[test]
    fn jsonl_round_trips() {
        let events = demo_events();
        let text = events_jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        let back: Vec<TraceEvent> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(back, events);
    }

    #[test]
    fn numbers_format_compactly() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(2.0), "2");
        assert_eq!(num(1.5), "1.5");
    }

    fn worker_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::WorkerSpan {
                worker: 0,
                kind: PhaseKind::Partition,
                label: "match".into(),
                t_start: 0.0,
                dur: 0.001,
                jobs: 4,
            },
            TraceEvent::WorkerSpan {
                worker: 0,
                kind: PhaseKind::Partition,
                label: "refine".into(),
                t_start: 0.002,
                dur: 0.001,
                jobs: 2,
            },
            TraceEvent::WorkerSpan {
                worker: 1,
                kind: PhaseKind::Partition,
                label: "match".into(),
                t_start: 0.0001,
                dur: 0.0015,
                jobs: 3,
            },
        ]
    }

    #[test]
    fn worker_spans_get_pool_tracks_and_validate() {
        let json = chrome_trace_json(&worker_events());
        assert!(json.contains(&format!("\"pid\":{POOL_PID}")));
        assert!(json.contains("worker 0 (submitter)"));
        assert!(json.contains("\"worker\":1"));
        assert_eq!(validate_chrome_trace(&json), Ok(3));
        assert_eq!(validate_worker_tracks(&json), Ok(3));
    }

    #[test]
    fn worker_validator_rejects_overlap_and_tid_mismatch() {
        // Overlapping spans on one track.
        let mut evs = worker_events();
        evs.push(TraceEvent::WorkerSpan {
            worker: 0,
            kind: PhaseKind::Partition,
            label: "overlap".into(),
            t_start: 0.0025,
            dur: 0.001,
            jobs: 1,
        });
        let json = chrome_trace_json(&evs);
        assert!(validate_worker_tracks(&json).is_err());
        // Hand-forged tid/worker mismatch.
        let forged = format!(
            "{{\"traceEvents\":[{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{POOL_PID},\"tid\":2,\"args\":{{\"name\":\"w\"}}}},\n{{\"name\":\"b\",\"cat\":\"pool\",\"ph\":\"X\",\"ts\":0,\"dur\":1,\"pid\":{POOL_PID},\"tid\":2,\"args\":{{\"worker\":3,\"jobs\":1}}}}]}}"
        );
        let err = validate_worker_tracks(&forged).unwrap_err();
        assert!(err.contains("does not match tid"), "{err}");
    }

    #[test]
    fn worker_validator_requires_thread_names() {
        let forged = format!(
            "{{\"traceEvents\":[{{\"name\":\"b\",\"cat\":\"pool\",\"ph\":\"X\",\"ts\":0,\"dur\":1,\"pid\":{POOL_PID},\"tid\":2,\"args\":{{\"worker\":2,\"jobs\":1}}}}]}}"
        );
        let err = validate_worker_tracks(&forged).unwrap_err();
        assert!(err.contains("thread_name"), "{err}");
    }

    #[test]
    fn poolless_traces_have_zero_worker_spans() {
        let json = chrome_trace_json(&demo_events());
        assert_eq!(validate_worker_tracks(&json), Ok(0));
    }

    #[test]
    fn registry_markdown_prints_p50_p99_alongside_mean() {
        let mut reg = MetricsRegistry::new();
        reg.add("pool.jobs", 0, 7);
        for v in [1u64, 2, 4, 8, 1000] {
            reg.observe("chunk_service_ns", v);
        }
        let md = registry_markdown(&reg);
        assert!(md.contains("| histogram | count | mean | p50 | p99 | min | max |"));
        assert!(md.contains("chunk_service_ns | 5 | 203.0 |"), "{md}");
        assert!(md.contains("| pool.jobs | 7 |"));
        let h = reg.histogram("chunk_service_ns").unwrap();
        assert!(h.p50().unwrap() <= h.p99().unwrap());
        assert!(registry_markdown(&MetricsRegistry::new()).is_empty());
    }

    #[test]
    fn labels_are_escaped() {
        let ev = vec![TraceEvent::WallSpan {
            kind: PhaseKind::Other,
            label: "quote\"back\\slash".into(),
            t_start: 0.0,
            dur: 1.0,
        }];
        let json = chrome_trace_json(&ev);
        assert!(validate_chrome_trace(&json).is_ok());
        assert!(json.contains("quote\\\"back\\\\slash"));
    }
}
