//! The event model: what a trace is made of.
//!
//! Two clocks coexist in the simulator, and the event model keeps them
//! apart explicitly:
//!
//! * **simulated time** — the α-β-γ seconds the [`CostLedger`] accumulates;
//!   every [`TraceEvent::Superstep`] carries one per-rank sample set on
//!   this clock, so the per-rank timeline of a solve can be reconstructed
//!   exactly (BSP semantics: a superstep starts for every rank at the same
//!   simulated instant, each rank is busy for its own sample time, and the
//!   step closes at the maximum);
//! * **wall-clock time** — how long the *simulator itself* spent in a code
//!   region ([`TraceEvent::WallSpan`]), used to profile the pack / route /
//!   unpack machinery of the compiled SpMV and the partitioners.
//!
//! [`CostLedger`]: ../../sf2d_sim/cost/struct.CostLedger.html

/// The kind of phase an event belongs to. A superset of the simulator's
/// ledger phases plus the host-side sub-phases the instrumented code emits.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum PhaseKind {
    /// Expand: ship `x_j` to ranks owning column-`j` nonzeros.
    Expand,
    /// Local `y += A_loc x` compute.
    LocalCompute,
    /// Fold: ship partial `y_i` to the row owner.
    Fold,
    /// Summing received partials.
    Sum,
    /// Dense vector work (axpy, dots, orthogonalization).
    VectorOp,
    /// Collectives (allreduce in dots/norms).
    Collective,
    /// Host-side: packing values into send buffers.
    Pack,
    /// Host-side: routing messages between logical ranks.
    Route,
    /// Host-side: unpacking received values (incl. scatter-adds).
    Unpack,
    /// Graph/hypergraph partitioning work.
    Partition,
    /// One outer iteration (restart cycle) of an iterative solver.
    SolverIteration,
    /// Degraded-mode communication injected by the chaos engine:
    /// retransmissions, NACKs, duplicate copies, latency spikes, stalls.
    Retransmit,
    /// Checkpoint/restart traffic (snapshot writes, post-crash restores).
    Recovery,
    /// Local Gustavson multiply in SpGEMM (`C_partial = A_loc · B_rows`).
    Multiply,
    /// Merging partial SpGEMM output rows received during the fold.
    Merge,
    /// Anything else.
    Other,
    /// Stage-wise block broadcasts (Sparse SUMMA row/col fragments).
    /// Appended after [`PhaseKind::Other`] so every existing tid — and
    /// the golden Chrome traces that pin them — stays unchanged.
    Broadcast,
}

impl PhaseKind {
    /// Every kind, in `tid` order — the Chrome-trace thread layout.
    pub const ALL: [PhaseKind; 17] = [
        PhaseKind::Expand,
        PhaseKind::LocalCompute,
        PhaseKind::Fold,
        PhaseKind::Sum,
        PhaseKind::VectorOp,
        PhaseKind::Collective,
        PhaseKind::Pack,
        PhaseKind::Route,
        PhaseKind::Unpack,
        PhaseKind::Partition,
        PhaseKind::SolverIteration,
        PhaseKind::Retransmit,
        PhaseKind::Recovery,
        PhaseKind::Multiply,
        PhaseKind::Merge,
        PhaseKind::Other,
        PhaseKind::Broadcast,
    ];

    /// Stable human-readable label (also the Chrome-trace thread name).
    pub fn label(&self) -> &'static str {
        match self {
            PhaseKind::Expand => "Expand",
            PhaseKind::LocalCompute => "LocalCompute",
            PhaseKind::Fold => "Fold",
            PhaseKind::Sum => "Sum",
            PhaseKind::VectorOp => "VectorOp",
            PhaseKind::Collective => "Collective",
            PhaseKind::Pack => "Pack",
            PhaseKind::Route => "Route",
            PhaseKind::Unpack => "Unpack",
            PhaseKind::Partition => "Partition",
            PhaseKind::SolverIteration => "SolverIteration",
            PhaseKind::Retransmit => "Retransmit",
            PhaseKind::Recovery => "Recovery",
            PhaseKind::Multiply => "Multiply",
            PhaseKind::Merge => "Merge",
            PhaseKind::Other => "Other",
            PhaseKind::Broadcast => "Broadcast",
        }
    }

    /// Stable Chrome-trace thread id for this kind (`tid=phase`).
    pub fn tid(&self) -> u32 {
        PhaseKind::ALL
            .iter()
            .position(|k| k == self)
            .expect("kind listed in ALL") as u32
    }
}

/// One rank's share of one superstep: its simulated busy time plus the raw
/// cost terms that produced it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankSample {
    /// Logical rank.
    pub rank: u32,
    /// Simulated seconds this rank was busy in the step.
    pub time: f64,
    /// Point-to-point messages charged (both endpoints).
    pub msgs: u64,
    /// Bytes charged.
    pub bytes: u64,
    /// Flops charged.
    pub flops: u64,
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TraceEvent {
    /// A closed BSP superstep on the simulated clock: every rank started at
    /// `t_start` and was busy for its sample's time; the step closed at
    /// `t_start + max(sample.time)`.
    Superstep {
        /// Ordinal of the step within its ledger.
        step: u64,
        /// Which phase kind the ledger charged.
        phase: PhaseKind,
        /// Simulated start time (the ledger total before the step).
        t_start: f64,
        /// One sample per rank.
        samples: Vec<RankSample>,
    },
    /// A host-side span on the wall clock (seconds since tracing was
    /// enabled on this thread).
    WallSpan {
        /// Sub-phase kind.
        kind: PhaseKind,
        /// Free-form label, e.g. `spmv:expand-pack`.
        label: String,
        /// Wall seconds since tracing began.
        t_start: f64,
        /// Duration in wall seconds.
        dur: f64,
    },
    /// A span on the simulated clock that groups supersteps — e.g. one
    /// solver restart cycle covering everything the ledger charged inside.
    SimSpan {
        /// Span kind.
        kind: PhaseKind,
        /// Free-form label, e.g. `krylov-schur:restart 3`.
        label: String,
        /// Simulated start time.
        t_start: f64,
        /// Simulated end time.
        t_end: f64,
    },
    /// A wall-clock span emitted by one worker of a host-side thread pool
    /// (see `sf2d_obs::worker`). Rendered on its own per-worker Chrome
    /// track under [`crate::sink::POOL_PID`], so pool batches can be
    /// attributed to the worker that ran them.
    WorkerSpan {
        /// Pool worker id (0 = the submitting thread).
        worker: u32,
        /// Sub-phase kind.
        kind: PhaseKind,
        /// Free-form label, e.g. `match` — the batch's phase tag.
        label: String,
        /// Wall seconds since the worker tracer's clock base.
        t_start: f64,
        /// Duration in wall seconds.
        dur: f64,
        /// Jobs (chunks) this worker ran within the batch.
        jobs: u64,
    },
}

impl TraceEvent {
    /// The phase kind of any event variant.
    pub fn kind(&self) -> PhaseKind {
        match self {
            TraceEvent::Superstep { phase, .. } => *phase,
            TraceEvent::WallSpan { kind, .. }
            | TraceEvent::SimSpan { kind, .. }
            | TraceEvent::WorkerSpan { kind, .. } => *kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_stable_and_unique() {
        let tids: Vec<u32> = PhaseKind::ALL.iter().map(|k| k.tid()).collect();
        assert_eq!(tids, (0..17).collect::<Vec<u32>>());
        assert_eq!(PhaseKind::Expand.tid(), 0);
        assert_eq!(PhaseKind::Retransmit.tid(), 11);
        assert_eq!(PhaseKind::Recovery.tid(), 12);
        assert_eq!(PhaseKind::Multiply.tid(), 13);
        assert_eq!(PhaseKind::Merge.tid(), 14);
        assert_eq!(PhaseKind::Other.tid(), 15);
        assert_eq!(PhaseKind::Broadcast.tid(), 16);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = PhaseKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), PhaseKind::ALL.len());
    }

    #[test]
    fn kind_accessor_covers_all_variants() {
        let s = TraceEvent::Superstep {
            step: 0,
            phase: PhaseKind::Expand,
            t_start: 0.0,
            samples: Vec::new(),
        };
        assert_eq!(s.kind(), PhaseKind::Expand);
        let w = TraceEvent::WallSpan {
            kind: PhaseKind::Pack,
            label: "x".into(),
            t_start: 0.0,
            dur: 1.0,
        };
        assert_eq!(w.kind(), PhaseKind::Pack);
        let g = TraceEvent::SimSpan {
            kind: PhaseKind::SolverIteration,
            label: "r".into(),
            t_start: 0.0,
            t_end: 1.0,
        };
        assert_eq!(g.kind(), PhaseKind::SolverIteration);
        let p = TraceEvent::WorkerSpan {
            worker: 3,
            kind: PhaseKind::Partition,
            label: "match".into(),
            t_start: 0.0,
            dur: 1.0,
            jobs: 4,
        };
        assert_eq!(p.kind(), PhaseKind::Partition);
    }
}
