//! The sharded multi-thread emission path: per-worker event buffers
//! behind a [`WorkerTracer`] handle.
//!
//! The facade in [`crate`] is thread-local on purpose — it keeps
//! concurrent tests hermetic and the hot path lock-free — but that means
//! code running *off* the orchestrator thread (the persistent pool
//! workers in `sf2d-par`) could not emit events at all. This module adds
//! the missing path without giving up either property:
//!
//! * **one shard per worker** — every worker appends only to its own
//!   `Vec<TraceEvent>`, so the shard lock is always uncontended and an
//!   append never waits on another thread (the mutex exists only to make
//!   the hand-off at drain time safe);
//! * **zero-cost when disabled** — [`WorkerTracer::enabled`] is a single
//!   relaxed atomic load, the only cost instrumented pool code pays when
//!   tracing is off;
//! * **drained at quiescence** — the owner calls [`SharedTracer::drain`]
//!   only after every batch has joined (the pool's submit path already
//!   guarantees this), merges the events into the thread-local buffer via
//!   [`crate::record_all`], and the usual `take_events` → sink flow takes
//!   over. Nothing global is touched, so concurrent tests stay hermetic.
//!
//! The worker clock is aligned with the orchestrator's: `enable` captures
//! the caller's current [`crate::wall_now`] as the base, so worker spans
//! land on the same timeline as the `trace_span!` phase spans that
//! enclose them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{PhaseKind, TraceEvent};

struct ClockBase {
    origin: Instant,
    base_secs: f64,
}

/// The shared core of the multi-thread emission path: an enable flag, a
/// clock base, and one event shard per worker slot.
pub struct SharedTracer {
    enabled: AtomicBool,
    clock: Mutex<Option<ClockBase>>,
    shards: Vec<Mutex<Vec<TraceEvent>>>,
}

impl SharedTracer {
    /// A tracer with `slots` worker shards (slot 0 conventionally belongs
    /// to the submitting thread), initially disabled.
    pub fn new(slots: usize) -> Arc<SharedTracer> {
        Arc::new(SharedTracer {
            enabled: AtomicBool::new(false),
            clock: Mutex::new(None),
            shards: (0..slots.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
        })
    }

    /// Number of worker shards.
    pub fn slots(&self) -> usize {
        self.shards.len()
    }

    /// Enables emission. `base_secs` is the caller's clock reading at this
    /// instant (typically [`crate::wall_now`]), so worker timestamps align
    /// with the orchestrator's span timeline.
    pub fn enable(&self, base_secs: f64) {
        *self.clock.lock().expect("clock lock") = Some(ClockBase {
            origin: Instant::now(),
            base_secs,
        });
        self.enabled.store(true, Ordering::Release);
    }

    /// Disables emission; buffered events stay available for [`drain`].
    ///
    /// [`drain`]: SharedTracer::drain
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether emission is on — one relaxed load, the entire disabled-path
    /// cost.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Seconds on the aligned clock (0 before the first `enable`).
    pub fn wall_now(&self) -> f64 {
        self.clock
            .lock()
            .expect("clock lock")
            .as_ref()
            .map(|c| c.base_secs + c.origin.elapsed().as_secs_f64())
            .unwrap_or(0.0)
    }

    /// A lightweight per-worker handle for shard `worker`
    /// (clamped to the last shard).
    pub fn handle(self: &Arc<SharedTracer>, worker: u32) -> WorkerTracer {
        WorkerTracer {
            tracer: Arc::clone(self),
            worker: worker.min(self.shards.len() as u32 - 1),
        }
    }

    /// Drains every shard, returning the merged events in worker order.
    /// Call only at quiescence (no batch in flight) — the pool's submit
    /// path guarantees this by construction.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.append(&mut shard.lock().expect("shard lock"));
        }
        out
    }
}

/// A per-worker emission handle: appends to its own shard only, so
/// recording never contends with another worker.
#[derive(Clone)]
pub struct WorkerTracer {
    tracer: Arc<SharedTracer>,
    worker: u32,
}

impl WorkerTracer {
    /// Whether emission is on (one relaxed load).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// This handle's worker id.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Seconds on the aligned clock.
    pub fn wall_now(&self) -> f64 {
        self.tracer.wall_now()
    }

    /// Records a [`TraceEvent::WorkerSpan`] on this worker's shard
    /// (no-op when disabled).
    pub fn record_span(&self, kind: PhaseKind, label: &str, t_start: f64, dur: f64, jobs: u64) {
        if !self.enabled() {
            return;
        }
        self.tracer.shards[self.worker as usize]
            .lock()
            .expect("shard lock")
            .push(TraceEvent::WorkerSpan {
                worker: self.worker,
                kind,
                label: label.to_string(),
                t_start,
                dur,
                jobs,
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = SharedTracer::new(4);
        assert!(!t.is_enabled());
        t.handle(1)
            .record_span(PhaseKind::Partition, "x", 0.0, 1.0, 2);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn enabled_records_in_worker_order() {
        let t = SharedTracer::new(3);
        t.enable(0.0);
        t.handle(2)
            .record_span(PhaseKind::Partition, "late", 0.5, 0.1, 1);
        t.handle(0)
            .record_span(PhaseKind::Partition, "early", 0.0, 0.1, 1);
        t.disable();
        let events = t.drain();
        assert_eq!(events.len(), 2);
        // Shard order = worker order, whatever the append order was.
        match &events[0] {
            TraceEvent::WorkerSpan { worker, label, .. } => {
                assert_eq!(*worker, 0);
                assert_eq!(label, "early");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(t.drain().is_empty(), "drain empties the shards");
    }

    #[test]
    fn clock_base_aligns_timestamps() {
        let t = SharedTracer::new(1);
        t.enable(100.0);
        let now = t.wall_now();
        assert!((100.0..101.0).contains(&now), "aligned to base: {now}");
    }

    #[test]
    fn concurrent_appends_from_many_threads_land_in_their_shards() {
        let t = SharedTracer::new(4);
        t.enable(0.0);
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let h = t.handle(w);
                s.spawn(move || {
                    for i in 0..50 {
                        h.record_span(PhaseKind::Partition, "batch", i as f64, 0.5, 1);
                    }
                });
            }
        });
        let events = t.drain();
        assert_eq!(events.len(), 200);
        let mut per_worker = [0usize; 4];
        for e in &events {
            if let TraceEvent::WorkerSpan { worker, .. } = e {
                per_worker[*worker as usize] += 1;
            }
        }
        assert_eq!(per_worker, [50; 4]);
    }

    #[test]
    fn handle_clamps_out_of_range_worker() {
        let t = SharedTracer::new(2);
        assert_eq!(t.handle(9).worker(), 1);
    }
}
