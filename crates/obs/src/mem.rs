//! Heap instrumentation: a counting [`GlobalAlloc`] wrapper plus
//! snapshot plumbing into the metrics registry.
//!
//! The paper-scale benchmark (`bench_scale`) must demonstrate that a
//! p = 16,384 sweep runs in **bounded live memory** — which needs an
//! actual measurement, not an estimate. [`CountingAlloc`] wraps the
//! system allocator and keeps three global counters: live bytes, the
//! high-water mark of live bytes, and the allocation count. The counters
//! are process-wide relaxed atomics: cheap enough to leave on in a
//! benchmark binary, honest enough to catch an O(p²) buffer sneaking
//! back in.
//!
//! Install it per binary (NOT crate-wide — a global allocator in a
//! library would tax every consumer):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: sf2d_obs::mem::CountingAlloc = sf2d_obs::mem::CountingAlloc;
//! ```
//!
//! then bracket regions of interest with [`reset_peak`] + [`snapshot`],
//! and optionally publish the numbers as registry gauges with
//! [`record_mem_stats`].

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::registry::MetricsRegistry;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts live bytes, the live-bytes
/// high-water mark, and allocation/free counts.
///
/// All bookkeeping is relaxed atomics; the only ordering that matters is
/// each thread seeing its own alloc/free pairs, which relaxed provides.
/// The peak is maintained with a `fetch_max`, so concurrent allocations
/// can only *under*-report the peak by the amount of an in-flight
/// racing update — never over-report.
pub struct CountingAlloc;

impl CountingAlloc {
    fn note_alloc(size: usize) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    fn note_free(size: usize) {
        FREES.fetch_add(1, Ordering::Relaxed);
        LIVE.fetch_sub(size as u64, Ordering::Relaxed);
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the counters
// never affect layout or pointer values.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            CountingAlloc::note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CountingAlloc::note_free(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            CountingAlloc::note_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Count as one free + one alloc so live bytes stay exact.
            CountingAlloc::note_free(layout.size());
            CountingAlloc::note_alloc(new_size);
        }
        p
    }
}

/// A point-in-time reading of the allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Currently-live heap bytes.
    pub live_bytes: u64,
    /// High-water mark of live bytes since the last [`reset_peak`].
    pub peak_live_bytes: u64,
    /// Allocations since process start.
    pub allocs: u64,
    /// Frees since process start.
    pub frees: u64,
}

/// Reads the current counters. All zeros unless [`CountingAlloc`] is
/// installed as the global allocator.
pub fn snapshot() -> MemStats {
    MemStats {
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_live_bytes: PEAK.load(Ordering::Relaxed),
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
    }
}

/// Restarts the peak tracking from the current live level, so the next
/// [`snapshot`] reports the high-water mark of the region *since this
/// call* — bracket a phase with `reset_peak()` … `snapshot()` to measure
/// its peak in isolation.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Publishes a [`MemStats`] reading into a registry under the `mem.*`
/// names (gauges `mem.live_bytes` / `mem.peak_live_bytes`, counters
/// `mem.allocs` / `mem.frees`), attributed to `rank` (use 0 for
/// process-wide readings).
pub fn record_mem_stats(reg: &mut MetricsRegistry, rank: u32, stats: &MemStats) {
    reg.set_gauge("mem.live_bytes", rank, stats.live_bytes as f64);
    reg.set_gauge("mem.peak_live_bytes", rank, stats.peak_live_bytes as f64);
    reg.add("mem.allocs", rank, stats.allocs);
    reg.add("mem.frees", rank, stats.frees);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does NOT install CountingAlloc globally (that would
    // tax the whole suite), so these tests drive the GlobalAlloc impl
    // directly and check the counters move exactly as the calls dictate.

    #[test]
    fn alloc_free_cycle_balances_and_tracks_peak() {
        let before = snapshot();
        let layout = Layout::from_size_align(1 << 16, 8).unwrap();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            assert!(!p.is_null());
            let mid = snapshot();
            assert_eq!(mid.live_bytes, before.live_bytes + (1 << 16));
            assert_eq!(mid.allocs, before.allocs + 1);
            assert!(mid.peak_live_bytes >= mid.live_bytes);
            CountingAlloc.dealloc(p, layout);
        }
        let after = snapshot();
        assert_eq!(after.live_bytes, before.live_bytes);
        assert_eq!(after.frees, before.frees + 1);
        // The peak remembers the transient allocation...
        assert!(after.peak_live_bytes >= before.live_bytes + (1 << 16));
        // ...until explicitly reset back to the live level.
        reset_peak();
        assert_eq!(snapshot().peak_live_bytes, snapshot().live_bytes);
    }

    #[test]
    fn realloc_keeps_live_bytes_exact() {
        let before = snapshot();
        let layout = Layout::from_size_align(1024, 8).unwrap();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            let q = CountingAlloc.realloc(p, layout, 4096);
            assert!(!q.is_null());
            assert_eq!(snapshot().live_bytes, before.live_bytes + 4096);
            CountingAlloc.dealloc(q, Layout::from_size_align(4096, 8).unwrap());
        }
        assert_eq!(snapshot().live_bytes, before.live_bytes);
    }

    #[test]
    fn record_publishes_registry_rows() {
        let mut reg = MetricsRegistry::new();
        let stats = MemStats {
            live_bytes: 10,
            peak_live_bytes: 99,
            allocs: 7,
            frees: 5,
        };
        record_mem_stats(&mut reg, 0, &stats);
        assert_eq!(reg.gauge("mem.live_bytes", 0), Some(10.0));
        assert_eq!(reg.gauge("mem.peak_live_bytes", 0), Some(99.0));
        assert_eq!(reg.counter("mem.allocs", 0), 7);
        assert_eq!(reg.counter("mem.frees", 0), 5);
    }
}
