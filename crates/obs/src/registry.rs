//! The per-rank metrics registry: monotonic counters, gauges, and
//! log2-bucketed histograms.
//!
//! A registry is an owned value — the instrumented code fills one (either
//! explicitly, like [`spmv_metrics`], or through the global facade's
//! [`counter!`](crate::counter) / [`histogram!`](crate::histogram) macros)
//! and the analyzers consume it. Counters and gauges are keyed by
//! `(name, rank)` so max-over-ranks and sum-over-ranks — the bottleneck vs
//! total distinction the paper's tables revolve around — are both one
//! accessor away.
//!
//! [`spmv_metrics`]: ../../sf2d_spmv/diagnose/fn.spmv_metrics.html

use std::collections::BTreeMap;

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket `i` holds values `v` with `bit_length(v) == i`, i.e. bucket 0 is
/// exactly `{0}`, bucket 1 is `{1}`, bucket 2 is `[2,4)`, bucket `i` is
/// `[2^(i-1), 2^i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Rebuilds a histogram from raw parts — the bridge for lock-free
    /// recorders (e.g. the pool's atomic service-time histogram) that
    /// accumulate the same 65 log2 buckets in `AtomicU64`s and want the
    /// quantile accessors afterwards. Panics unless `buckets.len() == 65`.
    pub fn from_raw(buckets: Vec<u64>, sum: u64, min: u64, max: u64) -> Histogram {
        assert_eq!(buckets.len(), 65, "log2 histogram has 65 buckets");
        let count = buckets.iter().sum();
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded observations,
    /// interpolated within the containing log2 bucket; `None` when empty.
    ///
    /// The estimate walks buckets to the observation of rank
    /// `ceil(q * count)` and interpolates linearly inside the bucket's
    /// value range `[2^(i-1), 2^i)`, then clamps to the exact recorded
    /// `[min, max]` — so single-valued buckets and the extreme quantiles
    /// (q=0, q=1) are exact, and boundary values (0, 1, powers of two)
    /// never round out of their bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based. The extreme ranks are
        // the tracked min/max themselves — return them exactly.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank <= 1 {
            return Some(self.min as f64);
        }
        if rank >= self.count {
            return Some(self.max as f64);
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let est = if i == 0 {
                    0.0
                } else {
                    let lo = (1u64 << (i - 1)) as f64;
                    let hi = if i >= 64 {
                        u64::MAX as f64
                    } else {
                        (1u64 << i) as f64
                    };
                    // Midpoint position of the target rank within this
                    // bucket (rank r of c occupies [(r-1)/c, r/c)).
                    let frac = ((rank - seen) as f64 - 0.5) / c as f64;
                    lo + (hi - lo) * frac
                };
                return Some(est.clamp(self.min as f64, self.max as f64));
            }
            seen += c;
        }
        Some(self.max as f64)
    }

    /// Median estimate (`None` when empty).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate (`None` when empty).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// The non-empty buckets as `(upper_bound_exclusive, count)` pairs;
    /// bucket 0's bound is 1 (it holds only zeros).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let bound = if i >= 64 { u64::MAX } else { 1u64 << i };
                (bound, c)
            })
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-rank counters, gauges, and named histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<(String, u32), u64>,
    gauges: BTreeMap<(String, u32), f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the monotonic counter `name` for `rank`.
    pub fn add(&mut self, name: &str, rank: u32, delta: u64) {
        *self.counters.entry((name.to_string(), rank)).or_insert(0) += delta;
    }

    /// Sets the gauge `name` for `rank`.
    pub fn set_gauge(&mut self, name: &str, rank: u32, value: f64) {
        self.gauges.insert((name.to_string(), rank), value);
    }

    /// Records an observation in histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Merges an externally-maintained histogram into histogram `name` —
    /// how a component that keeps its own [`Histogram`] (e.g. a serving
    /// engine's batch-size distribution) publishes it without replaying
    /// every observation.
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Reads one counter (0 when never written).
    pub fn counter(&self, name: &str, rank: u32) -> u64 {
        self.counters
            .get(&(name.to_string(), rank))
            .copied()
            .unwrap_or(0)
    }

    /// Reads one gauge.
    pub fn gauge(&self, name: &str, rank: u32) -> Option<f64> {
        self.gauges.get(&(name.to_string(), rank)).copied()
    }

    /// Reads one histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All `(rank, value)` pairs of a counter, rank-ascending.
    pub fn per_rank(&self, name: &str) -> Vec<(u32, u64)> {
        self.counters
            .range((name.to_string(), 0)..=(name.to_string(), u32::MAX))
            .map(|(&(_, r), &v)| (r, v))
            .collect()
    }

    /// Sum of a counter over all ranks — the "total" reduction.
    pub fn sum(&self, name: &str) -> u64 {
        self.per_rank(name).iter().map(|&(_, v)| v).sum()
    }

    /// The rank holding the maximum of a counter and that maximum — the
    /// "bottleneck" reduction (first rank wins ties). `None` if unwritten.
    pub fn max(&self, name: &str) -> Option<(u32, u64)> {
        self.per_rank(name)
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Histogram names, sorted.
    pub fn histogram_names(&self) -> Vec<String> {
        self.histograms.keys().cloned().collect()
    }

    /// Distinct counter names, sorted.
    pub fn counter_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.counters.keys().map(|(n, _)| n.clone()).collect();
        names.dedup();
        names
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one (counters add, gauges take the
    /// other's value, histograms merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for ((name, rank), v) in &other.counters {
            *self.counters.entry((name.clone(), *rank)).or_insert(0) += v;
        }
        for ((name, rank), v) in &other.gauges {
            self.gauges.insert((name.clone(), *rank), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_rank() {
        let mut r = MetricsRegistry::new();
        r.add("msgs", 0, 3);
        r.add("msgs", 0, 2);
        r.add("msgs", 2, 7);
        assert_eq!(r.counter("msgs", 0), 5);
        assert_eq!(r.counter("msgs", 1), 0);
        assert_eq!(r.per_rank("msgs"), vec![(0, 5), (2, 7)]);
        assert_eq!(r.sum("msgs"), 12);
        assert_eq!(r.max("msgs"), Some((2, 7)));
    }

    #[test]
    fn max_ties_take_the_first_rank() {
        let mut r = MetricsRegistry::new();
        r.add("m", 3, 9);
        r.add("m", 1, 9);
        assert_eq!(r.max("m"), Some((1, 9)));
        assert_eq!(r.max("missing"), None);
    }

    #[test]
    fn per_rank_does_not_leak_other_names() {
        let mut r = MetricsRegistry::new();
        r.add("a", 0, 1);
        r.add("b", 0, 2);
        assert_eq!(r.per_rank("a"), vec![(0, 1)]);
        assert_eq!(r.counter_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1011);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        // 0 -> bucket 0; 1,1 -> bucket 1; 2,3 -> bucket 2; 4 -> bucket 3;
        // 1000 -> bucket 10 (bound 1024).
        assert_eq!(
            h.nonzero_buckets(),
            vec![(1, 1), (2, 2), (4, 2), (8, 1), (1024, 1)]
        );
        assert!((h.mean() - 1011.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn quantile_exact_on_bucket_boundary_values() {
        // Boundary values each live alone in their bucket, so the clamp to
        // [min, max] makes every quantile of a single-value histogram exact.
        for v in [0u64, 1, 2, 4, 1 << 20, 1 << 63, u64::MAX] {
            let mut h = Histogram::default();
            h.observe(v);
            for q in [0.0, 0.5, 0.99, 1.0] {
                let got = h.quantile(q).unwrap();
                assert_eq!(got, v as f64, "v={v} q={q}");
            }
        }
    }

    #[test]
    fn quantile_orders_zero_one_and_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 4, 8, 16, 32, 64] {
            h.observe(v);
        }
        // 8 observations: p50 targets rank 4 (value 4's bucket), p99 the
        // last (64). Interpolation stays inside each bucket's range.
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
        assert_eq!(h.quantile(1.0).unwrap(), 64.0);
        let p50 = h.p50().unwrap();
        assert!((4.0..8.0).contains(&p50), "p50={p50}");
        assert_eq!(h.p99().unwrap(), 64.0);
        // Monotone in q.
        let mut prev = -1.0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let x = h.quantile(q).unwrap();
            assert!(x >= prev, "quantile not monotone at q={q}");
            prev = x;
        }
    }

    #[test]
    fn quantile_top_bucket_clamps_to_max() {
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX - 1);
        h.observe(0);
        assert_eq!(h.quantile(1.0).unwrap(), u64::MAX as f64);
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
    }

    #[test]
    fn from_raw_round_trips_observe() {
        let mut h = Histogram::default();
        for v in [3u64, 5, 9, 1000] {
            h.observe(v);
        }
        let raw = Histogram::from_raw(
            h.nonzero_buckets()
                .iter()
                .fold(vec![0u64; 65], |mut b, &(bound, c)| {
                    let i = if bound == u64::MAX {
                        64
                    } else {
                        bound.trailing_zeros() as usize
                    };
                    b[i] = c;
                    b
                }),
            h.sum,
            h.min,
            h.max,
        );
        assert_eq!(raw, h);
        assert_eq!(raw.p50(), h.p50());
    }

    #[test]
    fn gauges_and_merge() {
        let mut a = MetricsRegistry::new();
        a.add("c", 0, 1);
        a.set_gauge("g", 0, 0.5);
        a.observe("h", 8);
        let mut b = MetricsRegistry::new();
        b.add("c", 0, 2);
        b.set_gauge("g", 0, 0.9);
        b.observe("h", 9);
        a.merge(&b);
        assert_eq!(a.counter("c", 0), 3);
        assert_eq!(a.gauge("g", 0), Some(0.9));
        assert_eq!(a.histogram("h").unwrap().count, 2);
        assert!(!a.is_empty());
        assert!(MetricsRegistry::new().is_empty());
    }
}
