//! The distributed SpGEMM kernel: row-wise Gustavson locally, with the
//! remote B rows fetched through the matrix's **existing** expand plan and
//! the partial C rows returned through its fold plan.
//!
//! ```text
//! 1. Expand:   ship B row j to every rank holding a nonzero a_ij   (import plan)
//! 2. Multiply: C_partial = A_loc · B_rows (Gustavson + SPA, per rank)
//! 3. Fold:     ship partial C rows to their row owners              (export plan)
//! 4. Merge:    owner merges own + received partials per row (SPA)
//! 5. nnz(C):   allreduce of the per-rank output sizes              (collective)
//! ```
//!
//! The communication *pattern* is exactly the SpMV's — the set of B rows a
//! rank needs equals the set of x entries it imports (its column map), and
//! the set of C rows it contributes equals the set of y partials it
//! exports (its row map) — so the compiled local-index pack/unpack
//! schedules of [`CompiledSpmv`](sf2d_spmv::compiled::CompiledSpmv) drive
//! both exchanges unchanged, and the paper's 2D message bound
//! (≤ pr + pc − 2 sends per rank across the two exchanges) carries over
//! verbatim. Only the payloads differ: messages carry variable-length
//! serialized rows (`[nnz, cols..., vals...]` per planned gid) instead of
//! one double per gid, so the per-phase costs are measured off the actual
//! payload lengths at both endpoints rather than read from the frozen
//! SpMV cost vectors.
//!
//! Determinism: every rank multiplies its A-block rows in ascending
//! column order and every owner merges per-row contributions in a fixed
//! rank order (own partial first, then sources ascending — the order the
//! fold plan already delivers), so results are bitwise reproducible for
//! any `threads` setting, and bitwise equal to the serial Gustavson
//! oracle ([`sf2d_graph::spgemm`]) whenever the products sum exactly
//! (e.g. the unit-pattern generator matrices, whose A·Aᵀ entries are
//! small integers).

use std::sync::Arc;

use sf2d_graph::CsrMatrix;
use sf2d_obs::{trace_span, PhaseKind};
use sf2d_sim::collective::{allreduce_cost, allreduce_sum_u64};
use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};
use sf2d_sim::runtime::par_ranks;
use sf2d_spmv::compiled::{PhasePlan, RankPlan};
use sf2d_spmv::distmat::{DistCsrMatrix, RankBlock};
use sf2d_spmv::map::VectorMap;

use crate::workspace::{BRowRef, MsgBufs, RankSpgemmScratch, SpgemmWorkspace};

/// Per-rank traffic of one exchange phase (expand or fold).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Messages sent by each rank (one per compiled pack entry).
    pub send_msgs: Vec<u64>,
    /// Doubles sent by each rank (serialized payload lengths).
    pub send_doubles: Vec<u64>,
    /// Billed per-rank cost — latency and bytes charged at **both**
    /// endpoints, the same convention as
    /// [`CommPlan::phase_costs`](sf2d_spmv::plan::CommPlan::phase_costs).
    pub costs: Vec<PhaseCost>,
}

impl ExchangeStats {
    /// Max messages sent by any rank in this exchange.
    pub fn max_send_msgs(&self) -> u64 {
        self.send_msgs.iter().copied().max().unwrap_or(0)
    }

    /// Total doubles moved by this exchange.
    pub fn total_volume(&self) -> u64 {
        self.send_doubles.iter().sum()
    }
}

/// The distributed product `C = A·B`: per-rank owned row blocks plus the
/// measured per-phase traffic and work.
#[derive(Debug, Clone)]
pub struct DistSpgemm {
    /// Row distribution of C (shared with A's vector map).
    pub vmap: Arc<VectorMap>,
    /// Global column count of C (= B's).
    pub ncols: usize,
    /// Owned rows per rank: `locals[r]` is `nlocal(r) × ncols`, row `lid`
    /// holding global row `vmap.gids(r)[lid]`.
    pub locals: Vec<CsrMatrix>,
    /// Global `nnz(C)`, closed by the allreduce.
    pub nnz: u64,
    /// Expand-phase traffic (B-row fetch).
    pub expand: ExchangeStats,
    /// Fold-phase traffic (partial C rows to owners).
    pub fold: ExchangeStats,
    /// Per-rank multiply flops (2 per product term).
    pub multiply_flops: Vec<u64>,
    /// Per-rank merge flops (1 per merged-in entry).
    pub merge_flops: Vec<u64>,
}

impl DistSpgemm {
    /// Reassembles the global C (test oracle). Rows come out in global
    /// order with sorted columns, so the result compares bitwise against
    /// the serial [`sf2d_graph::spgemm`] when the sums are exact.
    pub fn to_global(&self) -> CsrMatrix {
        let n = self.vmap.n();
        let mut rowptr = Vec::with_capacity(n + 1);
        rowptr.push(0usize);
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        for gid in 0..n as u32 {
            let r = self.vmap.owner(gid) as usize;
            let (cols, vals) = self.locals[r].row(self.vmap.lid(gid));
            colidx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            rowptr.push(colidx.len());
        }
        CsrMatrix::from_parts(n, self.ncols, rowptr, colidx, values)
            .expect("per-rank blocks satisfy CSR invariants")
    }
}

/// Serializes one sparse row onto a message payload:
/// `[nnz, cols..., vals...]`, columns as (exactly representable) doubles.
#[inline]
pub(crate) fn push_row(buf: &mut Vec<f64>, row: (&[u32], &[f64])) {
    let (cols, vals) = row;
    buf.push(cols.len() as f64);
    buf.extend(cols.iter().map(|&c| c as f64));
    buf.extend_from_slice(vals);
}

/// Measures one exchange off the resident payload buffers: send side from
/// each rank's own pack buffers, receive side mirrored through the
/// compiled `(src, slot)` unpack entries.
pub(crate) fn exchange_stats(bufs: &[MsgBufs], plan: &PhasePlan) -> ExchangeStats {
    let send_msgs: Vec<u64> = bufs.iter().map(|out| out.nmsgs() as u64).collect();
    let send_doubles: Vec<u64> = bufs.iter().map(|out| out.data.len() as u64).collect();
    let mut costs: Vec<PhaseCost> = send_msgs
        .iter()
        .zip(&send_doubles)
        .map(|(&m, &d)| PhaseCost::comm(m, 8 * d))
        .collect();
    for (r, cost) in costs.iter_mut().enumerate() {
        for e in plan.unpack_entries(r) {
            let doubles = bufs[e.src as usize].msg(e.slot as usize).len() as u64;
            *cost = cost.add(&PhaseCost::comm(1, 8 * doubles));
        }
    }
    ExchangeStats {
        send_msgs,
        send_doubles,
        costs,
    }
}

/// Packs one rank's expand payloads: the B rows named by the compiled
/// pack lids (which index the sender's owned gid list).
pub(crate) fn pack_expand(buf: &mut MsgBufs, plan: RankPlan<'_>, gids: &[u32], b: &CsrMatrix) {
    buf.reset();
    for (_dst, lids, _off) in plan.packs() {
        for &lid in lids {
            push_row(&mut buf.data, b.row(gids[lid as usize] as usize));
        }
        buf.seal();
    }
}

/// Builds the rank's B-row directory: owned slots point at `b` directly,
/// remote slots are decoded out of the senders' payloads into the
/// scratch's `rcols` / `rvals` arrays.
pub(crate) fn decode_expand(
    scratch: &mut RankSpgemmScratch,
    block: &RankBlock,
    plan: RankPlan<'_>,
    ebufs: &[MsgBufs],
) {
    for (_src_lid, xcols_lid) in plan.owned_pairs() {
        scratch.brows[xcols_lid as usize] = BRowRef::Local {
            gid: block.colmap[xcols_lid as usize],
        };
    }
    scratch.rcols.clear();
    scratch.rvals.clear();
    for (src, slot, _payload_off, lids) in plan.unpacks() {
        let data = ebufs[src as usize].msg(slot as usize);
        let mut off = 0usize;
        for &lid in lids {
            let nnz = data[off] as usize;
            off += 1;
            let start = scratch.rcols.len() as u32;
            scratch
                .rcols
                .extend(data[off..off + nnz].iter().map(|&c| c as u32));
            scratch
                .rvals
                .extend_from_slice(&data[off + nnz..off + 2 * nnz]);
            off += 2 * nnz;
            scratch.brows[lid as usize] = BRowRef::Remote {
                off: start,
                len: nnz as u32,
            };
        }
        debug_assert_eq!(off, data.len(), "expand payload framing mismatch");
    }
}

/// Row-wise Gustavson over the rank's local A block: one SPA pass per
/// local row, visiting A entries in ascending column order (the local CSR
/// is colmap-lid sorted and the column map is gid-ascending). Fills the
/// partial-row buffers and returns the number of product terms.
pub(crate) fn gustavson(scratch: &mut RankSpgemmScratch, block: &RankBlock, b: &CsrMatrix) -> u64 {
    let nloc = block.rowmap.len();
    scratch.guard_gen(nloc);
    let RankSpgemmScratch {
        spa_vals,
        spa_stamp,
        spa_gen,
        touched,
        brows,
        rcols,
        rvals,
        part_ptr,
        part_cols,
        part_vals,
        ..
    } = scratch;
    part_ptr.clear();
    part_ptr.push(0);
    part_cols.clear();
    part_vals.clear();
    let mut terms = 0u64;
    for li in 0..nloc {
        *spa_gen += 1;
        let gen = *spa_gen;
        touched.clear();
        let (acols, avals) = block.local.row(li);
        for (&lj, &aij) in acols.iter().zip(avals) {
            let (bcols, bvals): (&[u32], &[f64]) = match brows[lj as usize] {
                BRowRef::Local { gid } => b.row(gid as usize),
                BRowRef::Remote { off, len } => {
                    let (off, len) = (off as usize, len as usize);
                    (&rcols[off..off + len], &rvals[off..off + len])
                }
            };
            for (&k, &bjk) in bcols.iter().zip(bvals) {
                let ku = k as usize;
                if spa_stamp[ku] != gen {
                    spa_stamp[ku] = gen;
                    spa_vals[ku] = aij * bjk;
                    touched.push(k);
                } else {
                    spa_vals[ku] += aij * bjk;
                }
            }
            terms += bcols.len() as u64;
        }
        touched.sort_unstable();
        for &k in touched.iter() {
            part_cols.push(k);
            part_vals.push(spa_vals[k as usize]);
        }
        part_ptr.push(part_cols.len());
    }
    terms
}

/// Packs one rank's fold payloads: the partial C rows named by the
/// compiled pack indices (row-map positions).
pub(crate) fn pack_fold(buf: &mut MsgBufs, plan: RankPlan<'_>, scratch: &RankSpgemmScratch) {
    buf.reset();
    for (_owner, idxs, _off) in plan.packs() {
        for &pi in idxs {
            let (lo, hi) = (
                scratch.part_ptr[pi as usize],
                scratch.part_ptr[pi as usize + 1],
            );
            push_row(
                &mut buf.data,
                (&scratch.part_cols[lo..hi], &scratch.part_vals[lo..hi]),
            );
        }
        buf.seal();
    }
}

/// Merges each owned C row out of the rank's own partial plus the
/// arriving partial rows, in fixed order (own first, then sources
/// ascending), emitting sorted final rows. Returns the number of entries
/// merged (1 flop each, the SpGEMM analogue of the SpMV sum phase).
pub(crate) fn merge_rank(
    scratch: &mut RankSpgemmScratch,
    nlocal: usize,
    plan: RankPlan<'_>,
    fbufs: &[MsgBufs],
) -> u64 {
    scratch.guard_gen(nlocal);
    scratch.own_part.clear();
    scratch.own_part.resize(nlocal, u32::MAX);
    for (pi, y_lid) in plan.owned_pairs() {
        scratch.own_part[y_lid as usize] = pi;
    }
    scratch.incoming.clear();
    for (src, slot, _payload_off, y_lids) in plan.unpacks() {
        let data = fbufs[src as usize].msg(slot as usize);
        let mut off = 0usize;
        for &y_lid in y_lids {
            let nnz = data[off] as usize;
            scratch
                .incoming
                .push((y_lid, src, slot, (off + 1) as u32, nnz as u32));
            off += 1 + 2 * nnz;
        }
        debug_assert_eq!(off, data.len(), "fold payload framing mismatch");
    }
    // Stable by y lid: within a row, contributions stay in message order
    // (sources ascending) — the fixed rank-order reduction.
    scratch.incoming.sort_by_key(|e| e.0);

    let RankSpgemmScratch {
        spa_vals,
        spa_stamp,
        spa_gen,
        touched,
        part_ptr,
        part_cols,
        part_vals,
        own_part,
        incoming,
        out_ptr,
        out_cols,
        out_vals,
        ..
    } = scratch;
    out_ptr.clear();
    out_ptr.push(0);
    out_cols.clear();
    out_vals.clear();
    let mut merged = 0u64;
    let mut cursor = 0usize;
    for (y, &pi) in own_part.iter().enumerate().take(nlocal) {
        *spa_gen += 1;
        let gen = *spa_gen;
        touched.clear();
        let mut add = |k: u32, v: f64| {
            let ku = k as usize;
            if spa_stamp[ku] != gen {
                spa_stamp[ku] = gen;
                spa_vals[ku] = v;
                touched.push(k);
            } else {
                spa_vals[ku] += v;
            }
        };
        if pi != u32::MAX {
            let (lo, hi) = (part_ptr[pi as usize], part_ptr[pi as usize + 1]);
            for (&k, &v) in part_cols[lo..hi].iter().zip(&part_vals[lo..hi]) {
                add(k, v);
            }
            merged += (hi - lo) as u64;
        }
        while cursor < incoming.len() && incoming[cursor].0 as usize == y {
            let (_, src, slot, off, len) = incoming[cursor];
            let data = fbufs[src as usize].msg(slot as usize);
            let (off, len) = (off as usize, len as usize);
            for k in 0..len {
                add(data[off + k] as u32, data[off + len + k]);
            }
            merged += len as u64;
            cursor += 1;
        }
        touched.sort_unstable();
        for &k in touched.iter() {
            out_cols.push(k);
            out_vals.push(spa_vals[k as usize]);
        }
        out_ptr.push(out_cols.len());
    }
    merged
}

/// Assembles the per-rank output blocks and closes the global `nnz(C)`
/// allreduce (one [`Phase::Collective`] superstep).
pub(crate) fn finish(
    a: &DistCsrMatrix,
    bcols: usize,
    ws: &SpgemmWorkspace,
    ledger: &mut CostLedger,
    expand: ExchangeStats,
    fold: ExchangeStats,
) -> DistSpgemm {
    let p = a.nprocs();
    let locals: Vec<CsrMatrix> = ws
        .ranks
        .iter()
        .enumerate()
        .map(|(r, s)| {
            CsrMatrix::from_parts(
                a.vmap.nlocal(r),
                bcols,
                s.out_ptr.clone(),
                s.out_cols.clone(),
                s.out_vals.clone(),
            )
            .expect("merged rows satisfy CSR invariants")
        })
        .collect();
    let partials: Vec<u64> = locals.iter().map(|c| c.nnz() as u64).collect();
    let nnz = allreduce_sum_u64(&partials);
    ledger.superstep_uniform(Phase::Collective, allreduce_cost(p, 1), p);
    DistSpgemm {
        vmap: Arc::clone(&a.vmap),
        ncols: bcols,
        locals,
        nnz,
        expand,
        fold,
        multiply_flops: ws.ranks.iter().map(|s| 2 * s.terms).collect(),
        merge_flops: ws.ranks.iter().map(|s| s.merged).collect(),
    }
}

fn assert_conformal(a: &DistCsrMatrix, b: &CsrMatrix) {
    assert_eq!(
        a.n,
        b.nrows(),
        "spgemm: A is {}x{} but B has {} rows",
        a.n,
        a.n,
        b.nrows()
    );
}

/// Distributed `C = A·B`, charging Expand / Multiply / Fold / Merge /
/// Collective supersteps to the ledger.
///
/// `b` is held globally by the simulator but accessed with distributed
/// discipline: rank `r` reads only the B rows it owns under `a.vmap`
/// (B shares A's row distribution) — every other row it touches travels
/// through the expand exchange and is billed.
///
/// Convenience wrapper over [`spgemm_with`] with a throwaway sequential
/// workspace; iterative callers should hold a [`SpgemmWorkspace`].
pub fn spgemm_dist(a: &DistCsrMatrix, b: &CsrMatrix, ledger: &mut CostLedger) -> DistSpgemm {
    spgemm_with(a, b, ledger, &mut SpgemmWorkspace::new())
}

/// [`spgemm_dist`] through a reusable workspace: scratch buffers and
/// message payloads are borrowed from `ws` and the per-rank phase work
/// fans out across `ws.threads` OS threads (bit-identical for any count).
pub fn spgemm_with(
    a: &DistCsrMatrix,
    b: &CsrMatrix,
    ledger: &mut CostLedger,
    ws: &mut SpgemmWorkspace,
) -> DistSpgemm {
    assert_conformal(a, b);
    ws.ensure(&a.blocks, &a.compiled, b.ncols());
    let threads = ws.threads;
    let compiled = &a.compiled;
    let vmap = &a.vmap;

    // Phase 1 — expand: serialize the planned B rows into the resident
    // send buffers; destinations read them in place via (src, slot).
    trace_span!(PhaseKind::Pack, "spgemm:expand-pack", {
        par_ranks(threads, &mut ws.expand_bufs, |r, buf| {
            pack_expand(buf, compiled.expand_rank(r), vmap.gids(r), b);
        })
    });
    let expand = exchange_stats(&ws.expand_bufs, &compiled.expand);
    ledger.superstep(Phase::Expand, &expand.costs);

    // Phase 2 — decode the arrived rows and run the local Gustavson pass.
    let ebufs = &ws.expand_bufs;
    trace_span!(PhaseKind::Multiply, "spgemm:unpack-multiply", {
        par_ranks(threads, &mut ws.ranks, |r, scratch| {
            decode_expand(scratch, &a.blocks[r], compiled.expand_rank(r), ebufs);
            scratch.terms = gustavson(scratch, &a.blocks[r], b);
        })
    });
    let multiply_costs: Vec<PhaseCost> = ws
        .ranks
        .iter()
        .map(|s| PhaseCost::compute(2 * s.terms))
        .collect();
    ledger.superstep(Phase::Multiply, &multiply_costs);

    // Phase 3 — fold: serialize the partial rows bound for other owners.
    let ranks = &ws.ranks;
    trace_span!(PhaseKind::Pack, "spgemm:fold-pack", {
        par_ranks(threads, &mut ws.fold_bufs, |r, buf| {
            pack_fold(buf, compiled.fold_rank(r), &ranks[r]);
        })
    });
    let fold = exchange_stats(&ws.fold_bufs, &compiled.fold);
    ledger.superstep(Phase::Fold, &fold.costs);

    // Phase 4 — merge at the owners, fixed rank order per row.
    let fbufs = &ws.fold_bufs;
    trace_span!(PhaseKind::Merge, "spgemm:merge", {
        par_ranks(threads, &mut ws.ranks, |r, scratch| {
            scratch.merged = merge_rank(scratch, vmap.nlocal(r), compiled.fold_rank(r), fbufs);
        })
    });
    let merge_costs: Vec<PhaseCost> = ws
        .ranks
        .iter()
        .map(|s| PhaseCost::compute(s.merged))
        .collect();
    ledger.superstep(Phase::Merge, &merge_costs);

    // Phase 5 — close nnz(C) and assemble the output blocks.
    finish(a, b.ncols(), ws, ledger, expand, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::{grid_2d, rmat, RmatConfig};
    use sf2d_graph::spgemm;
    use sf2d_partition::{grid_shape, MatrixDist};
    use sf2d_sim::Machine;

    fn check_layout(a: &CsrMatrix, b: &CsrMatrix, dist: &MatrixDist) {
        let dm = DistCsrMatrix::from_global(a, dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_dist(&dm, b, &mut ledger);
        let want = spgemm(a, b);
        let got = c.to_global();
        assert_eq!(got, want);
        assert_eq!(c.nnz, want.nnz() as u64);
        assert!(ledger.total > 0.0);
    }

    #[test]
    fn all_basic_layouts_match_the_serial_oracle() {
        let a = rmat(&RmatConfig::graph500(6), 11);
        let b = a.transpose();
        let n = a.nrows();
        for p in [1usize, 4, 6] {
            let (pr, pc) = grid_shape(p);
            check_layout(&a, &b, &MatrixDist::block_1d(n, p));
            check_layout(&a, &b, &MatrixDist::random_1d(n, p, 5));
            check_layout(&a, &b, &MatrixDist::block_2d(n, pr, pc));
            check_layout(&a, &b, &MatrixDist::random_2d(n, pr, pc, 6));
        }
    }

    #[test]
    fn rectangular_b_is_supported() {
        // B with a different (smaller) column space than A's dimension.
        let a = grid_2d(4, 4);
        let mut coo = sf2d_graph::CooMatrix::new(16, 3);
        for i in 0..16u32 {
            coo.push(i, i % 3, 1.0 + i as f64);
        }
        let b = CsrMatrix::from_coo(&coo);
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::block_2d(16, 2, 2));
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_dist(&dm, &b, &mut ledger);
        assert_eq!(c.to_global(), spgemm(&a, &b));
        assert_eq!(c.ncols, 3);
    }

    #[test]
    fn workspace_reuse_is_bit_identical_across_calls_and_threads() {
        let a = rmat(&RmatConfig::graph500(6), 3);
        let b = a.transpose();
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::block_2d(a.nrows(), 2, 2));
        let mut l0 = CostLedger::new(Machine::cab());
        let gold = spgemm_dist(&dm, &b, &mut l0);
        let mut ws = SpgemmWorkspace::with_threads(4);
        for _ in 0..2 {
            let mut l = CostLedger::new(Machine::cab());
            let c = spgemm_with(&dm, &b, &mut l, &mut ws);
            for (cl, gl) in c.locals.iter().zip(&gold.locals) {
                assert_eq!(cl, gl);
                let cb: Vec<u64> = cl.values().iter().map(|v| v.to_bits()).collect();
                let gb: Vec<u64> = gl.values().iter().map(|v| v.to_bits()).collect();
                assert_eq!(cb, gb);
            }
            assert_eq!(l.total.to_bits(), l0.total.to_bits());
            assert_eq!(l.history, l0.history);
        }
    }

    #[test]
    fn message_counts_equal_the_spmv_plans() {
        // One routed exchange per phase: the SpGEMM sends exactly the
        // plan's messages, so the paper's 2D bound carries over.
        let a = rmat(&RmatConfig::graph500(7), 9);
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::block_2d(a.nrows(), 4, 4));
        let b = a.transpose();
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_dist(&dm, &b, &mut ledger);
        for r in 0..dm.nprocs() {
            assert_eq!(c.expand.send_msgs[r], dm.import.sends[r].len() as u64);
            assert_eq!(c.fold.send_msgs[r], dm.export.recvs[r].len() as u64);
        }
        assert!(c.expand.max_send_msgs() <= 3);
        assert!(c.fold.max_send_msgs() <= 3);
    }

    #[test]
    fn one_d_layouts_have_an_empty_fold() {
        let a = rmat(&RmatConfig::graph500(6), 2);
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::random_1d(a.nrows(), 4, 7));
        let b = a.transpose();
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_dist(&dm, &b, &mut ledger);
        assert_eq!(c.fold.total_volume(), 0);
        assert_eq!(
            ledger.by_phase.get(&Phase::Fold).copied().unwrap_or(0.0),
            0.0
        );
        assert!(c.expand.total_volume() > 0);
        // Merge still runs (owned partials become the final rows).
        assert_eq!(c.to_global(), spgemm(&a, &b));
    }

    #[test]
    fn flops_sum_to_the_serial_count() {
        // Distributed multiply work partitions the serial product terms.
        let a = rmat(&RmatConfig::graph500(6), 13);
        let b = a.transpose();
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::block_2d(a.nrows(), 2, 3));
        let mut ledger = CostLedger::new(Machine::cab());
        let c = spgemm_dist(&dm, &b, &mut ledger);
        let total: u64 = c.multiply_flops.iter().sum();
        assert_eq!(total, sf2d_graph::spgemm_flops(&a, &b));
    }

    #[test]
    #[should_panic(expected = "B has")]
    fn dimension_mismatch_is_rejected() {
        let a = grid_2d(3, 3);
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::block_1d(9, 2));
        let b = grid_2d(2, 2);
        spgemm_dist(&dm, &b, &mut CostLedger::new(Machine::cab()));
    }
}
