//! Communication-avoiding SpGEMM: Sparse SUMMA on the `pr × pc` grid.
//!
//! Where the expand/fold kernel ([`crate::kernel`]) reuses the SpMV's
//! compiled point-to-point schedules — and therefore inherits the
//! *layout's* message count, up to `p − 1` sends per rank under a 1D
//! distribution — Sparse SUMMA (Buluç & Gilbert) runs `C = A·B` as `gc`
//! **stages** of blocked broadcasts over the process grid:
//!
//! ```text
//! for t in 0..gc:                            # gc = grid columns ≈ √p
//!     row-broadcast  A[i][t]  across grid row i     (root: rank (i, t))
//!     col-broadcast  B[t][j]  down grid column j    (root: rank (t mod gr, j))
//!     C[i][j] += A[i][t] · B[t][j]                  (local Gustavson)
//! ```
//!
//! so every rank sends at most `(gr − 1) + (gc − 1)` broadcast fragments
//! *per stage* regardless of how the nonzeros are distributed — the
//! communication-avoiding bound of Ballard et al. The per-stage blocks
//! are hypersparse (`O(nnz/p)` nonzeros over `O(n/√p)` rows), so local
//! storage is DCSC-style ([`HyperCsr`]): a CSR over only the present
//! rows, keyed by global id.
//!
//! ## Mapping the paper's layouts onto the grid
//!
//! Every [`MatrixDist`] already *is* a grid layout: in all modes, rank
//! `r` sits at grid position `(r mod gr, r div gr)` and the nonzero map
//! places `a_ij` in grid row `row_of_part(rpart[i])` (see [`SummaGrid`]).
//! Two one-time redistributions align the operands with the stage
//! blocking, billed as [`Phase::Expand`] supersteps:
//!
//! * **A-shuffle** — under 1D layouts a rank's A rows span all stage
//!   columns, so each rank ships the off-stage column segments to the
//!   matching grid-column peer in its own grid row (≤ `gc − 1` sends).
//!   Under 2D layouts every local nonzero is already in the rank's own
//!   stage column and this is an exact no-op (zero traffic, still a
//!   closed superstep so ledger histories keep one shape).
//! * **B-shuffle** — B rows live with their vector owners (grid column
//!   `t` = the stage that consumes them); each owner splits its rows
//!   into `gc` column chunks and ships chunk `j` to the stage's
//!   broadcast root `rank(t mod gr, j)` (≤ `gc` sends).
//!
//! After the stages, per-stage partials are merged in fixed stage order
//! ([`Phase::Merge`]), folded within grid rows to the C row owners
//! ([`Phase::Fold`], ≤ `gc − 1` sends), and assembled by chunk
//! concatenation. Output rows are **bitwise equal** to the serial
//! Gustavson oracle whenever row sums are exact (the generator matrices'
//! products are small integers), and bit-identical for any `threads`
//! setting — the differential suite pins both, head-to-head with
//! expand/fold.
//!
//! [`Phase::Expand`]: sf2d_sim::cost::Phase::Expand
//! [`Phase::Merge`]: sf2d_sim::cost::Phase::Merge
//! [`Phase::Fold`]: sf2d_sim::cost::Phase::Fold
//! [`HyperCsr`]: crate::workspace::HyperCsr
//!
//! Chaos superstep indices (for [`FaultScript`](sf2d_sim::fault)
//! targeting in [`summa_chaos`]): A-shuffle = 0, B-shuffle = 1, stage
//! `t`'s A-broadcast = `2 + 2t`, its B-broadcast = `3 + 2t`, and the
//! fold = `2 + 2·gc`.

use std::sync::Arc;

use sf2d_graph::CsrMatrix;
use sf2d_obs::{trace_span, PhaseKind};
use sf2d_partition::{grid_shape, DistMode, MatrixDist};
use sf2d_sim::collective::{allreduce_cost, allreduce_sum_u64};
use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};
use sf2d_sim::fault::{bill_retransmit, ChaosRuntime};
use sf2d_sim::runtime::{par_ranks, RankMessage};
use sf2d_spmv::distmat::DistCsrMatrix;
use sf2d_spmv::map::VectorMap;

use crate::kernel::{push_row, ExchangeStats};
use crate::workspace::{DirBufs, HyperCsr, MsgBufs, RankSummaScratch, SummaWorkspace};

/// The SUMMA process grid a [`MatrixDist`] induces.
///
/// In every distribution mode, rank `r` occupies grid position
/// `(r mod gr, r div gr)` and `rank_at(i, j) = i + j·gr`; the part
/// (vector piece) `q` maps to grid row [`SummaGrid::row_of_part`] and
/// grid column [`SummaGrid::col_of_part`] such that
///
/// * the owner of nonzero `a_ij` always sits in grid row
///   `row_of_part(rpart[i])` (for 2D modes its grid column is likewise
///   `col_of_part(rpart[j])`; 1D modes need the A-shuffle), and
/// * the vector owner of entry `k` sits exactly at
///   `(row_of_part(rpart[k]), col_of_part(rpart[k]))`.
///
/// The `summa::tests::grid_matches_every_distribution_mode` test pins
/// these invariants against [`MatrixDist`]'s own owner maps for every
/// mode, including the column-swapped Cartesian layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaGrid {
    /// Grid rows.
    gr: u32,
    /// Grid columns (= SUMMA stages).
    gc: u32,
    /// Column-swapped Cartesian map (`AT` layouts).
    swapped: bool,
    /// Part-coordinate modulus: `pr` for 2D modes, `gr` for 1D.
    m: u32,
}

impl SummaGrid {
    /// Derives the grid the distribution already embeds. 1D layouts get
    /// the same near-square `grid_shape(p)` factorization the 2D
    /// constructors use, so all methods compare on equal grids.
    pub fn from_dist(dist: &MatrixDist) -> SummaGrid {
        match dist.mode() {
            DistMode::OneD => {
                let (gr, gc) = grid_shape(dist.nprocs());
                SummaGrid {
                    gr,
                    gc,
                    swapped: false,
                    m: gr,
                }
            }
            DistMode::TwoD {
                pr,
                pc,
                swapped: false,
            } => SummaGrid {
                gr: pr,
                gc: pc,
                swapped: false,
                m: pr,
            },
            DistMode::TwoD {
                pr,
                pc,
                swapped: true,
            } => SummaGrid {
                gr: pc,
                gc: pr,
                swapped: true,
                m: pr,
            },
        }
    }

    /// Grid rows.
    pub fn gr(&self) -> u32 {
        self.gr
    }

    /// Grid columns — the number of SUMMA stages.
    pub fn gc(&self) -> u32 {
        self.gc
    }

    /// Grid row of part (vector piece) `q`.
    pub fn row_of_part(&self, q: u32) -> u32 {
        if self.swapped {
            q / self.m
        } else {
            q % self.m
        }
    }

    /// Grid column of part `q` — the stage that consumes row block `q`
    /// of B (equivalently column block `q` of A).
    pub fn col_of_part(&self, q: u32) -> u32 {
        if self.swapped {
            q % self.m
        } else {
            q / self.m
        }
    }

    /// The rank at grid position `(i, j)`.
    pub fn rank_at(&self, i: u32, j: u32) -> u32 {
        i + j * self.gr
    }

    /// Grid row of rank `r`.
    pub fn row_of_rank(&self, r: u32) -> u32 {
        r % self.gr
    }

    /// Grid column of rank `r`.
    pub fn col_of_rank(&self, r: u32) -> u32 {
        r / self.gr
    }

    /// The communication-avoiding per-stage bound: no rank sends more
    /// than `(gr − 1) + (gc − 1)` broadcast fragments in one stage,
    /// independent of the nonzero distribution.
    pub fn stage_message_bound(&self) -> u64 {
        (self.gr - 1) as u64 + (self.gc - 1) as u64
    }
}

/// The distributed product `C = A·B` computed by Sparse SUMMA: per-rank
/// owned row blocks (same ownership as [`DistSpgemm`](crate::DistSpgemm),
/// so results compare directly) plus the per-phase traffic, including the
/// per-stage send counts that witness the communication-avoiding bound.
#[derive(Debug, Clone)]
pub struct SummaSpgemm {
    /// Row distribution of C (shared with A's vector map).
    pub vmap: Arc<VectorMap>,
    /// Global column count of C (= B's).
    pub ncols: usize,
    /// Owned rows per rank: `locals[r]` is `nlocal(r) × ncols`.
    pub locals: Vec<CsrMatrix>,
    /// Global `nnz(C)`, closed by the allreduce.
    pub nnz: u64,
    /// The grid the distribution induced.
    pub grid: SummaGrid,
    /// One-time A + B redistribution traffic (the two Expand supersteps).
    pub shuffle: ExchangeStats,
    /// Total stage-broadcast traffic (all Broadcast supersteps summed).
    pub bcast: ExchangeStats,
    /// Fold traffic (merged chunk rows to their row owners).
    pub fold: ExchangeStats,
    /// `stage_send_msgs[t][r]` = broadcast fragments rank `r` sent in
    /// stage `t`; every entry is ≤ [`SummaGrid::stage_message_bound`].
    pub stage_send_msgs: Vec<Vec<u64>>,
    /// Per-rank multiply flops (2 per product term).
    pub multiply_flops: Vec<u64>,
    /// Per-rank merge flops (cross-stage merge + owner assembly).
    pub merge_flops: Vec<u64>,
}

impl SummaSpgemm {
    /// Reassembles the global C (test oracle); bitwise comparable to the
    /// serial [`sf2d_graph::spgemm`] when row sums are exact.
    pub fn to_global(&self) -> CsrMatrix {
        let n = self.vmap.n();
        let mut rowptr = Vec::with_capacity(n + 1);
        rowptr.push(0usize);
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        for gid in 0..n as u32 {
            let r = self.vmap.owner(gid) as usize;
            let (cols, vals) = self.locals[r].row(self.vmap.lid(gid));
            colidx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            rowptr.push(colidx.len());
        }
        CsrMatrix::from_parts(n, self.ncols, rowptr, colidx, values)
            .expect("per-rank blocks satisfy CSR invariants")
    }

    /// Total messages sent by rank `r` across every phase (shuffles,
    /// all stage broadcasts, fold).
    pub fn send_msgs(&self, r: usize) -> u64 {
        self.shuffle.send_msgs[r] + self.bcast.send_msgs[r] + self.fold.send_msgs[r]
    }

    /// Max total messages sent by any rank — the figure the paper-claims
    /// suite compares against expand/fold's worst layout.
    pub fn max_send_msgs(&self) -> u64 {
        (0..self.shuffle.send_msgs.len())
            .map(|r| self.send_msgs(r))
            .max()
            .unwrap_or(0)
    }

    /// Total doubles moved across every phase.
    pub fn total_volume(&self) -> u64 {
        self.shuffle.total_volume() + self.bcast.total_volume() + self.fold.total_volume()
    }
}

/// `[lo, hi)` of C/B columns assigned to grid column `j`.
#[inline]
fn chunk_range(bcols: usize, gc: usize, j: usize) -> (usize, usize) {
    (j * bcols / gc, (j + 1) * bcols / gc)
}

fn zero_stats(p: usize) -> ExchangeStats {
    ExchangeStats {
        send_msgs: vec![0; p],
        send_doubles: vec![0; p],
        costs: vec![PhaseCost::default(); p],
    }
}

fn add_stats(into: &mut ExchangeStats, other: &ExchangeStats) {
    for r in 0..into.send_msgs.len() {
        into.send_msgs[r] += other.send_msgs[r];
        into.send_doubles[r] += other.send_doubles[r];
        into.costs[r] = into.costs[r].add(&other.costs[r]);
    }
}

/// Measures one directed exchange off the resident [`DirBufs`]: sender
/// side from the sealed slots, receiver side mirrored through the
/// per-slot destination list (same both-endpoints convention as
/// [`exchange_stats`](crate::kernel)).
fn dir_stats(bufs: &[DirBufs]) -> ExchangeStats {
    let send_msgs: Vec<u64> = bufs.iter().map(|b| b.bufs.nmsgs() as u64).collect();
    let send_doubles: Vec<u64> = bufs.iter().map(|b| b.bufs.data.len() as u64).collect();
    let mut costs: Vec<PhaseCost> = send_msgs
        .iter()
        .zip(&send_doubles)
        .map(|(&m, &d)| PhaseCost::comm(m, 8 * d))
        .collect();
    for src in bufs {
        for (slot, &d) in src.dsts.iter().enumerate() {
            let doubles = src.bufs.msg(slot).len() as u64;
            costs[d as usize] = costs[d as usize].add(&PhaseCost::comm(1, 8 * doubles));
        }
    }
    ExchangeStats {
        send_msgs,
        send_doubles,
        costs,
    }
}

/// Measures one broadcast round: each root packs its payload **once** and
/// fans it out to `dsts[r]`; the simulator has no multicast, so the root
/// is billed one point-to-point send per destination and each destination
/// one receive.
fn bcast_stats(bufs: &[MsgBufs], dsts: &[Vec<u32>]) -> ExchangeStats {
    let p = bufs.len();
    let mut stats = zero_stats(p);
    for (r, (buf, ds)) in bufs.iter().zip(dsts).enumerate() {
        if buf.nmsgs() == 0 || ds.is_empty() {
            continue;
        }
        let doubles = buf.msg(0).len() as u64;
        let nd = ds.len() as u64;
        stats.send_msgs[r] = nd;
        stats.send_doubles[r] = nd * doubles;
        stats.costs[r] = stats.costs[r].add(&PhaseCost::comm(nd, 8 * nd * doubles));
        for &d in ds {
            stats.costs[d as usize] = stats.costs[d as usize].add(&PhaseCost::comm(1, 8 * doubles));
        }
    }
    stats
}

/// Wire messages of a directed exchange, `(dst, payload)` in slot order.
fn dir_wire(bufs: &[DirBufs]) -> Vec<Vec<(u32, Vec<f64>)>> {
    bufs.iter()
        .map(|b| {
            b.dsts
                .iter()
                .enumerate()
                .map(|(slot, &d)| (d, b.bufs.msg(slot).to_vec()))
                .collect()
        })
        .collect()
}

/// Wire messages of a broadcast round: one copy of the root's payload per
/// destination, in `dsts` order.
fn bcast_wire(bufs: &[MsgBufs], dsts: &[Vec<u32>]) -> Vec<Vec<(u32, Vec<f64>)>> {
    bufs.iter()
        .zip(dsts)
        .map(|(buf, ds)| {
            if buf.nmsgs() == 0 {
                Vec::new()
            } else {
                ds.iter().map(|&d| (d, buf.msg(0).to_vec())).collect()
            }
        })
        .collect()
}

/// Routes one exchange through the chaos wire and checks the healed
/// deliveries against the resident payloads the kernel reads: the inbox
/// arrives sorted by `(src, seq)`, which is exactly source-ascending,
/// send-order within source — the order `wire` enumerates.
fn route_verified(
    rt: &mut ChaosRuntime,
    ledger: &mut CostLedger,
    p: usize,
    wire: Vec<Vec<(u32, Vec<f64>)>>,
    what: &str,
) {
    let (delivered, extra) = rt.route(p, wire.clone());
    bill_retransmit(ledger, &extra);
    for (r, inbox) in delivered.iter().enumerate() {
        let expected: Vec<(u32, &[f64])> = wire
            .iter()
            .enumerate()
            .flat_map(|(src, out)| {
                out.iter()
                    .filter(move |(d, _)| *d == r as u32)
                    .map(move |(_, payload)| (src as u32, payload.as_slice()))
            })
            .collect();
        assert_eq!(
            inbox.len(),
            expected.len(),
            "{what}: wrong message count at rank {r}"
        );
        for (msg, (src, payload)) in inbox.iter().zip(&expected) {
            verify_message(msg, *src, payload, what, r);
        }
    }
}

fn verify_message(msg: &RankMessage, src: u32, payload: &[f64], what: &str, r: usize) {
    assert_eq!(msg.src, src, "{what}: source mismatch at rank {r}");
    assert_eq!(
        msg.data.len(),
        payload.len(),
        "{what}: short message at rank {r}"
    );
    let same_bits = msg
        .data
        .iter()
        .zip(payload.iter())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same_bits, "{what}: corrupted delivery at rank {r}");
}

/// Serializes a hypersparse block: `[gid, nnz, cols..., vals...]` per row.
fn serialize_block(data: &mut Vec<f64>, h: &HyperCsr) {
    for k in 0..h.nrows() {
        let (gid, cols, vals) = h.row_at(k);
        data.push(gid as f64);
        push_row(data, (cols, vals));
    }
}

/// Appends the rows of one serialized hypersparse payload onto `out`.
/// `tmp` is scratch for the column-index cast.
fn decode_block(data: &[f64], out: &mut HyperCsr, tmp: &mut Vec<u32>) {
    let mut off = 0usize;
    while off < data.len() {
        let gid = data[off] as u32;
        let nnz = data[off + 1] as usize;
        tmp.clear();
        tmp.extend(data[off + 2..off + 2 + nnz].iter().map(|&c| c as u32));
        out.push_row(gid, tmp, &data[off + 2 + nnz..off + 2 + 2 * nnz]);
        off += 2 + 2 * nnz;
    }
    debug_assert_eq!(off, data.len(), "summa block payload framing mismatch");
}

/// Packs rank `o`'s A-shuffle payloads: for every stage column `s` other
/// than its own, the sub-rows of its local A block whose columns belong
/// to stage `s`, addressed to the grid-column-`s` peer in its grid row.
/// Exact no-op (every slot empty, nothing sealed) under 2D layouts.
fn pack_shuffle_a(buf: &mut DirBufs, o: usize, a: &DistCsrMatrix, rpart: &[u32], g: &SummaGrid) {
    buf.reset();
    let (oi, oj) = (g.row_of_rank(o as u32), g.col_of_rank(o as u32));
    let block = &a.blocks[o];
    let mut tc: Vec<u32> = Vec::new();
    let mut tv: Vec<f64> = Vec::new();
    for s in 0..g.gc {
        if s == oj {
            continue;
        }
        for li in 0..block.rowmap.len() {
            let (lcols, vals) = block.local.row(li);
            tc.clear();
            tv.clear();
            for (&lj, &v) in lcols.iter().zip(vals) {
                let gj = block.colmap[lj as usize];
                if g.col_of_part(rpart[gj as usize]) == s {
                    tc.push(gj);
                    tv.push(v);
                }
            }
            if !tc.is_empty() {
                buf.bufs.data.push(block.rowmap[li] as f64);
                push_row(&mut buf.bufs.data, (&tc, &tv));
            }
        }
        buf.seal_to(g.rank_at(oi, s));
    }
}

/// Builds rank `r`'s stage-aligned A block: its own-stage entries plus
/// every row shipped in by its grid-row peers, sorted back to ascending
/// global row order. Each row arrives whole from a single source (a 1D
/// row has one owner), so no per-row merging is needed.
fn build_a_block(
    s: &mut RankSummaScratch,
    r: usize,
    a: &DistCsrMatrix,
    rpart: &[u32],
    g: &SummaGrid,
    sbufs: &[DirBufs],
) {
    let (ri, rj) = (g.row_of_rank(r as u32), g.col_of_rank(r as u32));
    s.a_block.clear();
    let block = &a.blocks[r];
    let mut tc: Vec<u32> = Vec::new();
    let mut tv: Vec<f64> = Vec::new();
    for li in 0..block.rowmap.len() {
        let (lcols, vals) = block.local.row(li);
        tc.clear();
        tv.clear();
        for (&lj, &v) in lcols.iter().zip(vals) {
            let gj = block.colmap[lj as usize];
            if g.col_of_part(rpart[gj as usize]) == rj {
                tc.push(gj);
                tv.push(v);
            }
        }
        if !tc.is_empty() {
            s.a_block.push_row(block.rowmap[li], &tc, &tv);
        }
    }
    for st in 0..g.gc {
        if st == rj {
            continue;
        }
        let src = g.rank_at(ri, st) as usize;
        if let Some(slot) = sbufs[src].slot_for(r as u32) {
            decode_block(sbufs[src].bufs.msg(slot), &mut s.a_block, &mut tc);
        }
    }
    s.a_block.sort_rows();
}

/// Packs rank `o`'s B-shuffle payloads: its owned B rows (all of stage
/// `t` = its grid column), split into `gc` column chunks, chunk `j`
/// addressed to that stage's grid-column-`j` broadcast root. The chunk
/// that would go to `o` itself stays local (handled in
/// [`build_b_stages`]).
fn pack_shuffle_b(
    buf: &mut DirBufs,
    o: usize,
    b: &CsrMatrix,
    vmap: &VectorMap,
    g: &SummaGrid,
    bcols: usize,
) {
    buf.reset();
    let t = g.col_of_rank(o as u32);
    let ti = t % g.gr;
    for j in 0..g.gc {
        let root = g.rank_at(ti, j);
        if root == o as u32 {
            continue;
        }
        let (clo, chi) = chunk_range(bcols, g.gc as usize, j as usize);
        for &gid in vmap.gids(o) {
            let (cols, vals) = b.row(gid as usize);
            let lo = cols.partition_point(|&c| (c as usize) < clo);
            let hi = cols.partition_point(|&c| (c as usize) < chi);
            if hi > lo {
                buf.bufs.data.push(gid as f64);
                push_row(&mut buf.bufs.data, (&cols[lo..hi], &vals[lo..hi]));
            }
        }
        buf.seal_to(root);
    }
}

/// Builds the stage blocks rank `r` roots: for every stage `t` with
/// `t mod gr` = its grid row, the stage-`t` B rows restricted to its own
/// column chunk — its own rows (when it sits in grid column `t`) plus
/// everything the column-`t` owners shipped in. Rows are unique (one
/// owner per B row), so sorting restores ascending global order.
fn build_b_stages(
    s: &mut RankSummaScratch,
    r: usize,
    b: &CsrMatrix,
    vmap: &VectorMap,
    g: &SummaGrid,
    sbufs: &[DirBufs],
    bcols: usize,
) {
    let (ri, rj) = (g.row_of_rank(r as u32), g.col_of_rank(r as u32));
    let mut tmp: Vec<u32> = Vec::new();
    for t in 0..g.gc {
        if t % g.gr != ri {
            continue;
        }
        let bt = &mut s.b_stage[t as usize];
        if rj == t {
            let (clo, chi) = chunk_range(bcols, g.gc as usize, rj as usize);
            for &gid in vmap.gids(r) {
                let (cols, vals) = b.row(gid as usize);
                let lo = cols.partition_point(|&c| (c as usize) < clo);
                let hi = cols.partition_point(|&c| (c as usize) < chi);
                if hi > lo {
                    bt.push_row(gid, &cols[lo..hi], &vals[lo..hi]);
                }
            }
        }
        for i in 0..g.gr {
            let src = g.rank_at(i, t) as usize;
            if src == r {
                continue;
            }
            if let Some(slot) = sbufs[src].slot_for(r as u32) {
                decode_block(sbufs[src].bufs.msg(slot), bt, &mut tmp);
            }
        }
        bt.sort_rows();
    }
}

/// One stage's local multiply at rank `r`: Gustavson over the resident or
/// received hypersparse blocks, emitting the stage-`t` partial. Returns
/// the product terms processed.
fn multiply_stage(s: &mut RankSummaScratch, r: u32, t: u32, g: &SummaGrid) -> u64 {
    let rows = s.a_block.nrows().max(s.a_recv.nrows());
    s.guard_gen(rows);
    let (ri, rj) = (g.row_of_rank(r), g.col_of_rank(r));
    let RankSummaScratch {
        spa_vals,
        spa_stamp,
        spa_gen,
        touched,
        a_block,
        b_stage,
        a_recv,
        b_recv,
        stage_out,
        ..
    } = s;
    let a = if rj == t { &*a_block } else { &*a_recv };
    let bs = if ri == t % g.gr {
        &b_stage[t as usize]
    } else {
        &*b_recv
    };
    let out = &mut stage_out[t as usize];
    let mut terms = 0u64;
    for k in 0..a.nrows() {
        let (gid, acols, avals) = a.row_at(k);
        *spa_gen += 1;
        let gen = *spa_gen;
        touched.clear();
        for (&j, &aij) in acols.iter().zip(avals) {
            if let Some((bc, bv)) = bs.row(j) {
                for (&c, &bjc) in bc.iter().zip(bv) {
                    let cu = c as usize;
                    if spa_stamp[cu] != gen {
                        spa_stamp[cu] = gen;
                        spa_vals[cu] = aij * bjc;
                        touched.push(c);
                    } else {
                        spa_vals[cu] += aij * bjc;
                    }
                }
                terms += bc.len() as u64;
            }
        }
        if !touched.is_empty() {
            touched.sort_unstable();
            if out.ptr.is_empty() {
                out.ptr.push(0);
            }
            out.rows.push(gid);
            for &c in touched.iter() {
                out.cols.push(c);
                out.vals.push(spa_vals[c as usize]);
            }
            out.ptr.push(out.cols.len());
        }
    }
    terms
}

/// Merges rank `r`'s per-stage partials into one chunk block, per row in
/// ascending **stage** order (the fixed reassociation the differential
/// suite pins bitwise). Returns entries merged (1 flop each).
fn merge_stages(s: &mut RankSummaScratch, gc: usize) -> u64 {
    let total_rows: usize = s.stage_out.iter().take(gc).map(HyperCsr::nrows).sum();
    s.guard_gen(total_rows);
    s.pairs.clear();
    for (t, so) in s.stage_out.iter().enumerate().take(gc) {
        for k in 0..so.nrows() {
            s.pairs.push((so.rows[k], t as u32, k as u32));
        }
    }
    s.pairs.sort_unstable();
    let RankSummaScratch {
        spa_vals,
        spa_stamp,
        spa_gen,
        touched,
        stage_out,
        merged,
        pairs,
        ..
    } = s;
    merged.clear();
    let mut flops = 0u64;
    let mut i = 0usize;
    while i < pairs.len() {
        let gid = pairs[i].0;
        *spa_gen += 1;
        let gen = *spa_gen;
        touched.clear();
        while i < pairs.len() && pairs[i].0 == gid {
            let (_, t, k) = pairs[i];
            let (_, cols, vals) = stage_out[t as usize].row_at(k as usize);
            for (&c, &v) in cols.iter().zip(vals) {
                let cu = c as usize;
                if spa_stamp[cu] != gen {
                    spa_stamp[cu] = gen;
                    spa_vals[cu] = v;
                    touched.push(c);
                } else {
                    spa_vals[cu] += v;
                }
            }
            flops += cols.len() as u64;
            i += 1;
        }
        touched.sort_unstable();
        if merged.ptr.is_empty() {
            merged.ptr.push(0);
        }
        merged.rows.push(gid);
        for &c in touched.iter() {
            merged.cols.push(c);
            merged.vals.push(spa_vals[c as usize]);
        }
        merged.ptr.push(merged.cols.len());
    }
    flops
}

/// Packs rank `r`'s fold payloads: merged chunk rows grouped by their C
/// row owner — always a grid-row peer, visited in ascending grid-column
/// order (≤ `gc − 1` sends).
fn pack_fold(buf: &mut DirBufs, r: usize, g: &SummaGrid, vmap: &VectorMap, merged: &HyperCsr) {
    buf.reset();
    let (ri, rj) = (g.row_of_rank(r as u32), g.col_of_rank(r as u32));
    for sc in 0..g.gc {
        if sc == rj {
            continue;
        }
        let o = g.rank_at(ri, sc);
        for k in 0..merged.nrows() {
            let (gid, cols, vals) = merged.row_at(k);
            if vmap.owner(gid) == o {
                buf.bufs.data.push(gid as f64);
                push_row(&mut buf.bufs.data, (cols, vals));
            }
        }
        buf.seal_to(o);
    }
}

/// Assembles rank `r`'s owned C rows: per row, the `gc` column-chunk
/// contributions (own merged chunk + one per grid-row peer) concatenated
/// in ascending chunk order — chunks are disjoint ascending column
/// ranges, so concatenation yields sorted rows with no arithmetic.
/// Returns entries assembled (billed 1 flop each, like the merge).
fn assemble(
    s: &mut RankSummaScratch,
    r: usize,
    g: &SummaGrid,
    vmap: &VectorMap,
    fbufs: &[DirBufs],
) -> u64 {
    let (ri, rj) = (g.row_of_rank(r as u32), g.col_of_rank(r as u32));
    s.incoming.clear();
    for k in 0..s.merged.nrows() {
        let (gid, cols, _) = s.merged.row_at(k);
        if vmap.owner(gid) == r as u32 {
            s.incoming.push((
                vmap.lid(gid) as u32,
                rj,
                r as u32,
                u32::MAX,
                s.merged.ptr[k] as u32,
                cols.len() as u32,
            ));
        }
    }
    for sc in 0..g.gc {
        if sc == rj {
            continue;
        }
        let src = g.rank_at(ri, sc) as usize;
        if let Some(slot) = fbufs[src].slot_for(r as u32) {
            let data = fbufs[src].bufs.msg(slot);
            let mut off = 0usize;
            while off < data.len() {
                let gid = data[off] as u32;
                let nnz = data[off + 1] as usize;
                s.incoming.push((
                    vmap.lid(gid) as u32,
                    sc,
                    src as u32,
                    slot as u32,
                    (off + 2) as u32,
                    nnz as u32,
                ));
                off += 2 + 2 * nnz;
            }
            debug_assert_eq!(off, data.len(), "summa fold payload framing mismatch");
        }
    }
    s.incoming.sort_unstable_by_key(|e| (e.0, e.1));
    let nlocal = vmap.nlocal(r);
    let RankSummaScratch {
        merged,
        incoming,
        out_ptr,
        out_cols,
        out_vals,
        ..
    } = s;
    out_ptr.clear();
    out_ptr.push(0);
    out_cols.clear();
    out_vals.clear();
    let mut flops = 0u64;
    let mut cur = 0usize;
    for lid in 0..nlocal as u32 {
        while cur < incoming.len() && incoming[cur].0 == lid {
            let (_, _, src, slot, off, len) = incoming[cur];
            let (off, len) = (off as usize, len as usize);
            if slot == u32::MAX {
                out_cols.extend_from_slice(&merged.cols[off..off + len]);
                out_vals.extend_from_slice(&merged.vals[off..off + len]);
            } else {
                let data = fbufs[src as usize].bufs.msg(slot as usize);
                out_cols.extend(data[off..off + len].iter().map(|&c| c as u32));
                out_vals.extend_from_slice(&data[off + len..off + 2 * len]);
            }
            flops += len as u64;
            cur += 1;
        }
        out_ptr.push(out_cols.len());
    }
    flops
}

/// The shared SUMMA driver: plain when `chaos` is `None`, otherwise every
/// exchange is also mirrored onto the fault-injecting wire and the healed
/// deliveries are asserted bit-identical to the resident buffers (so a
/// rate-0 chaos run is byte-identical — values *and* ledger — to the
/// plain path, which the chaos tests pin).
fn summa_inner(
    a: &DistCsrMatrix,
    dist: &MatrixDist,
    b: &CsrMatrix,
    ledger: &mut CostLedger,
    ws: &mut SummaWorkspace,
    mut chaos: Option<&mut ChaosRuntime>,
) -> SummaSpgemm {
    assert_eq!(
        a.n,
        b.nrows(),
        "summa: A is {}x{} but B has {} rows",
        a.n,
        a.n,
        b.nrows()
    );
    assert_eq!(
        a.nprocs(),
        dist.nprocs(),
        "summa: A is distributed over {} ranks but dist has {}",
        a.nprocs(),
        dist.nprocs()
    );
    assert_eq!(a.n, dist.n(), "summa: dist covers a different row space");
    debug_assert!(
        (0..a.n as u32).all(|k| a.vmap.owner(k) == dist.vector_owner(k)),
        "summa: A's vector map disagrees with the distribution"
    );

    let g = SummaGrid::from_dist(dist);
    let p = dist.nprocs();
    let gc = g.gc as usize;
    let bcols = b.ncols();
    ws.ensure(p, gc, bcols);
    let threads = ws.threads;
    let rpart = dist.rpart();
    let vmap = &a.vmap;
    let SummaWorkspace {
        ref mut ranks,
        ref mut shuffle_a,
        ref mut shuffle_b,
        ref mut stage_a,
        ref mut stage_b,
        ref mut fold,
        ..
    } = *ws;

    // Phase 1 — A-shuffle: align A's columns with the stage blocking.
    trace_span!(PhaseKind::Pack, "summa:a-shuffle-pack", {
        par_ranks(threads, shuffle_a, |o, buf| {
            pack_shuffle_a(buf, o, a, rpart, &g);
        })
    });
    let shuffle_a_stats = dir_stats(shuffle_a);
    ledger.superstep(Phase::Expand, &shuffle_a_stats.costs);
    if let Some(rt) = chaos.as_deref_mut() {
        route_verified(rt, ledger, p, dir_wire(shuffle_a), "summa a-shuffle");
    }
    {
        let sa: &[DirBufs] = shuffle_a;
        trace_span!(PhaseKind::Unpack, "summa:a-shuffle-unpack", {
            par_ranks(threads, ranks, |r, scratch| {
                build_a_block(scratch, r, a, rpart, &g, sa);
            })
        });
    }

    // Phase 2 — B-shuffle: owners ship chunked stage rows to the roots.
    trace_span!(PhaseKind::Pack, "summa:b-shuffle-pack", {
        par_ranks(threads, shuffle_b, |o, buf| {
            pack_shuffle_b(buf, o, b, vmap, &g, bcols);
        })
    });
    let shuffle_b_stats = dir_stats(shuffle_b);
    ledger.superstep(Phase::Expand, &shuffle_b_stats.costs);
    if let Some(rt) = chaos.as_deref_mut() {
        route_verified(rt, ledger, p, dir_wire(shuffle_b), "summa b-shuffle");
    }
    {
        let sb: &[DirBufs] = shuffle_b;
        trace_span!(PhaseKind::Unpack, "summa:b-shuffle-unpack", {
            par_ranks(threads, ranks, |r, scratch| {
                build_b_stages(scratch, r, b, vmap, &g, sb, bcols);
            })
        });
    }
    let mut shuffle = shuffle_a_stats;
    add_stats(&mut shuffle, &shuffle_b_stats);

    // Stages: row-broadcast A, col-broadcast B, multiply.
    let mut bcast = zero_stats(p);
    let mut stage_send_msgs: Vec<Vec<u64>> = Vec::with_capacity(gc);
    for t in 0..g.gc {
        {
            let rk: &[RankSummaScratch] = ranks;
            trace_span!(PhaseKind::Broadcast, "summa:a-bcast-pack", {
                par_ranks(threads, stage_a, |r, buf| {
                    buf.reset();
                    if g.col_of_rank(r as u32) == t && rk[r].a_block.nnz() > 0 {
                        serialize_block(&mut buf.data, &rk[r].a_block);
                        buf.seal();
                    }
                })
            });
        }
        let a_dsts: Vec<Vec<u32>> = (0..p)
            .map(|r| {
                if g.col_of_rank(r as u32) == t && stage_a[r].nmsgs() == 1 {
                    let ri = g.row_of_rank(r as u32);
                    (0..g.gc)
                        .filter(|&j| j != t)
                        .map(|j| g.rank_at(ri, j))
                        .collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let a_stats = bcast_stats(stage_a, &a_dsts);
        ledger.superstep(Phase::Broadcast, &a_stats.costs);
        if let Some(rt) = chaos.as_deref_mut() {
            route_verified(rt, ledger, p, bcast_wire(stage_a, &a_dsts), "summa a-bcast");
        }
        {
            let sa: &[MsgBufs] = stage_a;
            trace_span!(PhaseKind::Unpack, "summa:a-bcast-unpack", {
                par_ranks(threads, ranks, |r, scratch| {
                    scratch.a_recv.clear();
                    if g.col_of_rank(r as u32) != t {
                        let src = g.rank_at(g.row_of_rank(r as u32), t) as usize;
                        if sa[src].nmsgs() == 1 {
                            decode_block(sa[src].msg(0), &mut scratch.a_recv, &mut scratch.touched);
                        }
                    }
                })
            });
        }

        {
            let rk: &[RankSummaScratch] = ranks;
            trace_span!(PhaseKind::Broadcast, "summa:b-bcast-pack", {
                par_ranks(threads, stage_b, |r, buf| {
                    buf.reset();
                    if g.row_of_rank(r as u32) == t % g.gr && rk[r].b_stage[t as usize].nnz() > 0 {
                        serialize_block(&mut buf.data, &rk[r].b_stage[t as usize]);
                        buf.seal();
                    }
                })
            });
        }
        let b_dsts: Vec<Vec<u32>> = (0..p)
            .map(|r| {
                if g.row_of_rank(r as u32) == t % g.gr && stage_b[r].nmsgs() == 1 {
                    let rj = g.col_of_rank(r as u32);
                    (0..g.gr)
                        .filter(|&i| i != t % g.gr)
                        .map(|i| g.rank_at(i, rj))
                        .collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let b_stats = bcast_stats(stage_b, &b_dsts);
        ledger.superstep(Phase::Broadcast, &b_stats.costs);
        if let Some(rt) = chaos.as_deref_mut() {
            route_verified(rt, ledger, p, bcast_wire(stage_b, &b_dsts), "summa b-bcast");
        }
        {
            let sb: &[MsgBufs] = stage_b;
            trace_span!(PhaseKind::Unpack, "summa:b-bcast-unpack", {
                par_ranks(threads, ranks, |r, scratch| {
                    scratch.b_recv.clear();
                    if g.row_of_rank(r as u32) != t % g.gr {
                        let src = g.rank_at(t % g.gr, g.col_of_rank(r as u32)) as usize;
                        if sb[src].nmsgs() == 1 {
                            decode_block(sb[src].msg(0), &mut scratch.b_recv, &mut scratch.touched);
                        }
                    }
                })
            });
        }

        trace_span!(PhaseKind::Multiply, "summa:multiply", {
            par_ranks(threads, ranks, |r, scratch| {
                let terms = multiply_stage(scratch, r as u32, t, &g);
                scratch.stage_terms = terms;
                scratch.terms += terms;
            })
        });
        let mul_costs: Vec<PhaseCost> = ranks
            .iter()
            .map(|s| PhaseCost::compute(2 * s.stage_terms))
            .collect();
        ledger.superstep(Phase::Multiply, &mul_costs);

        stage_send_msgs.push(
            (0..p)
                .map(|r| a_stats.send_msgs[r] + b_stats.send_msgs[r])
                .collect(),
        );
        add_stats(&mut bcast, &a_stats);
        add_stats(&mut bcast, &b_stats);
    }

    // Cross-stage merge: fixed stage-ascending order per row.
    trace_span!(PhaseKind::Merge, "summa:stage-merge", {
        par_ranks(threads, ranks, |_r, scratch| {
            scratch.merged_flops = merge_stages(scratch, gc);
        })
    });
    let merge_costs: Vec<PhaseCost> = ranks
        .iter()
        .map(|s| PhaseCost::compute(s.merged_flops))
        .collect();
    ledger.superstep(Phase::Merge, &merge_costs);

    // Fold: merged chunk rows to their C row owners, within grid rows.
    {
        let rk: &[RankSummaScratch] = ranks;
        trace_span!(PhaseKind::Pack, "summa:fold-pack", {
            par_ranks(threads, fold, |r, buf| {
                pack_fold(buf, r, &g, vmap, &rk[r].merged);
            })
        });
    }
    let fold_stats = dir_stats(fold);
    ledger.superstep(Phase::Fold, &fold_stats.costs);
    if let Some(rt) = chaos {
        route_verified(rt, ledger, p, dir_wire(fold), "summa fold");
    }

    // Assembly: chunk concatenation at the owners.
    {
        let fb: &[DirBufs] = fold;
        trace_span!(PhaseKind::Merge, "summa:assemble", {
            par_ranks(threads, ranks, |r, scratch| {
                scratch.assemble_flops = assemble(scratch, r, &g, vmap, fb);
            })
        });
    }
    let assemble_costs: Vec<PhaseCost> = ranks
        .iter()
        .map(|s| PhaseCost::compute(s.assemble_flops))
        .collect();
    ledger.superstep(Phase::Merge, &assemble_costs);

    // Close nnz(C) and assemble the output blocks.
    let locals: Vec<CsrMatrix> = ranks
        .iter()
        .enumerate()
        .map(|(r, s)| {
            CsrMatrix::from_parts(
                vmap.nlocal(r),
                bcols,
                s.out_ptr.clone(),
                s.out_cols.clone(),
                s.out_vals.clone(),
            )
            .expect("assembled rows satisfy CSR invariants")
        })
        .collect();
    let partials: Vec<u64> = locals.iter().map(|c| c.nnz() as u64).collect();
    let nnz = allreduce_sum_u64(&partials);
    ledger.superstep_uniform(Phase::Collective, allreduce_cost(p, 1), p);

    SummaSpgemm {
        vmap: Arc::clone(vmap),
        ncols: bcols,
        locals,
        nnz,
        grid: g,
        shuffle,
        bcast,
        fold: fold_stats,
        stage_send_msgs,
        multiply_flops: ranks.iter().map(|s| 2 * s.terms).collect(),
        merge_flops: ranks
            .iter()
            .map(|s| s.merged_flops + s.assemble_flops)
            .collect(),
    }
}

/// Sparse SUMMA `C = A·B` over the grid `dist` induces, charging
/// Expand (shuffles) / Broadcast / Multiply / Merge / Fold / Collective
/// supersteps to the ledger.
///
/// `dist` must be the distribution `a` was built from (checked against
/// the rank count, row space, and — in debug builds — the vector map).
/// Convenience wrapper over [`summa_with`] with a throwaway sequential
/// workspace.
pub fn summa_dist(
    a: &DistCsrMatrix,
    dist: &MatrixDist,
    b: &CsrMatrix,
    ledger: &mut CostLedger,
) -> SummaSpgemm {
    summa_with(a, dist, b, ledger, &mut SummaWorkspace::new())
}

/// [`summa_dist`] through a reusable [`SummaWorkspace`]: scratch blocks
/// and message payloads are borrowed from `ws` and the per-rank phase
/// work fans out across `ws.threads` OS threads (bit-identical results
/// for any count).
pub fn summa_with(
    a: &DistCsrMatrix,
    dist: &MatrixDist,
    b: &CsrMatrix,
    ledger: &mut CostLedger,
    ws: &mut SummaWorkspace,
) -> SummaSpgemm {
    summa_inner(a, dist, b, ledger, ws, None)
}

/// Sparse SUMMA under fault injection: every exchange — both shuffles,
/// every stage's two broadcasts, and the fold — is also routed through
/// the chaos wire, healed deliveries are asserted bit-identical to the
/// resident buffers, and recovery traffic is billed as `Retransmit`
/// supersteps. At rate 0 the run is byte-identical (values *and*
/// ledger) to [`summa_with`].
pub fn summa_chaos(
    a: &DistCsrMatrix,
    dist: &MatrixDist,
    b: &CsrMatrix,
    ledger: &mut CostLedger,
    rt: &mut ChaosRuntime,
) -> SummaSpgemm {
    let mut ws = SummaWorkspace::with_threads(rt.threads);
    summa_inner(a, dist, b, ledger, &mut ws, Some(rt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::{grid_2d, rmat, RmatConfig};
    use sf2d_graph::spgemm;
    use sf2d_sim::sf2d_chaos::{FaultKind, FaultScript};
    use sf2d_sim::Machine;

    fn check_layout(a: &CsrMatrix, b: &CsrMatrix, dist: &MatrixDist) {
        let dm = DistCsrMatrix::from_global(a, dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = summa_dist(&dm, dist, b, &mut ledger);
        let want = spgemm(a, b);
        let got = c.to_global();
        assert_eq!(got, want);
        assert_eq!(c.nnz, want.nnz() as u64);
        assert!(ledger.total > 0.0);
    }

    #[test]
    fn all_basic_layouts_match_the_serial_oracle() {
        let a = rmat(&RmatConfig::graph500(6), 11);
        let b = a.transpose();
        let n = a.nrows();
        for p in [1usize, 4, 6] {
            let (pr, pc) = grid_shape(p);
            check_layout(&a, &b, &MatrixDist::block_1d(n, p));
            check_layout(&a, &b, &MatrixDist::random_1d(n, p, 5));
            check_layout(&a, &b, &MatrixDist::block_2d(n, pr, pc));
            check_layout(&a, &b, &MatrixDist::random_2d(n, pr, pc, 6));
            check_layout(&a, &b, &MatrixDist::block_2d(n, pr, pc).interchanged());
        }
    }

    #[test]
    fn grid_matches_every_distribution_mode() {
        // The structural assumption under the whole kernel: the
        // distribution's own owner maps agree with the induced grid.
        let n = 64usize;
        let dists = [
            MatrixDist::block_1d(n, 6),
            MatrixDist::random_1d(n, 6, 3),
            MatrixDist::block_2d(n, 2, 3),
            MatrixDist::random_2d(n, 2, 3, 4),
            MatrixDist::block_2d(n, 2, 3).interchanged(),
        ];
        for dist in &dists {
            let g = SummaGrid::from_dist(dist);
            assert_eq!((g.gr * g.gc) as usize, dist.nprocs());
            let rpart = dist.rpart();
            for k in 0..n as u32 {
                let q = rpart[k as usize];
                let owner = dist.vector_owner(k);
                assert_eq!(g.row_of_rank(owner), g.row_of_part(q));
                assert_eq!(g.col_of_rank(owner), g.col_of_part(q));
            }
            let two_d = !matches!(dist.mode(), DistMode::OneD);
            for i in 0..n as u32 {
                for j in 0..n as u32 {
                    let o = dist.nonzero_owner(i, j);
                    assert_eq!(g.row_of_rank(o), g.row_of_part(rpart[i as usize]));
                    if two_d {
                        assert_eq!(g.col_of_rank(o), g.col_of_part(rpart[j as usize]));
                    }
                }
            }
        }
    }

    #[test]
    fn rectangular_b_is_supported() {
        let a = grid_2d(4, 4);
        let mut coo = sf2d_graph::CooMatrix::new(16, 3);
        for i in 0..16u32 {
            coo.push(i, i % 3, 1.0 + i as f64);
        }
        let b = CsrMatrix::from_coo(&coo);
        let dist = MatrixDist::block_2d(16, 2, 2);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = summa_dist(&dm, &dist, &b, &mut ledger);
        assert_eq!(c.to_global(), spgemm(&a, &b));
        assert_eq!(c.ncols, 3);
    }

    #[test]
    fn workspace_reuse_is_bit_identical_across_calls_and_threads() {
        let a = rmat(&RmatConfig::graph500(6), 3);
        let b = a.transpose();
        let dist = MatrixDist::random_1d(a.nrows(), 4, 9);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let mut l0 = CostLedger::new(Machine::cab());
        let gold = summa_dist(&dm, &dist, &b, &mut l0);
        for threads in [1usize, 2, 8] {
            let mut ws = SummaWorkspace::with_threads(threads);
            for _ in 0..2 {
                let mut l = CostLedger::new(Machine::cab());
                let c = summa_with(&dm, &dist, &b, &mut l, &mut ws);
                for (cl, gl) in c.locals.iter().zip(&gold.locals) {
                    assert_eq!(cl, gl);
                    let cb: Vec<u64> = cl.values().iter().map(|v| v.to_bits()).collect();
                    let gb: Vec<u64> = gl.values().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(cb, gb);
                }
                assert_eq!(l.total.to_bits(), l0.total.to_bits());
                assert_eq!(l.history, l0.history);
            }
        }
    }

    #[test]
    fn per_stage_sends_respect_the_communication_avoiding_bound() {
        let a = rmat(&RmatConfig::graph500(7), 9);
        let b = a.transpose();
        let n = a.nrows();
        // The bound is layout-independent — check the adversarial case
        // (1D random, whose expand/fold kernel needs up to p − 1 sends).
        for dist in [
            MatrixDist::random_1d(n, 16, 7),
            MatrixDist::block_2d(n, 4, 4),
        ] {
            let dm = DistCsrMatrix::from_global(&a, &dist);
            let mut ledger = CostLedger::new(Machine::cab());
            let c = summa_dist(&dm, &dist, &b, &mut ledger);
            let bound = c.grid.stage_message_bound();
            assert_eq!(c.stage_send_msgs.len(), c.grid.gc() as usize);
            for stage in &c.stage_send_msgs {
                for &sends in stage {
                    assert!(sends <= bound, "stage sends {sends} > bound {bound}");
                }
            }
            assert_eq!(c.to_global(), spgemm(&a, &b));
        }
    }

    #[test]
    fn two_d_layouts_skip_the_a_shuffle() {
        let a = rmat(&RmatConfig::graph500(6), 5);
        let b = a.transpose();
        let dist = MatrixDist::block_2d(a.nrows(), 2, 3);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = summa_dist(&dm, &dist, &b, &mut ledger);
        // The combined shuffle stats still include B traffic; isolate A
        // by checking the first Expand superstep in the history is free.
        let expands: Vec<f64> = ledger
            .history
            .iter()
            .filter(|(ph, _)| *ph == Phase::Expand)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(expands.len(), 2);
        assert_eq!(expands[0], 0.0, "2D A-shuffle must be a no-op");
        assert_eq!(c.to_global(), spgemm(&a, &b));
    }

    #[test]
    fn one_d_layouts_shuffle_a_and_still_match() {
        let a = rmat(&RmatConfig::graph500(6), 2);
        let b = a.transpose();
        let dist = MatrixDist::random_1d(a.nrows(), 4, 7);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = summa_dist(&dm, &dist, &b, &mut ledger);
        assert!(c.shuffle.total_volume() > 0, "1D must redistribute A");
        assert_eq!(c.to_global(), spgemm(&a, &b));
    }

    #[test]
    fn flops_sum_to_the_serial_count() {
        let a = rmat(&RmatConfig::graph500(6), 13);
        let b = a.transpose();
        let dist = MatrixDist::block_2d(a.nrows(), 2, 3);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = summa_dist(&dm, &dist, &b, &mut ledger);
        let total: u64 = c.multiply_flops.iter().sum();
        assert_eq!(total, sf2d_graph::spgemm_flops(&a, &b));
    }

    #[test]
    fn ledger_history_has_the_fixed_summa_shape() {
        let a = rmat(&RmatConfig::graph500(6), 4);
        let b = a.transpose();
        let dist = MatrixDist::block_2d(a.nrows(), 2, 2);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let mut ledger = CostLedger::new(Machine::cab());
        let c = summa_dist(&dm, &dist, &b, &mut ledger);
        let gc = c.grid.gc() as usize;
        let mut want = vec![Phase::Expand, Phase::Expand];
        for _ in 0..gc {
            want.extend([Phase::Broadcast, Phase::Broadcast, Phase::Multiply]);
        }
        want.extend([Phase::Merge, Phase::Fold, Phase::Merge, Phase::Collective]);
        let got: Vec<Phase> = ledger.history.iter().map(|(ph, _)| *ph).collect();
        assert_eq!(got, want);
    }

    fn chaos_fixture() -> (CsrMatrix, CsrMatrix, MatrixDist, DistCsrMatrix) {
        let a = rmat(&RmatConfig::graph500(6), 17);
        let b = a.transpose();
        let dist = MatrixDist::block_2d(a.nrows(), 2, 2);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        (a, b, dist, dm)
    }

    #[test]
    fn chaos_rate_zero_is_byte_identical_to_plain() {
        let (_a, b, dist, dm) = chaos_fixture();
        let mut l0 = CostLedger::new(Machine::cab());
        let plain = summa_dist(&dm, &dist, &b, &mut l0);
        let mut l1 = CostLedger::new(Machine::cab());
        let mut rt = ChaosRuntime::seeded(42, 0.0);
        let chaotic = summa_chaos(&dm, &dist, &b, &mut l1, &mut rt);
        assert_eq!(plain.locals, chaotic.locals);
        assert_eq!(l0.history, l1.history);
        assert_eq!(l0.total.to_bits(), l1.total.to_bits());
    }

    #[test]
    fn chaos_seeded_faults_recover_the_fault_free_bits_at_extra_cost() {
        let (_a, b, dist, dm) = chaos_fixture();
        let mut l0 = CostLedger::new(Machine::cab());
        let plain = summa_dist(&dm, &dist, &b, &mut l0);
        let mut l1 = CostLedger::new(Machine::cab());
        let mut rt = ChaosRuntime::seeded(7, 0.4);
        let chaotic = summa_chaos(&dm, &dist, &b, &mut l1, &mut rt);
        assert_eq!(plain.locals, chaotic.locals);
        assert!(rt.stats.any(), "rate 0.4 injected nothing");
        assert!(l1.total > l0.total, "faults should cost extra");
    }

    #[test]
    fn chaos_scripted_stage_broadcast_drop_is_healed() {
        let (_a, b, dist, dm) = chaos_fixture();
        // Stage 0's A-broadcast is routing step 2; on the 2x2 grid rank 0
        // roots it and fans out to its row peer, rank 2.
        let script = FaultScript::default().fault(2, 0, 2, 0, FaultKind::Drop);
        let mut rt = ChaosRuntime::scripted(script);
        let mut l = CostLedger::new(Machine::cab());
        let chaotic = summa_chaos(&dm, &dist, &b, &mut l, &mut rt);
        let mut l0 = CostLedger::new(Machine::cab());
        let plain = summa_dist(&dm, &dist, &b, &mut l0);
        assert_eq!(plain.locals, chaotic.locals);
        assert_eq!(rt.stats.drops, 1, "the scripted drop must land");
        assert!(
            l.history.iter().any(|(ph, _)| *ph == Phase::Retransmit),
            "drop should bill a retransmit superstep"
        );
    }

    #[test]
    fn chaos_matches_across_thread_counts() {
        let (_a, b, dist, dm) = chaos_fixture();
        let mut gold: Option<SummaSpgemm> = None;
        for threads in [1usize, 2, 8] {
            let mut rt = ChaosRuntime::seeded(99, 0.2).with_threads(threads);
            let mut l = CostLedger::new(Machine::cab());
            let c = summa_chaos(&dm, &dist, &b, &mut l, &mut rt);
            match &gold {
                None => gold = Some(c),
                Some(g) => {
                    assert_eq!(g.locals, c.locals);
                    for (gl, cl) in g.locals.iter().zip(&c.locals) {
                        let gb: Vec<u64> = gl.values().iter().map(|v| v.to_bits()).collect();
                        let cb: Vec<u64> = cl.values().iter().map(|v| v.to_bits()).collect();
                        assert_eq!(gb, cb);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "B has")]
    fn dimension_mismatch_is_rejected() {
        let a = grid_2d(3, 3);
        let dist = MatrixDist::block_1d(9, 2);
        let dm = DistCsrMatrix::from_global(&a, &dist);
        let b = grid_2d(2, 2);
        summa_dist(&dm, &dist, &b, &mut CostLedger::new(Machine::cab()));
    }
}
