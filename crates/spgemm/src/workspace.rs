//! Reusable per-rank scratch for the distributed SpGEMM: SPA accumulators,
//! decoded remote-row storage, partial-row buffers, and the resident
//! message payloads — the SpGEMM analogue of
//! [`SpmvWorkspace`](sf2d_spmv::SpmvWorkspace).

use sf2d_spmv::compiled::CompiledSpmv;
use sf2d_spmv::distmat::RankBlock;

/// Where a rank finds the B row for one of its column-map slots after the
/// expand phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BRowRef {
    /// The row is locally owned: read `b.row(gid)` directly.
    Local {
        /// Global row id.
        gid: u32,
    },
    /// The row arrived in the expand exchange and was decoded into the
    /// scratch's `rcols` / `rvals` arrays.
    Remote {
        /// Start offset into `rcols` / `rvals`.
        off: u32,
        /// Number of nonzeros.
        len: u32,
    },
}

impl Default for BRowRef {
    fn default() -> BRowRef {
        BRowRef::Local { gid: 0 }
    }
}

/// One rank's scratch state for one SpGEMM execution. All buffers are
/// reused across calls; nothing here survives as output (the kernel copies
/// the final rows out into per-rank [`CsrMatrix`](sf2d_graph::CsrMatrix)
/// blocks).
#[derive(Debug, Clone, Default)]
pub(crate) struct RankSpgemmScratch {
    /// SPA dense values over B's column space.
    pub spa_vals: Vec<f64>,
    /// SPA generation stamps (`stamp[k] == spa_gen` ⇔ column `k` touched
    /// in the current row) — bumping the generation clears the SPA in O(1).
    pub spa_stamp: Vec<u32>,
    /// Current SPA generation.
    pub spa_gen: u32,
    /// Columns touched in the current row (sorted before emission).
    pub touched: Vec<u32>,
    /// B-row location per column-map slot.
    pub brows: Vec<BRowRef>,
    /// Decoded remote B-row column indices, concatenated.
    pub rcols: Vec<u32>,
    /// Decoded remote B-row values, concatenated.
    pub rvals: Vec<f64>,
    /// Partial C rows (one per row-map position), CSR-style.
    pub part_ptr: Vec<usize>,
    /// Partial-row column indices.
    pub part_cols: Vec<u32>,
    /// Partial-row values.
    pub part_vals: Vec<f64>,
    /// Per owned `y` lid: the row-map position of this rank's own partial
    /// for that row, or `u32::MAX` when the rank holds no local partial.
    pub own_part: Vec<u32>,
    /// Incoming partial rows for the merge: `(y_lid, src, slot, off, len)`
    /// in message order, stably sorted by `y_lid` (so per-row merge order
    /// stays sources-ascending).
    pub incoming: Vec<(u32, u32, u32, u32, u32)>,
    /// Final owned C rows, CSR-style (copied into the output blocks).
    pub out_ptr: Vec<usize>,
    /// Final-row column indices.
    pub out_cols: Vec<u32>,
    /// Final-row values.
    pub out_vals: Vec<f64>,
    /// Multiply product terms processed this call (2 flops each).
    pub terms: u64,
    /// Entries merged in the merge phase this call (1 flop each).
    pub merged: u64,
}

impl RankSpgemmScratch {
    /// Resets the SPA generation when the next `rows` bumps would overflow
    /// the `u32` stamp space.
    pub fn guard_gen(&mut self, rows: usize) {
        if self.spa_gen > u32::MAX - (rows as u32 + 1) {
            self.spa_stamp.fill(0);
            self.spa_gen = 0;
        }
    }
}

/// One rank's outgoing message payloads for one exchange, stored as a
/// single flat allocation with a per-slot offset table — not one `Vec`
/// per message, which at paper-scale rank counts (millions of tiny
/// messages) would be mostly allocator headers. Slot order matches the
/// rank's compiled pack list, so destination ranks read payloads in place
/// via their compiled `(src, slot)` unpack entries.
#[derive(Debug, Clone, Default)]
pub(crate) struct MsgBufs {
    /// All message payloads, concatenated in slot order.
    pub data: Vec<f64>,
    /// Message boundaries: slot `k` is `data[offs[k]..offs[k + 1]]`.
    pub offs: Vec<usize>,
}

impl MsgBufs {
    /// Empties the buffers for a fresh pack pass (keeps the allocations).
    pub fn reset(&mut self) {
        self.data.clear();
        self.offs.clear();
        self.offs.push(0);
    }

    /// Marks the end of the current message: everything pushed onto
    /// `data` since the previous seal belongs to the just-finished slot.
    pub fn seal(&mut self) {
        self.offs.push(self.data.len());
    }

    /// Slot `k`'s payload.
    #[inline]
    pub fn msg(&self, slot: usize) -> &[f64] {
        &self.data[self.offs[slot]..self.offs[slot + 1]]
    }

    /// Number of sealed messages.
    pub fn nmsgs(&self) -> usize {
        self.offs.len().saturating_sub(1)
    }
}

/// Reusable scratch space for [`spgemm_with`](crate::kernel::spgemm_with):
/// per-rank SPA accumulators and row buffers plus the resident expand/fold
/// message payloads, which destination ranks read in place via the
/// compiled `(src, slot)` unpack entries (no per-message allocation at
/// steady state).
///
/// Like [`SpmvWorkspace`](sf2d_spmv::SpmvWorkspace), a workspace is not
/// tied to a matrix — buffers are (re)sized on first use — and the
/// `threads` knob fans the per-rank phase work across OS threads with
/// bit-identical results (ranks only touch disjoint state).
#[derive(Debug, Clone)]
pub struct SpgemmWorkspace {
    /// Number of OS threads for phase-local work (1 = fully sequential).
    pub threads: usize,
    pub(crate) ranks: Vec<RankSpgemmScratch>,
    /// Per-rank expand payloads, slots aligned with each rank's compiled
    /// expand `pack` list: serialized B rows, `[nnz, cols..., vals...]`
    /// per row, flat per rank.
    pub(crate) expand_bufs: Vec<MsgBufs>,
    /// Per-rank fold payloads, slots aligned with the compiled fold
    /// `pack` list: serialized partial C rows, same framing.
    pub(crate) fold_bufs: Vec<MsgBufs>,
}

impl SpgemmWorkspace {
    /// A sequential (single-threaded) workspace.
    pub fn new() -> SpgemmWorkspace {
        SpgemmWorkspace::with_threads(1)
    }

    /// A workspace whose phase-local work fans out across `threads` OS
    /// threads (clamped to at least 1).
    pub fn with_threads(threads: usize) -> SpgemmWorkspace {
        SpgemmWorkspace {
            threads: threads.max(1),
            ranks: Vec::new(),
            expand_bufs: Vec::new(),
            fold_bufs: Vec::new(),
        }
    }

    /// Sizes the per-rank buffers for `blocks` and a B with `bcols`
    /// columns, reusing allocations where they already fit.
    pub(crate) fn ensure(&mut self, blocks: &[RankBlock], _compiled: &CompiledSpmv, bcols: usize) {
        self.ranks
            .resize_with(blocks.len(), RankSpgemmScratch::default);
        for (scratch, block) in self.ranks.iter_mut().zip(blocks) {
            scratch.spa_vals.resize(bcols, 0.0);
            scratch.spa_stamp.resize(bcols, 0);
            scratch.brows.resize(block.colmap.len(), BRowRef::default());
        }
        // Message buffers are reset by each pack pass; only the per-rank
        // slots need to exist.
        self.expand_bufs.resize_with(blocks.len(), MsgBufs::default);
        self.fold_bufs.resize_with(blocks.len(), MsgBufs::default);
    }
}

impl Default for SpgemmWorkspace {
    fn default() -> SpgemmWorkspace {
        SpgemmWorkspace::new()
    }
}
