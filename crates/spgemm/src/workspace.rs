//! Reusable per-rank scratch for the distributed SpGEMM: SPA accumulators,
//! decoded remote-row storage, partial-row buffers, and the resident
//! message payloads — the SpGEMM analogue of
//! [`SpmvWorkspace`](sf2d_spmv::SpmvWorkspace).

use sf2d_spmv::compiled::CompiledSpmv;
use sf2d_spmv::distmat::RankBlock;

/// Where a rank finds the B row for one of its column-map slots after the
/// expand phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BRowRef {
    /// The row is locally owned: read `b.row(gid)` directly.
    Local {
        /// Global row id.
        gid: u32,
    },
    /// The row arrived in the expand exchange and was decoded into the
    /// scratch's `rcols` / `rvals` arrays.
    Remote {
        /// Start offset into `rcols` / `rvals`.
        off: u32,
        /// Number of nonzeros.
        len: u32,
    },
}

impl Default for BRowRef {
    fn default() -> BRowRef {
        BRowRef::Local { gid: 0 }
    }
}

/// One rank's scratch state for one SpGEMM execution. All buffers are
/// reused across calls; nothing here survives as output (the kernel copies
/// the final rows out into per-rank [`CsrMatrix`](sf2d_graph::CsrMatrix)
/// blocks).
#[derive(Debug, Clone, Default)]
pub(crate) struct RankSpgemmScratch {
    /// SPA dense values over B's column space.
    pub spa_vals: Vec<f64>,
    /// SPA generation stamps (`stamp[k] == spa_gen` ⇔ column `k` touched
    /// in the current row) — bumping the generation clears the SPA in O(1).
    pub spa_stamp: Vec<u32>,
    /// Current SPA generation.
    pub spa_gen: u32,
    /// Columns touched in the current row (sorted before emission).
    pub touched: Vec<u32>,
    /// B-row location per column-map slot.
    pub brows: Vec<BRowRef>,
    /// Decoded remote B-row column indices, concatenated.
    pub rcols: Vec<u32>,
    /// Decoded remote B-row values, concatenated.
    pub rvals: Vec<f64>,
    /// Partial C rows (one per row-map position), CSR-style.
    pub part_ptr: Vec<usize>,
    /// Partial-row column indices.
    pub part_cols: Vec<u32>,
    /// Partial-row values.
    pub part_vals: Vec<f64>,
    /// Per owned `y` lid: the row-map position of this rank's own partial
    /// for that row, or `u32::MAX` when the rank holds no local partial.
    pub own_part: Vec<u32>,
    /// Incoming partial rows for the merge: `(y_lid, src, slot, off, len)`
    /// in message order, stably sorted by `y_lid` (so per-row merge order
    /// stays sources-ascending).
    pub incoming: Vec<(u32, u32, u32, u32, u32)>,
    /// Final owned C rows, CSR-style (copied into the output blocks).
    pub out_ptr: Vec<usize>,
    /// Final-row column indices.
    pub out_cols: Vec<u32>,
    /// Final-row values.
    pub out_vals: Vec<f64>,
    /// Multiply product terms processed this call (2 flops each).
    pub terms: u64,
    /// Entries merged in the merge phase this call (1 flop each).
    pub merged: u64,
}

impl RankSpgemmScratch {
    /// Resets the SPA generation when the next `rows` bumps would overflow
    /// the `u32` stamp space.
    pub fn guard_gen(&mut self, rows: usize) {
        if self.spa_gen > u32::MAX - (rows as u32 + 1) {
            self.spa_stamp.fill(0);
            self.spa_gen = 0;
        }
    }
}

/// One rank's outgoing message payloads for one exchange, stored as a
/// single flat allocation with a per-slot offset table — not one `Vec`
/// per message, which at paper-scale rank counts (millions of tiny
/// messages) would be mostly allocator headers. Slot order matches the
/// rank's compiled pack list, so destination ranks read payloads in place
/// via their compiled `(src, slot)` unpack entries.
#[derive(Debug, Clone, Default)]
pub(crate) struct MsgBufs {
    /// All message payloads, concatenated in slot order.
    pub data: Vec<f64>,
    /// Message boundaries: slot `k` is `data[offs[k]..offs[k + 1]]`.
    pub offs: Vec<usize>,
}

impl MsgBufs {
    /// Empties the buffers for a fresh pack pass (keeps the allocations).
    pub fn reset(&mut self) {
        self.data.clear();
        self.offs.clear();
        self.offs.push(0);
    }

    /// Marks the end of the current message: everything pushed onto
    /// `data` since the previous seal belongs to the just-finished slot.
    pub fn seal(&mut self) {
        self.offs.push(self.data.len());
    }

    /// Slot `k`'s payload.
    #[inline]
    pub fn msg(&self, slot: usize) -> &[f64] {
        &self.data[self.offs[slot]..self.offs[slot + 1]]
    }

    /// Number of sealed messages.
    pub fn nmsgs(&self) -> usize {
        self.offs.len().saturating_sub(1)
    }
}

/// DCSC-style hypersparse local block storage: a CSR over only the
/// **nonempty** rows, keyed by global row id. At SUMMA block granularity
/// a rank's `A[i][t]` / `B[t][j]` block holds `O(nnz/p)` nonzeros spread
/// over `O(n/√p)` candidate rows, so a dense `rowptr` would be mostly
/// zeros — the hypersparse layout stores one entry per *present* row
/// instead (Buluç & Gilbert's argument for DCSC).
///
/// Rows are kept sorted by global id; lookup is a binary search over the
/// present rows. All buffers reuse their allocations across calls.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct HyperCsr {
    /// Global ids of the nonempty rows, ascending.
    pub rows: Vec<u32>,
    /// Row boundaries: row `k` is `cols/vals[ptr[k]..ptr[k + 1]]`
    /// (`ptr.len() == rows.len() + 1`; empty when no rows).
    pub ptr: Vec<usize>,
    /// Column indices, ascending within each row.
    pub cols: Vec<u32>,
    /// Values, aligned with `cols`.
    pub vals: Vec<f64>,
}

impl HyperCsr {
    /// Empties the block for reuse (keeps allocations).
    pub fn clear(&mut self) {
        self.rows.clear();
        self.ptr.clear();
        self.cols.clear();
        self.vals.clear();
    }

    /// Appends one row. Callers must append rows in ascending `gid`
    /// order; [`Self::sort_rows`] restores the invariant after
    /// out-of-order bulk loads.
    pub fn push_row(&mut self, gid: u32, cols: &[u32], vals: &[f64]) {
        debug_assert_eq!(cols.len(), vals.len());
        if self.ptr.is_empty() {
            self.ptr.push(0);
        }
        self.rows.push(gid);
        self.cols.extend_from_slice(cols);
        self.vals.extend_from_slice(vals);
        self.ptr.push(self.cols.len());
    }

    /// Number of stored (nonempty) rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Total nonzeros.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Row `k` by position.
    #[inline]
    pub fn row_at(&self, k: usize) -> (u32, &[u32], &[f64]) {
        let (lo, hi) = (self.ptr[k], self.ptr[k + 1]);
        (self.rows[k], &self.cols[lo..hi], &self.vals[lo..hi])
    }

    /// Row with global id `gid`, if present (binary search).
    #[inline]
    pub fn row(&self, gid: u32) -> Option<(&[u32], &[f64])> {
        let k = self.rows.binary_search(&gid).ok()?;
        let (lo, hi) = (self.ptr[k], self.ptr[k + 1]);
        Some((&self.cols[lo..hi], &self.vals[lo..hi]))
    }

    /// Restores the ascending-`gid` invariant after rows were appended
    /// out of order (e.g. decoded from several senders). Each `gid`
    /// must appear at most once.
    pub fn sort_rows(&mut self) {
        if self.rows.windows(2).all(|w| w[0] < w[1]) {
            return;
        }
        let mut order: Vec<usize> = (0..self.rows.len()).collect();
        order.sort_by_key(|&k| self.rows[k]);
        let mut out = HyperCsr::default();
        for &k in &order {
            let (gid, cols, vals) = self.row_at(k);
            out.push_row(gid, cols, vals);
        }
        *self = out;
    }
}

/// One rank's outgoing traffic for one **directed** exchange: a flat
/// [`MsgBufs`] payload store plus the destination rank of every sealed
/// slot. Unlike the compiled expand/fold plans (where the receiver knows
/// its `(src, slot)` entries ahead of time), SUMMA's shuffles and
/// broadcasts compute destinations on the fly, so the slot → destination
/// map rides along with the payloads and receivers locate their slot by
/// scanning `dsts` (each sender targets a given rank at most once per
/// exchange).
#[derive(Debug, Clone, Default)]
pub(crate) struct DirBufs {
    /// Slot payloads (see [`MsgBufs`]).
    pub bufs: MsgBufs,
    /// Destination rank per sealed slot (`dsts.len() == bufs.nmsgs()`).
    /// Only nonempty, non-self slots are sealed.
    pub dsts: Vec<u32>,
}

impl DirBufs {
    /// Empties payloads and destinations for a fresh pack pass.
    pub fn reset(&mut self) {
        self.bufs.reset();
        self.dsts.clear();
    }

    /// Seals the pending payload for `dst` if anything was pushed since
    /// the last seal; otherwise rolls it back (empty messages are never
    /// sent).
    pub fn seal_to(&mut self, dst: u32) {
        let start = *self.bufs.offs.last().expect("reset() ran");
        if self.bufs.data.len() > start {
            self.bufs.seal();
            self.dsts.push(dst);
        } else {
            self.bufs.data.truncate(start);
        }
    }

    /// The slot this rank addresses to `dst`, if any.
    pub fn slot_for(&self, dst: u32) -> Option<usize> {
        self.dsts.iter().position(|&d| d == dst)
    }
}

/// One rank's scratch state for one Sparse SUMMA execution. Mirrors
/// [`RankSpgemmScratch`]'s reuse discipline: everything here is reused
/// across calls and copied out at the end.
#[derive(Debug, Clone, Default)]
pub(crate) struct RankSummaScratch {
    /// SPA dense values over B's column space.
    pub spa_vals: Vec<f64>,
    /// SPA generation stamps (see [`RankSpgemmScratch::spa_stamp`]).
    pub spa_stamp: Vec<u32>,
    /// Current SPA generation.
    pub spa_gen: u32,
    /// Columns touched in the current row (sorted before emission).
    pub touched: Vec<u32>,
    /// The rank's A block `A[i][j]` after the A-shuffle (global ids).
    pub a_block: HyperCsr,
    /// B-root storage: `b_stage[t]` holds the stage-`t` rows (restricted
    /// to this rank's column chunk) for every stage this rank roots.
    pub b_stage: Vec<HyperCsr>,
    /// Received A block for the current stage (non-roots).
    pub a_recv: HyperCsr,
    /// Received B block for the current stage (non-roots).
    pub b_recv: HyperCsr,
    /// Per-stage partial products `A[i][t]·B[t][j]`.
    pub stage_out: Vec<HyperCsr>,
    /// Cross-stage merged chunk rows (stage order, exact sums).
    pub merged: HyperCsr,
    /// `(gid, stage, row-position)` sort keys for the cross-stage merge.
    pub pairs: Vec<(u32, u32, u32)>,
    /// Incoming fold rows `(lid, chunk, src, slot, off, len)`, sorted by
    /// `(lid, chunk)` so assembly concatenates chunks in column order.
    pub incoming: Vec<(u32, u32, u32, u32, u32, u32)>,
    /// Final owned C rows, CSR-style over the rank's vector lids.
    pub out_ptr: Vec<usize>,
    /// Final-row column indices.
    pub out_cols: Vec<u32>,
    /// Final-row values.
    pub out_vals: Vec<f64>,
    /// Multiply product terms processed this call (2 flops each).
    pub terms: u64,
    /// Product terms of the stage currently being billed.
    pub stage_terms: u64,
    /// Entries merged across stages (1 flop each).
    pub merged_flops: u64,
    /// Entries concatenated during owner assembly (1 flop each).
    pub assemble_flops: u64,
}

impl RankSummaScratch {
    /// Resets the SPA generation before `rows` more bumps would overflow
    /// the `u32` stamp space.
    pub fn guard_gen(&mut self, rows: usize) {
        if self.spa_gen > u32::MAX - (rows as u32 + 1) {
            self.spa_stamp.fill(0);
            self.spa_gen = 0;
        }
    }
}

/// Reusable scratch for [`summa_with`](crate::summa::summa_with): per-rank
/// hypersparse blocks and SPA state plus the resident shuffle / stage /
/// fold payload buffers (PR 8-style flat [`MsgBufs`], read in place by
/// receivers). Like [`SpgemmWorkspace`], not tied to a matrix; buffers
/// are (re)sized on first use and `threads` fans the per-rank phase work
/// out with bit-identical results.
#[derive(Debug, Clone)]
pub struct SummaWorkspace {
    /// Number of OS threads for phase-local work (1 = fully sequential).
    pub threads: usize,
    pub(crate) ranks: Vec<RankSummaScratch>,
    /// A-redistribution payloads (one slot per stage column, serialized
    /// hypersparse rows).
    pub(crate) shuffle_a: Vec<DirBufs>,
    /// B-redistribution payloads (one slot per column chunk).
    pub(crate) shuffle_b: Vec<DirBufs>,
    /// Current stage's A row-broadcast fragments: roots seal exactly one
    /// payload, read in place by every row peer (destinations are a pure
    /// function of the grid, so no `dsts` list is needed).
    pub(crate) stage_a: Vec<MsgBufs>,
    /// Current stage's B col-broadcast fragments (roots only).
    pub(crate) stage_b: Vec<MsgBufs>,
    /// Fold payloads (merged chunk rows bound for their row owners).
    pub(crate) fold: Vec<DirBufs>,
}

impl SummaWorkspace {
    /// A sequential (single-threaded) workspace.
    pub fn new() -> SummaWorkspace {
        SummaWorkspace::with_threads(1)
    }

    /// A workspace whose phase-local work fans out across `threads` OS
    /// threads (clamped to at least 1).
    pub fn with_threads(threads: usize) -> SummaWorkspace {
        SummaWorkspace {
            threads: threads.max(1),
            ranks: Vec::new(),
            shuffle_a: Vec::new(),
            shuffle_b: Vec::new(),
            stage_a: Vec::new(),
            stage_b: Vec::new(),
            fold: Vec::new(),
        }
    }

    /// Sizes the per-rank state for `p` ranks, `stages` grid columns,
    /// and a B with `bcols` columns, reusing allocations that fit.
    pub(crate) fn ensure(&mut self, p: usize, stages: usize, bcols: usize) {
        self.ranks.resize_with(p, RankSummaScratch::default);
        for scratch in &mut self.ranks {
            scratch.spa_vals.resize(bcols, 0.0);
            scratch.spa_stamp.resize(bcols, 0);
            scratch.b_stage.resize_with(stages, HyperCsr::default);
            scratch.stage_out.resize_with(stages, HyperCsr::default);
            for b in &mut scratch.b_stage {
                b.clear();
            }
            for s in &mut scratch.stage_out {
                s.clear();
            }
            scratch.a_block.clear();
            scratch.merged.clear();
            scratch.terms = 0;
            scratch.stage_terms = 0;
            scratch.merged_flops = 0;
            scratch.assemble_flops = 0;
        }
        self.shuffle_a.resize_with(p, DirBufs::default);
        self.shuffle_b.resize_with(p, DirBufs::default);
        self.stage_a.resize_with(p, MsgBufs::default);
        self.stage_b.resize_with(p, MsgBufs::default);
        self.fold.resize_with(p, DirBufs::default);
    }
}

impl Default for SummaWorkspace {
    fn default() -> SummaWorkspace {
        SummaWorkspace::new()
    }
}

/// Reusable scratch space for [`spgemm_with`](crate::kernel::spgemm_with):
/// per-rank SPA accumulators and row buffers plus the resident expand/fold
/// message payloads, which destination ranks read in place via the
/// compiled `(src, slot)` unpack entries (no per-message allocation at
/// steady state).
///
/// Like [`SpmvWorkspace`](sf2d_spmv::SpmvWorkspace), a workspace is not
/// tied to a matrix — buffers are (re)sized on first use — and the
/// `threads` knob fans the per-rank phase work across OS threads with
/// bit-identical results (ranks only touch disjoint state).
#[derive(Debug, Clone)]
pub struct SpgemmWorkspace {
    /// Number of OS threads for phase-local work (1 = fully sequential).
    pub threads: usize,
    pub(crate) ranks: Vec<RankSpgemmScratch>,
    /// Per-rank expand payloads, slots aligned with each rank's compiled
    /// expand `pack` list: serialized B rows, `[nnz, cols..., vals...]`
    /// per row, flat per rank.
    pub(crate) expand_bufs: Vec<MsgBufs>,
    /// Per-rank fold payloads, slots aligned with the compiled fold
    /// `pack` list: serialized partial C rows, same framing.
    pub(crate) fold_bufs: Vec<MsgBufs>,
}

impl SpgemmWorkspace {
    /// A sequential (single-threaded) workspace.
    pub fn new() -> SpgemmWorkspace {
        SpgemmWorkspace::with_threads(1)
    }

    /// A workspace whose phase-local work fans out across `threads` OS
    /// threads (clamped to at least 1).
    pub fn with_threads(threads: usize) -> SpgemmWorkspace {
        SpgemmWorkspace {
            threads: threads.max(1),
            ranks: Vec::new(),
            expand_bufs: Vec::new(),
            fold_bufs: Vec::new(),
        }
    }

    /// Sizes the per-rank buffers for `blocks` and a B with `bcols`
    /// columns, reusing allocations where they already fit.
    pub(crate) fn ensure(&mut self, blocks: &[RankBlock], _compiled: &CompiledSpmv, bcols: usize) {
        self.ranks
            .resize_with(blocks.len(), RankSpgemmScratch::default);
        for (scratch, block) in self.ranks.iter_mut().zip(blocks) {
            scratch.spa_vals.resize(bcols, 0.0);
            scratch.spa_stamp.resize(bcols, 0);
            scratch.brows.resize(block.colmap.len(), BRowRef::default());
        }
        // Message buffers are reset by each pack pass; only the per-rank
        // slots need to exist.
        self.expand_bufs.resize_with(blocks.len(), MsgBufs::default);
        self.fold_bufs.resize_with(blocks.len(), MsgBufs::default);
    }
}

impl Default for SpgemmWorkspace {
    fn default() -> SpgemmWorkspace {
        SpgemmWorkspace::new()
    }
}
