//! Chaos-routed SpGEMM: [`spgemm_chaos`] is [`spgemm_with`] with both
//! exchanges also pushed through a [`ChaosRuntime`] wire. The runtime's
//! verify-retry protocol heals every injected fault, so the delivered
//! payloads are bit-identical to the resident fault-free buffers — the
//! kernel asserts exactly that, message by message — and the output C is
//! bit-identical to a plain run. Only the ledger can differ, by the
//! [`Phase::Retransmit`](sf2d_sim::cost::Phase::Retransmit) supersteps
//! that itemize the extra traffic; at rate 0 those are skipped and the
//! run is byte-identical (values *and* ledger) to [`spgemm_with`].
//!
//! Chaos superstep indices (for [`FaultScript`](sf2d_sim::fault)
//! targeting): the expand exchange is routing step 0, the fold exchange
//! is step 1.

use sf2d_graph::CsrMatrix;
use sf2d_obs::{trace_span, PhaseKind};
use sf2d_sim::cost::{CostLedger, Phase, PhaseCost};
use sf2d_sim::fault::{bill_retransmit, ChaosRuntime};
use sf2d_sim::runtime::par_ranks;
use sf2d_spmv::compiled::PhasePlan;
use sf2d_spmv::distmat::DistCsrMatrix;

use crate::kernel::{
    decode_expand, exchange_stats, finish, gustavson, merge_rank, pack_expand, pack_fold,
    DistSpgemm,
};
use crate::workspace::{MsgBufs, SpgemmWorkspace};

/// Clones one exchange's resident payload buffers into wire messages,
/// `(dst, payload)` in the compiled pack order.
fn wire_sends(bufs: &[MsgBufs], dsts: impl Fn(usize) -> Vec<u32>) -> Vec<Vec<(u32, Vec<f64>)>> {
    bufs.iter()
        .enumerate()
        .map(|(r, out)| {
            dsts(r)
                .into_iter()
                .enumerate()
                .map(|(slot, d)| (d, out.msg(slot).to_vec()))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Routes one exchange through the chaos wire and checks the healed
/// deliveries against the resident buffers the plain kernel reads:
/// same sources, same order, same bits.
fn route_and_verify(
    rt: &mut ChaosRuntime,
    ledger: &mut CostLedger,
    p: usize,
    bufs: &[MsgBufs],
    sends: Vec<Vec<(u32, Vec<f64>)>>,
    plan: &PhasePlan,
    what: &str,
) {
    let (delivered, extra) = rt.route(p, sends);
    bill_retransmit(ledger, &extra);
    for (r, inbox) in delivered.iter().enumerate() {
        let unpack = plan.unpack_entries(r);
        assert_eq!(
            inbox.len(),
            unpack.len(),
            "{what}: wrong message count at rank {r}"
        );
        for (msg, e) in inbox.iter().zip(unpack) {
            assert_eq!(msg.src, e.src, "{what}: source mismatch at rank {r}");
            let resident = bufs[e.src as usize].msg(e.slot as usize);
            assert_eq!(
                msg.data.len(),
                resident.len(),
                "{what}: short message at rank {r}"
            );
            let same_bits = msg
                .data
                .iter()
                .zip(resident.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same_bits, "{what}: corrupted delivery at rank {r}");
        }
    }
}

/// Distributed `C = A·B` under fault injection.
///
/// Runs the plain kernel's phases on an internal workspace sized to
/// `rt.threads`, with each exchange *also* routed through the chaos
/// wire: the billed Expand/Multiply/Fold/Merge/Collective supersteps are
/// identical to [`spgemm_with`]'s, and each routed exchange appends a
/// `Retransmit` superstep when (and only when) faults cost something.
pub fn spgemm_chaos(
    a: &DistCsrMatrix,
    b: &CsrMatrix,
    ledger: &mut CostLedger,
    rt: &mut ChaosRuntime,
) -> DistSpgemm {
    assert_eq!(a.n, b.nrows(), "spgemm_chaos: dimension mismatch");
    let p = a.nprocs();
    let mut ws = SpgemmWorkspace::with_threads(rt.threads);
    ws.ensure(&a.blocks, &a.compiled, b.ncols());
    let threads = ws.threads;
    let compiled = &a.compiled;
    let vmap = &a.vmap;

    // Phase 1 — expand, packed into the resident buffers exactly like the
    // plain kernel, then mirrored onto the misbehaving wire.
    trace_span!(PhaseKind::Pack, "spgemm-chaos:expand-pack", {
        par_ranks(threads, &mut ws.expand_bufs, |r, buf| {
            pack_expand(buf, compiled.expand_rank(r), vmap.gids(r), b);
        })
    });
    let expand = exchange_stats(&ws.expand_bufs, &compiled.expand);
    ledger.superstep(Phase::Expand, &expand.costs);
    let sends = wire_sends(&ws.expand_bufs, |r| {
        compiled.expand_rank(r).packs().map(|(d, _, _)| d).collect()
    });
    route_and_verify(
        rt,
        ledger,
        p,
        &ws.expand_bufs,
        sends,
        &compiled.expand,
        "spgemm expand",
    );

    // Phase 2 — multiply (faults never reach this: the protocol hands
    // over verified bits only, as asserted above).
    let ebufs = &ws.expand_bufs;
    trace_span!(PhaseKind::Multiply, "spgemm-chaos:unpack-multiply", {
        par_ranks(threads, &mut ws.ranks, |r, scratch| {
            decode_expand(scratch, &a.blocks[r], compiled.expand_rank(r), ebufs);
            scratch.terms = gustavson(scratch, &a.blocks[r], b);
        })
    });
    let multiply_costs: Vec<PhaseCost> = ws
        .ranks
        .iter()
        .map(|s| PhaseCost::compute(2 * s.terms))
        .collect();
    ledger.superstep(Phase::Multiply, &multiply_costs);

    // Phase 3 — fold, same resident-buffer + wire mirroring.
    let ranks = &ws.ranks;
    trace_span!(PhaseKind::Pack, "spgemm-chaos:fold-pack", {
        par_ranks(threads, &mut ws.fold_bufs, |r, buf| {
            pack_fold(buf, compiled.fold_rank(r), &ranks[r]);
        })
    });
    let fold = exchange_stats(&ws.fold_bufs, &compiled.fold);
    ledger.superstep(Phase::Fold, &fold.costs);
    let sends = wire_sends(&ws.fold_bufs, |r| {
        compiled.fold_rank(r).packs().map(|(d, _, _)| d).collect()
    });
    route_and_verify(
        rt,
        ledger,
        p,
        &ws.fold_bufs,
        sends,
        &compiled.fold,
        "spgemm fold",
    );

    // Phase 4 — merge at the owners.
    let fbufs = &ws.fold_bufs;
    trace_span!(PhaseKind::Merge, "spgemm-chaos:merge", {
        par_ranks(threads, &mut ws.ranks, |r, scratch| {
            scratch.merged = merge_rank(scratch, vmap.nlocal(r), compiled.fold_rank(r), fbufs);
        })
    });
    let merge_costs: Vec<PhaseCost> = ws
        .ranks
        .iter()
        .map(|s| PhaseCost::compute(s.merged))
        .collect();
    ledger.superstep(Phase::Merge, &merge_costs);

    finish(a, b.ncols(), &ws, ledger, expand, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::spgemm_dist;
    use sf2d_gen::{rmat, RmatConfig};
    use sf2d_partition::MatrixDist;
    use sf2d_sim::sf2d_chaos::{FaultKind, FaultScript};
    use sf2d_sim::Machine;

    fn fixture() -> (CsrMatrix, CsrMatrix, DistCsrMatrix) {
        let a = rmat(&RmatConfig::graph500(6), 17);
        let b = a.transpose();
        let dm = DistCsrMatrix::from_global(&a, &MatrixDist::block_2d(a.nrows(), 2, 2));
        (a, b, dm)
    }

    #[test]
    fn rate_zero_is_byte_identical_to_plain() {
        let (_a, b, dm) = fixture();
        let mut l0 = CostLedger::new(Machine::cab());
        let plain = spgemm_dist(&dm, &b, &mut l0);
        let mut l1 = CostLedger::new(Machine::cab());
        let mut rt = ChaosRuntime::seeded(42, 0.0);
        let chaotic = spgemm_chaos(&dm, &b, &mut l1, &mut rt);
        assert_eq!(plain.locals, chaotic.locals);
        assert_eq!(l0.history, l1.history);
        assert_eq!(l0.total.to_bits(), l1.total.to_bits());
    }

    #[test]
    fn seeded_faults_recover_the_fault_free_bits_at_extra_cost() {
        let (_a, b, dm) = fixture();
        let mut l0 = CostLedger::new(Machine::cab());
        let plain = spgemm_dist(&dm, &b, &mut l0);
        let mut l1 = CostLedger::new(Machine::cab());
        let mut rt = ChaosRuntime::seeded(7, 0.4);
        let chaotic = spgemm_chaos(&dm, &b, &mut l1, &mut rt);
        assert_eq!(plain.locals, chaotic.locals);
        assert!(rt.stats.any(), "rate 0.4 injected nothing");
        assert!(l1.total > l0.total, "faults should cost extra");
    }

    #[test]
    fn scripted_expand_drop_is_healed() {
        let (_a, b, dm) = fixture();
        // Drop the first real expand message (routing step 0), whichever
        // pair the layout produces.
        let (src, dst) = dm
            .import
            .sends
            .iter()
            .enumerate()
            .find_map(|(r, out)| out.first().map(|(d, _)| (r as u32, *d)))
            .expect("2x2 block layout always has expand traffic");
        let script = FaultScript::default().fault(0, src, dst, 0, FaultKind::Drop);
        let mut rt = ChaosRuntime::scripted(script);
        let mut l = CostLedger::new(Machine::cab());
        let chaotic = spgemm_chaos(&dm, &b, &mut l, &mut rt);
        let mut l0 = CostLedger::new(Machine::cab());
        let plain = spgemm_dist(&dm, &b, &mut l0);
        assert_eq!(plain.locals, chaotic.locals);
        assert_eq!(rt.stats.drops, 1);
        assert!(
            l.history.iter().any(|(ph, _)| *ph == Phase::Retransmit),
            "drop should bill a retransmit superstep"
        );
    }

    #[test]
    fn chaos_matches_across_thread_counts() {
        let (_a, b, dm) = fixture();
        let mut gold: Option<DistSpgemm> = None;
        for threads in [1usize, 2, 8] {
            let mut rt = ChaosRuntime::seeded(99, 0.2).with_threads(threads);
            let mut l = CostLedger::new(Machine::cab());
            let c = spgemm_chaos(&dm, &b, &mut l, &mut rt);
            match &gold {
                None => gold = Some(c),
                Some(g) => {
                    assert_eq!(g.locals, c.locals);
                    for (gl, cl) in g.locals.iter().zip(&c.locals) {
                        let gb: Vec<u64> = gl.values().iter().map(|v| v.to_bits()).collect();
                        let cb: Vec<u64> = cl.values().iter().map(|v| v.to_bits()).collect();
                        assert_eq!(gb, cb);
                    }
                }
            }
        }
    }
}
