//! Distributed SpGEMM (`C = A·B`) on the 2D-layout SpMV infrastructure.
//!
//! The paper's thesis is that one 2D data distribution serves *all* the
//! matrix computations of a graph-analysis pipeline, not just SpMV. This
//! crate demonstrates that on sparse matrix-matrix multiplication: the
//! kernel runs row-wise Gustavson locally and moves every remote B row
//! and partial C row through the **same compiled expand/fold schedules**
//! the SpMV uses ([`CompiledSpmv`](sf2d_spmv::compiled::CompiledSpmv)),
//! so the per-rank message count of one SpGEMM is bounded by the SpMV's
//! (≤ pr + pc − 2 sends under a 2D layout) and every layout the
//! experiment suite knows (1D/2D × Block/Random/GP) works unchanged.
//!
//! - [`spgemm_dist`] / [`spgemm_with`]: the kernel, one-shot or through a
//!   reusable [`SpgemmWorkspace`] (SPA accumulators + resident message
//!   payloads, multi-threaded over ranks with bit-identical results).
//! - [`DistSpgemm`]: the distributed product — per-rank owned row blocks
//!   plus measured per-phase traffic ([`ExchangeStats`]) and work.
//! - [`spgemm_chaos`]: the same kernel under fault injection; heals every
//!   fault and proves bit-equality with the fault-free run.
//! - [`summa_dist`] / [`summa_with`] / [`summa_chaos`]: the
//!   communication-avoiding alternative — Sparse SUMMA over the same
//!   grid ([`crate::summa`]), `√p` stages of row/column block broadcasts
//!   with DCSC-style hypersparse local storage, bounding every rank at
//!   `(pr − 1) + (pc − 1)` sends *per stage* for **any** layout (where
//!   expand/fold degrades to `p − 1` sends under 1D distributions).
//!   Same owned-row output blocks, so the two paths compare bitwise.
//!
//! Costs are charged per call (Expand / Multiply / Fold / Merge /
//! Collective supersteps) because SpGEMM payload sizes depend on B and C,
//! unlike the SpMV's frozen one-double-per-gid costs. The distributed
//! result is **bitwise equal** to the serial Gustavson oracle
//! ([`sf2d_graph::spgemm`]) whenever row sums are exact — the
//! differential test suite in `tests/` pins this across layouts, process
//! counts, and thread counts.

#![warn(missing_docs)]

pub mod chaos;
pub mod kernel;
pub mod summa;
pub mod workspace;

pub use chaos::spgemm_chaos;
pub use kernel::{spgemm_dist, spgemm_with, DistSpgemm, ExchangeStats};
pub use summa::{summa_chaos, summa_dist, summa_with, SummaGrid, SummaSpgemm};
pub use workspace::{BRowRef, SpgemmWorkspace, SummaWorkspace};
