//! Property-based tests for layout and partitioner invariants.

use proptest::prelude::*;
use sf2d_graph::{CooMatrix, CsrMatrix, Graph};
use sf2d_partition::{
    grid_shape, partition_graph, partition_hypergraph_matrix, GpConfig, HgConfig, LayoutMetrics,
    MatrixDist, Partition,
};

fn sym_matrix_strategy() -> impl Strategy<Value = CsrMatrix> {
    (4usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0u32..40, 0u32..40), 1..150).prop_map(move |edges| {
            let mut coo = CooMatrix::new(n, n);
            for (u, v) in edges {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    coo.push_sym(u, v, 1.0);
                }
            }
            CsrMatrix::from_coo(&coo)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Algorithm 2's diagonal-home property: a_kk always lives with x_k,
    /// for any rpart, any grid, both orientations.
    #[test]
    fn diagonal_stays_home(
        n in 2usize..60,
        pr in 1u32..6,
        pc in 1u32..6,
        seed in 0u64..500,
        swapped in proptest::bool::ANY,
    ) {
        let p = (pr * pc) as usize;
        let rpart = MatrixDist::random_1d(n, p, seed).rpart().to_vec();
        let part = Partition::new(rpart, p);
        let d = MatrixDist::cartesian_2d(&part, pr, pc, swapped);
        for k in 0..n as u32 {
            prop_assert_eq!(d.nonzero_owner(k, k), d.vector_owner(k));
        }
    }

    /// The grid-row/grid-column alignment that gives the O(sqrt p) bound:
    /// all nonzeros of matrix row i land in one grid row; all of column j
    /// in one grid column (unswapped orientation).
    #[test]
    fn cartesian_alignment(
        n in 2usize..40,
        pr in 1u32..5,
        pc in 1u32..5,
        seed in 0u64..100,
    ) {
        let _p = (pr * pc) as usize;
        let d = MatrixDist::random_2d(n, pr, pc, seed);
        for i in 0..n as u32 {
            let gr = d.nonzero_owner(i, 0) % pr;
            for j in 0..n as u32 {
                prop_assert_eq!(d.nonzero_owner(i, j) % pr, gr);
            }
        }
        for j in 0..n as u32 {
            let gc = d.nonzero_owner(0, j) / pr;
            for i in 0..n as u32 {
                prop_assert_eq!(d.nonzero_owner(i, j) / pr, gc);
            }
        }
    }

    /// Metrics conservation: per-rank nonzeros sum to nnz, vector entries
    /// to n, and the message bound holds for 2D layouts.
    #[test]
    fn metrics_conservation(a in sym_matrix_strategy(), p in 1usize..10, seed in 0u64..100) {
        let n = a.nrows();
        let (pr, pc) = grid_shape(p);
        for d in [
            MatrixDist::block_1d(n, p),
            MatrixDist::random_1d(n, p, seed),
            MatrixDist::block_2d(n, pr, pc),
            MatrixDist::random_2d(n, pr, pc, seed),
        ] {
            let m = LayoutMetrics::compute(&a, &d);
            prop_assert_eq!(m.nnz_per_rank.iter().sum::<usize>(), a.nnz());
            prop_assert_eq!(m.vec_per_rank.iter().sum::<usize>(), n);
            prop_assert!(m.max_msgs() <= d.message_bound().max(1));
            // Send and receive message totals match (every message has both).
            prop_assert_eq!(
                m.expand_send_msgs.iter().sum::<usize>(),
                m.expand_recv_msgs.iter().sum::<usize>()
            );
            prop_assert_eq!(
                m.fold_send_msgs.iter().sum::<usize>(),
                m.fold_recv_msgs.iter().sum::<usize>()
            );
        }
    }

    /// The graph partitioner always returns a valid partition with every
    /// part id in range, and it is deterministic.
    #[test]
    fn gp_output_valid(a in sym_matrix_strategy(), k in 1usize..9, seed in 0u64..50) {
        let g = Graph::from_symmetric_matrix(&a);
        let cfg = GpConfig { seed, ..GpConfig::default() };
        let p1 = partition_graph(&g, k, &cfg);
        prop_assert_eq!(p1.len(), g.nv());
        prop_assert!(p1.part.iter().all(|&x| (x as usize) < k));
        let p2 = partition_graph(&g, k, &cfg);
        prop_assert_eq!(p1.part, p2.part);
    }

    /// Same for the hypergraph partitioner, plus the λ−1 = 1D expand volume
    /// identity.
    #[test]
    fn hp_output_valid_and_lambda_identity(a in sym_matrix_strategy(), k in 1usize..7) {
        let part = partition_hypergraph_matrix(&a, k, &HgConfig::default());
        prop_assert!(part.part.iter().all(|&x| (x as usize) < k));
        let d = MatrixDist::from_partition_1d(&part);
        let m = LayoutMetrics::compute(&a, &d);
        let h = sf2d_partition::hg::hypergraph::Hypergraph::column_net_model(&a);
        prop_assert_eq!(
            m.expand_send_vol.iter().sum::<usize>() as i64,
            h.connectivity_minus_one(&part.part, k)
        );
    }

    /// Partition::comm_volume equals the layout metrics' 1D expand volume.
    #[test]
    fn comm_volume_identity(a in sym_matrix_strategy(), k in 1usize..7, seed in 0u64..50) {
        let g = Graph::from_symmetric_matrix(&a);
        let rpart = MatrixDist::random_1d(g.nv(), k, seed).rpart().to_vec();
        let part = Partition::new(rpart, k);
        let d = MatrixDist::from_partition_1d(&part);
        let m = LayoutMetrics::compute(g.adjacency(), &d);
        prop_assert_eq!(
            m.expand_send_vol.iter().sum::<usize>(),
            part.comm_volume(&g)
        );
    }
}
