//! The determinism contract of the parallel partitioner, property-tested:
//! for any thread count, the result is **byte-identical** to the
//! sequential run — same seed, same part vector, regardless of how the
//! recursion tree was forked or how the heavy loops were chunked.
//!
//! Thread counts are driven through `GpConfig::threads` /
//! `MondriaanConfig::threads` rather than `SF2D_THREADS` so test cases
//! can't race on the process environment.

use proptest::prelude::*;
use sf2d_gen::{chung_lu, powerlaw_degrees, rmat, RmatConfig};
use sf2d_graph::{CsrMatrix, Graph};
use sf2d_partition::{
    mondriaan, partition_graph, partition_graph_multiconstraint, GpConfig, MondriaanConfig,
};

/// Scale-free test inputs from both generator families: R-MAT (Graph500
/// parameters) and Chung–Lu over power-law degrees.
fn scale_free_matrix() -> impl Strategy<Value = CsrMatrix> {
    (proptest::bool::ANY, 0u32..2, 0u64..20).prop_map(|(use_rmat, size, seed)| {
        if use_rmat {
            rmat(&RmatConfig::graph500(7 + size), seed)
        } else {
            let n = 150 + 200 * size as usize;
            let degs = powerlaw_degrees(n, 2.2, 1, n / 4, seed);
            chung_lu(&degs, 4 * n, 0, 0.0, seed ^ 0x5EED)
        }
    })
}

proptest! {
    // Each case runs up to eight full multilevel partitioner calls, so
    // keep the case count modest; the k × threads × ncon grid inside each
    // case does the real sweeping.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// parallel == sequential for every k in {2,4,16,64}, every thread
    /// count in {1,2,4,8}, single-constraint and multiconstraint.
    #[test]
    fn gp_parallel_matches_sequential(
        a in scale_free_matrix(),
        k_idx in 0usize..4,
        seed in 0u64..1000,
        multiconstraint in proptest::bool::ANY,
    ) {
        let k = [2usize, 4, 16, 64][k_idx];
        let g = Graph::from_symmetric_matrix(&a);
        let run = |threads: usize| {
            let cfg = GpConfig { seed, threads, ..GpConfig::default() };
            if multiconstraint {
                partition_graph_multiconstraint(&g, k, &cfg)
            } else {
                partition_graph(&g, k, &cfg)
            }
        };
        let seq = run(1);
        prop_assert!(seq.part.iter().all(|&x| (x as usize) < k));
        for threads in [2usize, 4, 8] {
            let par = run(threads);
            prop_assert_eq!(
                &par.part, &seq.part,
                "threads {} diverged (k {}, ncon {})",
                threads, k, if multiconstraint { 2 } else { 1 }
            );
        }
    }

    /// Observability is behavior-free: the part vector with the tracing
    /// facade enabled (which also switches on the worker pool's
    /// per-worker span emission) is byte-identical to the untraced run,
    /// for sequential and parallel thread budgets alike.
    #[test]
    fn tracing_on_vs_off_is_byte_identical(
        a in scale_free_matrix(),
        k_idx in 0usize..4,
        seed in 0u64..1000,
        multiconstraint in proptest::bool::ANY,
    ) {
        let k = [2usize, 4, 16, 64][k_idx];
        let g = Graph::from_symmetric_matrix(&a);
        for threads in [1usize, 4] {
            let cfg = GpConfig { seed, threads, ..GpConfig::default() };
            let run = || if multiconstraint {
                partition_graph_multiconstraint(&g, k, &cfg)
            } else {
                partition_graph(&g, k, &cfg)
            };
            let plain = run();
            sf2d_obs::enable();
            let traced = run();
            sf2d_obs::disable();
            // Drain the thread-local buffers so cases stay hermetic.
            let events = sf2d_obs::take_events();
            let _ = sf2d_obs::take_registry();
            prop_assert!(!events.is_empty(), "traced run recorded nothing");
            prop_assert_eq!(
                &traced.part, &plain.part,
                "tracing changed the partition (threads {}, k {})", threads, k
            );
        }
    }

    /// The nonzero-level Mondriaan partitioner honours the same contract.
    #[test]
    fn mondriaan_parallel_matches_sequential(
        a in scale_free_matrix(),
        p_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let p = [2usize, 8, 16][p_idx];
        let run = |threads: usize| {
            let cfg = MondriaanConfig { seed, threads, ..MondriaanConfig::default() };
            mondriaan(&a, p, &cfg)
        };
        let seq = run(1);
        for threads in [2usize, 4, 8] {
            let par = run(threads);
            prop_assert_eq!(par.owners(), seq.owners(), "threads {} diverged (p {})", threads, p);
        }
    }
}
