//! Hypergraph structure, the column-net model, contraction, and net-split
//! subhypergraphs for recursive bisection.

use sf2d_graph::CsrMatrix;

/// A hypergraph: vertices, nets (hyperedges), and the pin relation stored
/// both net-major and vertex-major.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    /// Net pointers into `pins` (`nnets + 1`).
    pub nptr: Vec<usize>,
    /// Net-major pin lists (vertex ids).
    pub pins: Vec<u32>,
    /// Vertex pointers into `vnets` (`nv + 1`).
    pub vptr: Vec<usize>,
    /// Vertex-major net lists (net ids).
    pub vnets: Vec<u32>,
    /// Vertex weights (single constraint — the paper's HP runs balance nnz).
    pub vwgt: Vec<i64>,
    /// Net weights (cost of cutting the net).
    pub nwgt: Vec<i64>,
}

impl Hypergraph {
    /// Number of vertices.
    #[inline]
    pub fn nv(&self) -> usize {
        self.vptr.len() - 1
    }

    /// Number of nets.
    #[inline]
    pub fn nnets(&self) -> usize {
        self.nptr.len() - 1
    }

    /// Pins of net `n`.
    #[inline]
    pub fn net_pins(&self, n: usize) -> &[u32] {
        &self.pins[self.nptr[n]..self.nptr[n + 1]]
    }

    /// Nets of vertex `v`.
    #[inline]
    pub fn vertex_nets(&self, v: usize) -> &[u32] {
        &self.vnets[self.vptr[v]..self.vptr[v + 1]]
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> i64 {
        self.vwgt.iter().sum()
    }

    /// Builds the **column-net model** of a square matrix: vertex `i` is row
    /// `i` (weight = row nnz, the SpMV work), net `j` connects `{j} union {i : a_ij != 0}`. For a 1D row distribution whose vector follows the rows,
    /// the connectivity−1 of net `j` is exactly the number of remote parts
    /// `x_j` must be expanded to — the paper's reason HP "accurately
    /// models communication volume".
    ///
    /// Single-pin nets (isolated diagonal-only columns) are dropped; they
    /// can never be cut.
    pub fn column_net_model(a: &CsrMatrix) -> Hypergraph {
        assert_eq!(
            a.nrows(),
            a.ncols(),
            "column-net model needs a square matrix"
        );
        let n = a.nrows();

        // Build nets from the transpose pattern: net j = column j's rows.
        let at = a.transpose();
        let mut nptr = Vec::with_capacity(n + 1);
        let mut pins: Vec<u32> = Vec::with_capacity(a.nnz() + n);
        nptr.push(0usize);
        let mut kept_nets = 0usize;
        let mut scratch: Vec<u32> = Vec::new();
        for j in 0..n {
            scratch.clear();
            let (rows, _) = at.row(j);
            let mut has_self = false;
            for &i in rows {
                scratch.push(i);
                if i as usize == j {
                    has_self = true;
                }
            }
            if !has_self {
                scratch.push(j as u32);
                scratch.sort_unstable();
            }
            if scratch.len() >= 2 {
                pins.extend_from_slice(&scratch);
                nptr.push(pins.len());
                kept_nets += 1;
            }
        }
        let _ = kept_nets;

        let vwgt = (0..n).map(|i| a.row_nnz(i).max(1) as i64).collect();
        let nwgt = vec![1i64; nptr.len() - 1];
        let (vptr, vnets) = invert_pins(n, &nptr, &pins);
        Hypergraph {
            nptr,
            pins,
            vptr,
            vnets,
            vwgt,
            nwgt,
        }
    }

    /// Builds a hypergraph from explicit net-major pin lists.
    ///
    /// `net_pins[n]` lists the (deduplicated) vertices of net `n`; nets
    /// with fewer than 2 pins are dropped. Used by the Mondriaan
    /// partitioner to build row- and column-split hypergraphs of nonzero
    /// subsets.
    pub fn from_pins(nv: usize, net_pins: &[Vec<u32>], vwgt: Vec<i64>) -> Hypergraph {
        assert_eq!(vwgt.len(), nv);
        let mut nptr = vec![0usize];
        let mut pins: Vec<u32> = Vec::new();
        let mut nwgt: Vec<i64> = Vec::new();
        for np in net_pins {
            debug_assert!(np.iter().all(|&v| (v as usize) < nv));
            if np.len() >= 2 {
                pins.extend_from_slice(np);
                nptr.push(pins.len());
                nwgt.push(1);
            }
        }
        let (vptr, vnets) = invert_pins(nv, &nptr, &pins);
        Hypergraph {
            nptr,
            pins,
            vptr,
            vnets,
            vwgt,
            nwgt,
        }
    }

    /// Contracts along a matching (`mate[v]` = partner or `u32::MAX`).
    /// Returns the coarse hypergraph and the fine→coarse map. Nets reduced
    /// to fewer than 2 distinct pins are dropped; duplicate pins merge.
    pub fn contract(&self, mate: &[u32]) -> (Hypergraph, Vec<u32>) {
        let nv = self.nv();
        let mut cmap = vec![u32::MAX; nv];
        let mut cnv = 0u32;
        for v in 0..nv {
            if cmap[v] != u32::MAX {
                continue;
            }
            cmap[v] = cnv;
            let m = mate[v];
            if m != u32::MAX {
                cmap[m as usize] = cnv;
            }
            cnv += 1;
        }
        let cnv = cnv as usize;

        let mut cvwgt = vec![0i64; cnv];
        for v in 0..nv {
            cvwgt[cmap[v] as usize] += self.vwgt[v];
        }

        let mut nptr = vec![0usize];
        let mut pins: Vec<u32> = Vec::with_capacity(self.pins.len());
        let mut nwgt: Vec<i64> = Vec::new();
        let mut stamp = vec![u32::MAX; cnv];
        for net in 0..self.nnets() {
            let start = pins.len();
            for &p in self.net_pins(net) {
                let cp = cmap[p as usize];
                if stamp[cp as usize] != net as u32 {
                    stamp[cp as usize] = net as u32;
                    pins.push(cp);
                }
            }
            if pins.len() - start >= 2 {
                nptr.push(pins.len());
                nwgt.push(self.nwgt[net]);
            } else {
                pins.truncate(start);
            }
        }

        let (vptr, vnets) = invert_pins(cnv, &nptr, &pins);
        (
            Hypergraph {
                nptr,
                pins,
                vptr,
                vnets,
                vwgt: cvwgt,
                nwgt,
            },
            cmap,
        )
    }

    /// Vertex-induced subhypergraph with **net splitting**: nets restricted
    /// to the kept vertices, dropped when fewer than 2 pins remain. With
    /// net splitting, the sum of bisection cuts down the RB tree equals the
    /// k-way connectivity−1 objective.
    pub fn subhypergraph(&self, keep: &[u32]) -> Hypergraph {
        let mut newid = vec![u32::MAX; self.nv()];
        for (new, &old) in keep.iter().enumerate() {
            newid[old as usize] = new as u32;
        }
        let mut nptr = vec![0usize];
        let mut pins: Vec<u32> = Vec::new();
        let mut nwgt: Vec<i64> = Vec::new();
        for net in 0..self.nnets() {
            let start = pins.len();
            for &p in self.net_pins(net) {
                let np = newid[p as usize];
                if np != u32::MAX {
                    pins.push(np);
                }
            }
            if pins.len() - start >= 2 {
                nptr.push(pins.len());
                nwgt.push(self.nwgt[net]);
            } else {
                pins.truncate(start);
            }
        }
        let vwgt = keep.iter().map(|&v| self.vwgt[v as usize]).collect();
        let (vptr, vnets) = invert_pins(keep.len(), &nptr, &pins);
        Hypergraph {
            nptr,
            pins,
            vptr,
            vnets,
            vwgt,
            nwgt,
        }
    }

    /// Connectivity−1 of a k-way partition: `Σ_net w_n (λ_n − 1)` where
    /// `λ_n` is the number of parts net `n` touches.
    pub fn connectivity_minus_one(&self, part: &[u32], k: usize) -> i64 {
        let mut mark = vec![u32::MAX; k];
        let mut total = 0i64;
        for net in 0..self.nnets() {
            let mut lambda = 0i64;
            for &p in self.net_pins(net) {
                let q = part[p as usize] as usize;
                if mark[q] != net as u32 {
                    mark[q] = net as u32;
                    lambda += 1;
                }
            }
            total += self.nwgt[net] * (lambda - 1).max(0);
        }
        total
    }
}

/// Builds the vertex-major pin lists from the net-major ones.
fn invert_pins(nv: usize, nptr: &[usize], pins: &[u32]) -> (Vec<usize>, Vec<u32>) {
    let mut vptr = vec![0usize; nv + 1];
    for &p in pins {
        vptr[p as usize + 1] += 1;
    }
    for i in 0..nv {
        vptr[i + 1] += vptr[i];
    }
    let mut vnets = vec![0u32; pins.len()];
    let mut next = vptr.clone();
    for net in 0..nptr.len() - 1 {
        for &p in &pins[nptr[net]..nptr[net + 1]] {
            vnets[next[p as usize]] = net as u32;
            next[p as usize] += 1;
        }
    }
    (vptr, vnets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_graph::CooMatrix;

    fn path_matrix(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push_sym(i as u32, (i + 1) as u32, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn column_net_model_of_path() {
        let a = path_matrix(4);
        let h = Hypergraph::column_net_model(&a);
        assert_eq!(h.nv(), 4);
        assert_eq!(h.nnets(), 4);
        // Net 0 = {0 (self), 1}; net 1 = {0, 1 (self), 2}.
        assert_eq!(h.net_pins(0), &[0, 1]);
        assert_eq!(h.net_pins(1), &[0, 1, 2]);
        // Vertex-major inverse is consistent.
        assert_eq!(h.vertex_nets(0), &[0, 1]);
        assert_eq!(h.vwgt, vec![1, 2, 2, 1]);
    }

    #[test]
    fn connectivity_equals_comm_volume_for_1d() {
        // For a bisection of the path at the midpoint, x_1 must reach part 1
        // and x_2 part 0: volume 2 = connectivity-1 sum.
        let a = path_matrix(4);
        let h = Hypergraph::column_net_model(&a);
        let part = vec![0u32, 0, 1, 1];
        assert_eq!(h.connectivity_minus_one(&part, 2), 2);
    }

    #[test]
    fn contract_merges_pins_and_drops_trivial_nets() {
        let a = path_matrix(4);
        let h = Hypergraph::column_net_model(&a);
        // Match (0,1) and (2,3).
        let (c, cmap) = h.contract(&[1, 0, 3, 2]);
        assert_eq!(cmap, vec![0, 0, 1, 1]);
        assert_eq!(c.nv(), 2);
        // Nets 0 ({0,1}) collapses to single pin -> dropped. Nets 1 and 2
        // ({0,1,2}, {1,2,3}) become {0,1}.
        assert_eq!(c.nnets(), 2);
        assert_eq!(c.vwgt, vec![3, 3]);
    }

    #[test]
    fn subhypergraph_splits_nets() {
        let a = path_matrix(5);
        let h = Hypergraph::column_net_model(&a);
        let s = h.subhypergraph(&[0, 1, 2]);
        assert_eq!(s.nv(), 3);
        // All surviving nets have >= 2 pins among {0,1,2}.
        for n in 0..s.nnets() {
            assert!(s.net_pins(n).len() >= 2);
            assert!(s.net_pins(n).iter().all(|&p| p < 3));
        }
    }

    #[test]
    fn from_pins_drops_single_pin_nets() {
        let h = Hypergraph::from_pins(
            4,
            &[vec![0, 1], vec![2], vec![1, 2, 3], vec![]],
            vec![1, 2, 3, 4],
        );
        assert_eq!(h.nnets(), 2); // {0,1} and {1,2,3} survive
        assert_eq!(h.net_pins(0), &[0, 1]);
        assert_eq!(h.net_pins(1), &[1, 2, 3]);
        assert_eq!(h.vertex_nets(1), &[0, 1]);
        assert_eq!(h.total_vwgt(), 10);
    }

    #[test]
    fn trivial_partition_has_zero_connectivity() {
        let a = path_matrix(6);
        let h = Hypergraph::column_net_model(&a);
        assert_eq!(h.connectivity_minus_one(&[0; 6], 1), 0);
    }
}
