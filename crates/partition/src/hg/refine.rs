//! Hypergraph bisection: random-balanced initial assignment plus FM
//! refinement on the cut-net objective.
//!
//! For bisections the connectivity−1 metric reduces to the cut-net metric
//! (`λ ∈ {1, 2}`), so FM gains use net pin counts per side. Pin counts are
//! updated exactly on every move (O(nets of v)); per-neighbour gain updates
//! walk pin lists and are skipped for nets above a size threshold, leaving
//! gains slightly stale around hub columns — the heap re-checks gains on
//! pop, so staleness costs quality, never correctness.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use super::hypergraph::Hypergraph;

/// Nets larger than this skip per-pin gain propagation.
const MAX_UPDATE_NET: usize = 128;

/// Cut-net weight of a bisection.
pub fn cut_of(h: &Hypergraph, side: &[u8]) -> i64 {
    let mut cut = 0i64;
    for n in 0..h.nnets() {
        let pins = h.net_pins(n);
        let first = side[pins[0] as usize];
        if pins.iter().any(|&p| side[p as usize] != first) {
            cut += h.nwgt[n];
        }
    }
    cut
}

/// Side weights.
pub fn side_weights(h: &Hypergraph, side: &[u8]) -> [i64; 2] {
    let mut w = [0i64; 2];
    for v in 0..h.nv() {
        w[side[v] as usize] += h.vwgt[v];
    }
    w
}

/// Random balanced initial bisection: shuffle vertices, fill side 0 to its
/// target weight.
pub fn random_bisection(h: &Hypergraph, target0: f64, rng: &mut ChaCha8Rng) -> Vec<u8> {
    let nv = h.nv();
    let mut order: Vec<u32> = (0..nv as u32).collect();
    order.shuffle(rng);
    let mut side = vec![1u8; nv];
    let mut w0 = 0i64;
    for &v in &order {
        if (w0 as f64) >= target0 {
            break;
        }
        side[v as usize] = 0;
        w0 += h.vwgt[v as usize];
    }
    side
}

/// FM refinement of a bisection; returns the final cut.
pub fn fm_refine(
    h: &Hypergraph,
    side: &mut [u8],
    targets: [f64; 2],
    ub: f64,
    max_passes: usize,
) -> i64 {
    let nv = h.nv();
    if nv == 0 {
        return 0;
    }

    // Pin counts per net per side.
    let mut pc = vec![[0i32; 2]; h.nnets()];
    for n in 0..h.nnets() {
        for &p in h.net_pins(n) {
            pc[n][side[p as usize] as usize] += 1;
        }
    }
    let mut cut: i64 = (0..h.nnets())
        .filter(|&n| pc[n][0] > 0 && pc[n][1] > 0)
        .map(|n| h.nwgt[n])
        .sum();
    let mut w = side_weights(h, side);
    let maxvw: i64 = h.vwgt.iter().copied().max().unwrap_or(0);

    // Gain array maintained (approximately, for huge nets) across moves.
    let mut gain = vec![0i64; nv];
    let compute_gain = |v: usize, side: &[u8], pc: &[[i32; 2]]| -> i64 {
        let s = side[v] as usize;
        let t = 1 - s;
        let mut g = 0i64;
        for &n in h.vertex_nets(v) {
            let n = n as usize;
            if pc[n][s] == 1 {
                g += h.nwgt[n]; // net becomes uncut
            }
            if pc[n][t] == 0 {
                g -= h.nwgt[n]; // net becomes cut
            }
        }
        g
    };

    let viol = |w: &[i64; 2]| -> f64 {
        let mut v = 0.0;
        for s in 0..2 {
            let cap = ub * targets[s];
            if cap > 0.0 && w[s] as f64 > cap {
                v += (w[s] as f64 - cap) / cap;
            }
        }
        v
    };

    for _pass in 0..max_passes {
        let pass_start_cut = cut;
        for v in 0..nv {
            gain[v] = compute_gain(v, side, &pc);
        }
        let mut heaps: [BinaryHeap<(i64, Reverse<u32>)>; 2] =
            [BinaryHeap::new(), BinaryHeap::new()];
        let mut locked = vec![false; nv];
        for v in 0..nv {
            heaps[side[v] as usize].push((gain[v], Reverse(v as u32)));
        }

        let mut log: Vec<u32> = Vec::new();
        let mut best_prefix = 0usize;
        let mut best = (viol(&w), cut);
        let max_stall = 64 + nv / 20;
        let mut stall = 0usize;

        loop {
            let mut chosen = None;
            let order = if w[0] as f64 / targets[0].max(1.0) >= w[1] as f64 / targets[1].max(1.0) {
                [0usize, 1]
            } else {
                [1, 0]
            };
            'sides: for &s in &order {
                while let Some(&(g, Reverse(v))) = heaps[s].peek() {
                    let v = v as usize;
                    if locked[v] || side[v] as usize != s || g != gain[v] {
                        heaps[s].pop();
                        continue;
                    }
                    let t = 1 - s;
                    let mut w_new = w;
                    w_new[s] -= h.vwgt[v];
                    w_new[t] += h.vwgt[v];
                    // One-vertex hill-climbing slack above the cap prevents
                    // deadlock (rollback keeps the final state feasible).
                    let within_slack = w_new[t] as f64 <= ub * targets[t] + maxvw as f64;
                    if viol(&w_new) <= viol(&w) + 1e-12 || within_slack {
                        heaps[s].pop();
                        chosen = Some(v);
                        break 'sides;
                    }
                    continue 'sides;
                }
            }
            let Some(v) = chosen else { break };

            // Exact gain at move time (cheap: nets of v), in case the stored
            // gain was stale from a skipped large-net update.
            let g_exact = compute_gain(v, side, &pc);
            let s = side[v] as usize;
            let t = 1 - s;
            w[s] -= h.vwgt[v];
            w[t] += h.vwgt[v];
            cut -= g_exact;
            side[v] = t as u8;
            locked[v] = true;
            log.push(v as u32);

            for &n in h.vertex_nets(v) {
                let n = n as usize;
                let small = h.net_pins(n).len() <= MAX_UPDATE_NET;
                // FM delta rules, applied before/after updating pin counts.
                if small {
                    if pc[n][t] == 0 {
                        for &u in h.net_pins(n) {
                            let u = u as usize;
                            if !locked[u] {
                                gain[u] += h.nwgt[n];
                                heaps[side[u] as usize].push((gain[u], Reverse(u as u32)));
                            }
                        }
                    } else if pc[n][t] == 1 {
                        for &u in h.net_pins(n) {
                            let u = u as usize;
                            if !locked[u] && side[u] as usize == t {
                                gain[u] -= h.nwgt[n];
                                heaps[t].push((gain[u], Reverse(u as u32)));
                            }
                        }
                    }
                }
                pc[n][s] -= 1;
                pc[n][t] += 1;
                if small {
                    if pc[n][s] == 0 {
                        for &u in h.net_pins(n) {
                            let u = u as usize;
                            if !locked[u] {
                                gain[u] -= h.nwgt[n];
                                heaps[side[u] as usize].push((gain[u], Reverse(u as u32)));
                            }
                        }
                    } else if pc[n][s] == 1 {
                        for &u in h.net_pins(n) {
                            let u = u as usize;
                            if !locked[u] && side[u] as usize == s {
                                gain[u] += h.nwgt[n];
                                heaps[s].push((gain[u], Reverse(u as u32)));
                            }
                        }
                    }
                }
            }

            let state = (viol(&w), cut);
            if state < best {
                best = state;
                best_prefix = log.len();
                stall = 0;
            } else {
                stall += 1;
                if stall > max_stall {
                    break;
                }
            }
        }

        // Roll back to the best prefix.
        for &v in log[best_prefix..].iter().rev() {
            let v = v as usize;
            let t = side[v] as usize;
            let s = 1 - t;
            w[t] -= h.vwgt[v];
            w[s] += h.vwgt[v];
            side[v] = s as u8;
            for &n in h.vertex_nets(v) {
                let n = n as usize;
                pc[n][t] -= 1;
                pc[n][s] += 1;
            }
        }
        cut = best.1;
        debug_assert_eq!(cut, cut_of(h, side));

        if cut >= pass_start_cut {
            break;
        }
    }
    cut
}

/// Best-of-`tries` bisection: random balanced start + FM, keep the best
/// (feasible, lowest-cut) result.
pub fn bisect(
    h: &Hypergraph,
    frac: f64,
    ub: f64,
    tries: usize,
    passes: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<u8> {
    let total = h.total_vwgt() as f64;
    let targets = [frac * total, (1.0 - frac) * total];
    let mut best: Option<(f64, i64, Vec<u8>)> = None;
    for _ in 0..tries.max(1) {
        let mut side = random_bisection(h, targets[0], rng);
        let cut = fm_refine(h, &mut side, targets, ub, passes);
        let w = side_weights(h, &side);
        let mut v = 0.0;
        for s in 0..2 {
            let cap = ub * targets[s];
            if cap > 0.0 && w[s] as f64 > cap {
                v += (w[s] as f64 - cap) / cap;
            }
        }
        if best
            .as_ref()
            .map(|(bv, bc, _)| (v, cut) < (*bv, *bc))
            .unwrap_or(true)
        {
            best = Some((v, cut, side));
        }
    }
    // `rng.gen::<u8>()` burn keeps the stream position independent of `tries`
    // short-circuits — not needed for correctness, removed for clarity.
    let _ = rng.gen::<u8>();
    best.expect("tries >= 1").2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sf2d_graph::{CooMatrix, CsrMatrix};

    fn path_hg(n: usize) -> Hypergraph {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push_sym(i as u32, (i + 1) as u32, 1.0);
        }
        Hypergraph::column_net_model(&CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn cut_counts_nets_spanning_sides() {
        let h = path_hg(4);
        // Sides 0,0,1,1: nets {0,1} uncut, {0,1,2} cut, {1,2,3} cut, {2,3} uncut.
        assert_eq!(cut_of(&h, &[0, 0, 1, 1]), 2);
        assert_eq!(cut_of(&h, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn fm_reaches_low_cut_on_path() {
        let h = path_hg(16);
        let total = h.total_vwgt() as f64;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut side = random_bisection(&h, total / 2.0, &mut rng);
        let cut = fm_refine(&h, &mut side, [total / 2.0, total / 2.0], 1.10, 8);
        // Optimal midpoint split cuts 2 nets.
        assert!(cut <= 4, "cut {cut}");
        let w = side_weights(&h, &side);
        assert!(w[0] > 0 && w[1] > 0);
    }

    #[test]
    fn bisect_is_deterministic() {
        let h = path_hg(20);
        let a = bisect(&h, 0.5, 1.05, 4, 4, &mut ChaCha8Rng::seed_from_u64(7));
        let b = bisect(&h, 0.5, 1.05, 4, 4, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn asymmetric_fraction_respected() {
        let h = path_hg(30);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let side = bisect(&h, 0.25, 1.15, 4, 4, &mut rng);
        let w = side_weights(&h, &side);
        let frac = w[0] as f64 / (w[0] + w[1]) as f64;
        assert!(frac > 0.12 && frac < 0.40, "frac {frac}");
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph {
            nptr: vec![0],
            pins: vec![],
            vptr: vec![0],
            vnets: vec![],
            vwgt: vec![],
            nwgt: vec![],
        };
        let mut side: Vec<u8> = vec![];
        assert_eq!(fm_refine(&h, &mut side, [0.0, 0.0], 1.05, 2), 0);
    }
}
