//! Greedy k-way refinement on the connectivity−1 objective.
//!
//! The hypergraph analogue of [`gp::kway`](crate::gp::kway): after
//! recursive bisection assembles a k-way partition, boundary vertices move
//! to the neighbouring part with the best positive λ−1 gain, subject to
//! the balance allowance. Pin counts are evaluated per candidate move by
//! scanning the (size-capped) nets of the vertex, so hub nets — which
//! carry no locality signal — neither cost time nor block moves.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use super::hypergraph::Hypergraph;

/// Nets larger than this are skipped during gain evaluation.
const MAX_EVAL_NET: usize = 128;

/// Refines a k-way partition in place; returns the number of moves.
pub fn kway_refine_hg(
    h: &Hypergraph,
    part: &mut [u32],
    k: usize,
    ub: f64,
    passes: usize,
    seed: u64,
) -> usize {
    let nv = h.nv();
    assert_eq!(part.len(), nv);
    if k <= 1 || nv == 0 {
        return 0;
    }

    let total: i64 = h.total_vwgt();
    let cap = ub * total as f64 / k as f64;
    let mut pw = vec![0i64; k];
    for v in 0..nv {
        pw[part[v] as usize] += h.vwgt[v];
    }

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..nv as u32).collect();
    let mut total_moves = 0usize;

    // Scratch for candidate parts (stamped).
    let mut cand_stamp = vec![u32::MAX; k];
    let mut cands: Vec<u32> = Vec::new();

    for pass in 0..passes {
        order.shuffle(&mut rng);
        let mut moves = 0usize;
        for (vi, &v) in order.iter().enumerate() {
            let v = v as usize;
            let home = part[v] as usize;
            let stamp = (pass * nv + vi) as u32;

            // Candidate parts: parts of co-pins in small nets.
            cands.clear();
            for &n in h.vertex_nets(v) {
                let pins = h.net_pins(n as usize);
                if pins.len() > MAX_EVAL_NET {
                    continue;
                }
                for &u in pins {
                    let q = part[u as usize] as usize;
                    if q != home && cand_stamp[q] != stamp {
                        cand_stamp[q] = stamp;
                        cands.push(q as u32);
                    }
                }
            }
            if cands.is_empty() {
                continue;
            }

            // Gain of moving v home -> q: for each small net of v,
            // +w if v is the net's only pin in `home` (net leaves home),
            // -w if the net has no pin in `q` yet (net enters q).
            let mut best: Option<(i64, i64, usize)> = None; // (gain, -load, q)
            for &q in &cands {
                let q = q as usize;
                if (pw[q] + h.vwgt[v]) as f64 > cap {
                    continue;
                }
                let mut gain = 0i64;
                for &n in h.vertex_nets(v) {
                    let pins = h.net_pins(n as usize);
                    if pins.len() > MAX_EVAL_NET {
                        continue;
                    }
                    let mut home_pins = 0usize;
                    let mut q_pins = 0usize;
                    for &u in pins {
                        let pu = part[u as usize] as usize;
                        if pu == home {
                            home_pins += 1;
                        } else if pu == q {
                            q_pins += 1;
                        }
                    }
                    if home_pins == 1 {
                        gain += h.nwgt[n as usize];
                    }
                    if q_pins == 0 {
                        gain -= h.nwgt[n as usize];
                    }
                }
                let cand = (gain, -pw[q], q);
                if best.map(|b| (cand.0, cand.1) > (b.0, b.1)).unwrap_or(true) {
                    best = Some(cand);
                }
            }
            if let Some((gain, _, q)) = best {
                let home_heavier = pw[home] > pw[q];
                if gain > 0 || (gain == 0 && home_heavier) {
                    pw[home] -= h.vwgt[v];
                    pw[q] += h.vwgt[v];
                    part[v] = q as u32;
                    moves += 1;
                }
            }
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::grid_2d;

    fn grid_hg(n: usize) -> Hypergraph {
        Hypergraph::column_net_model(&grid_2d(n, n))
    }

    #[test]
    fn improves_a_scrambled_partition() {
        let h = grid_hg(10);
        let mut part: Vec<u32> = (0..100).map(|v| ((v * 13 + 5) % 4) as u32).collect();
        let before = h.connectivity_minus_one(&part, 4);
        let moves = kway_refine_hg(&h, &mut part, 4, 1.2, 6, 1);
        let after = h.connectivity_minus_one(&part, 4);
        assert!(moves > 0);
        assert!(after < before / 2, "lambda-1 {before} -> {after}");
        // Balance respected.
        let total: i64 = h.total_vwgt();
        let mut pw = vec![0i64; 4];
        for (v, &p) in part.iter().enumerate() {
            pw[p as usize] += h.vwgt[v];
        }
        for w in pw {
            assert!((w as f64) <= 1.21 * total as f64 / 4.0, "{w}");
        }
    }

    #[test]
    fn no_degradation_on_good_partition() {
        let h = grid_hg(8);
        // Vertical halves: near-optimal bisection of the column-net model.
        let mut part: Vec<u32> = (0..64).map(|v| u32::from(v % 8 >= 4)).collect();
        let before = h.connectivity_minus_one(&part, 2);
        kway_refine_hg(&h, &mut part, 2, 1.1, 4, 2);
        let after = h.connectivity_minus_one(&part, 2);
        assert!(after <= before, "{before} -> {after}");
    }

    #[test]
    fn deterministic() {
        let h = grid_hg(9);
        let init: Vec<u32> = (0..81).map(|v| ((v * 7) % 3) as u32).collect();
        let mut a = init.clone();
        let mut b = init;
        kway_refine_hg(&h, &mut a, 3, 1.15, 4, 9);
        kway_refine_hg(&h, &mut b, 3, 1.15, 4, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn single_part_is_noop() {
        let h = grid_hg(4);
        let mut part = vec![0u32; 16];
        assert_eq!(kway_refine_hg(&h, &mut part, 1, 1.1, 4, 0), 0);
    }
}
