//! Heavy-connectivity matching for hypergraph coarsening.
//!
//! Two vertices score highly when they share many (small) nets — the
//! inner-product heuristic PaToH calls HCM. Huge nets (hub columns in a
//! scale-free matrix) are skipped during scoring: they connect everything
//! to everything and carry no locality signal, and walking their pin lists
//! for every vertex would cost `O(max_degree · nnz)`.

use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;

use super::hypergraph::Hypergraph;

/// Nets with more pins than this are ignored while scoring matches.
pub const MAX_SCORED_NET: usize = 96;

/// Computes a heavy-connectivity matching; same contract as the graph
/// version (`mate[v]` = partner or `u32::MAX`, symmetric).
pub fn heavy_connectivity_matching(
    h: &Hypergraph,
    max_vwgt: i64,
    rng: &mut ChaCha8Rng,
) -> Vec<u32> {
    let nv = h.nv();
    let mut order: Vec<u32> = (0..nv as u32).collect();
    order.shuffle(rng);

    let mut mate = vec![u32::MAX; nv];
    // Scoring scratch: score per candidate with a visit stamp.
    let mut score = vec![0.0f32; nv];
    let mut stamp = vec![u32::MAX; nv];
    let mut touched: Vec<u32> = Vec::new();

    for (round, &v) in order.iter().enumerate() {
        let v = v as usize;
        if mate[v] != u32::MAX {
            continue;
        }
        touched.clear();
        for &net in h.vertex_nets(v) {
            let pins = h.net_pins(net as usize);
            if pins.len() > MAX_SCORED_NET {
                continue;
            }
            // 1/(|net|-1) weighting rewards sharing *exclusive* nets.
            let w = 1.0 / (pins.len() as f32 - 1.0);
            for &u in pins {
                let u = u as usize;
                if u == v || mate[u] != u32::MAX {
                    continue;
                }
                if h.vwgt[v] + h.vwgt[u] > max_vwgt {
                    continue;
                }
                if stamp[u] != round as u32 {
                    stamp[u] = round as u32;
                    score[u] = 0.0;
                    touched.push(u as u32);
                }
                score[u] += w;
            }
        }
        // Best-scoring candidate, ties toward smaller id for determinism.
        let mut best: Option<(f32, u32)> = None;
        for &u in &touched {
            let s = score[u as usize];
            match best {
                Some((bs, bu)) if (s, std::cmp::Reverse(u)) <= (bs, std::cmp::Reverse(bu)) => {}
                _ => best = Some((s, u)),
            }
        }
        if let Some((_, u)) = best {
            mate[v] = u;
            mate[u as usize] = v as u32;
        }
    }
    mate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sf2d_graph::{CooMatrix, CsrMatrix};

    fn hg_of(edges: &[(u32, u32)], n: usize) -> Hypergraph {
        let mut coo = CooMatrix::new(n, n);
        for &(u, v) in edges {
            coo.push_sym(u, v, 1.0);
        }
        Hypergraph::column_net_model(&CsrMatrix::from_coo(&coo))
    }

    #[test]
    fn matching_is_symmetric() {
        let h = hg_of(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mate = heavy_connectivity_matching(&h, i64::MAX, &mut rng);
        for v in 0..4usize {
            if mate[v] != u32::MAX {
                assert_eq!(mate[mate[v] as usize], v as u32);
            }
        }
    }

    #[test]
    fn strongly_connected_pairs_matched() {
        // Vertices 0,1 share three nets (columns 0, 1 and 2 all contain
        // both); 2 and 3 are attached loosely.
        let h = hg_of(&[(0, 1), (0, 2), (1, 2), (2, 3)], 4);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mate = heavy_connectivity_matching(&h, i64::MAX, &mut rng);
        // The triangle vertices have the tight connectivity; at least two of
        // {0,1,2} must be matched together.
        let matched_in_triangle = (0..3)
            .filter(|&v| mate[v] != u32::MAX && mate[v] < 3)
            .count();
        assert!(matched_in_triangle >= 2, "mate {mate:?}");
    }

    #[test]
    fn weight_cap_respected() {
        let h = hg_of(&[(0, 1)], 2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Each vertex weight 2 (diag-free path: row nnz 1 -> max(1)=1)...
        // cap 1 forbids all matches.
        let mate = heavy_connectivity_matching(&h, 1, &mut rng);
        assert_eq!(mate, vec![u32::MAX, u32::MAX]);
    }

    #[test]
    fn deterministic() {
        let h = hg_of(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)], 5);
        let m1 = heavy_connectivity_matching(&h, i64::MAX, &mut ChaCha8Rng::seed_from_u64(9));
        let m2 = heavy_connectivity_matching(&h, i64::MAX, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(m1, m2);
    }
}
