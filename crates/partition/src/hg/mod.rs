//! Multilevel hypergraph partitioning on the column-net model — the Zoltan
//! PHG / PaToH stand-in used for the paper's 1D-HP / 2D-HP layouts.

pub mod coarsen;
pub mod hypergraph;
pub mod kway;
pub mod refine;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sf2d_graph::CsrMatrix;

use crate::types::Partition;
use coarsen::heavy_connectivity_matching;
use hypergraph::Hypergraph;

/// Tuning knobs for the hypergraph partitioner.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct HgConfig {
    /// RNG seed.
    pub seed: u64,
    /// Per-bisection imbalance allowance.
    pub ub: f64,
    /// Coarsening stops at this many vertices.
    pub coarsen_to: usize,
    /// Bisection attempts at the coarsest level.
    pub init_tries: usize,
    /// FM passes per level.
    pub fm_passes: usize,
}

impl Default for HgConfig {
    fn default() -> Self {
        HgConfig {
            seed: 0,
            ub: 1.05,
            coarsen_to: 160,
            init_tries: 6,
            fm_passes: 4,
        }
    }
}

/// Partitions the rows of a square matrix into `k` parts by multilevel
/// recursive bisection of its column-net hypergraph, balancing row nonzero
/// counts and minimizing connectivity−1 (= 1D expand communication volume).
pub fn partition_hypergraph_matrix(a: &CsrMatrix, k: usize, cfg: &HgConfig) -> Partition {
    assert!(k >= 1);
    let h = Hypergraph::column_net_model(a);
    let n = a.nrows();
    let mut part = vec![0u32; n];
    if k > 1 {
        let ids: Vec<u32> = (0..n as u32).collect();
        rec(&h, &ids, k, 0, cfg, &mut part, 1);
        // Direct k-way polish on the connectivity-1 objective (repairs the
        // cut and imbalance that compound across bisection levels).
        kway::kway_refine_hg(&h, &mut part, k, cfg.ub.max(1.03), 2, cfg.seed);
    }
    Partition::new(part, k)
}

fn rec(
    h: &Hypergraph,
    map: &[u32],
    k: usize,
    offset: u32,
    cfg: &HgConfig,
    out: &mut [u32],
    salt: u64,
) {
    if k == 1 {
        for &orig in map {
            out[orig as usize] = offset;
        }
        return;
    }
    let k1 = k / 2;
    let k2 = k - k1;
    let side = multilevel_bisect(h, k1 as f64 / k as f64, cfg, salt);

    let mut keep0 = Vec::new();
    let mut keep1 = Vec::new();
    for (v, &s) in side.iter().enumerate() {
        if s == 0 {
            keep0.push(v as u32);
        } else {
            keep1.push(v as u32);
        }
    }
    for (keep, kk, off, salt2) in [
        (keep0, k1, offset, 2 * salt),
        (keep1, k2, offset + k1 as u32, 2 * salt + 1),
    ] {
        if kk == 1 || keep.is_empty() {
            for &local in &keep {
                out[map[local as usize] as usize] = off;
            }
        } else {
            let sub = h.subhypergraph(&keep);
            let orig_map: Vec<u32> = keep.iter().map(|&l| map[l as usize]).collect();
            rec(&sub, &orig_map, kk, off, cfg, out, salt2);
        }
    }
}

/// Multilevel bisection of a hypergraph (public: the Mondriaan
/// partitioner reuses it on its row- and column-split hypergraphs).
pub fn multilevel_bisect(h: &Hypergraph, frac: f64, cfg: &HgConfig, salt: u64) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15));
    let total = h.total_vwgt() as f64;
    let targets = [frac * total, (1.0 - frac) * total];
    let max_vwgt = ((targets[0].min(targets[1]) / 4.0).max(1.0)) as i64;

    let mut levels: Vec<(Hypergraph, Vec<u32>)> = Vec::new();
    let mut cur = h.clone();
    while cur.nv() > cfg.coarsen_to {
        let mate = heavy_connectivity_matching(&cur, max_vwgt, &mut rng);
        let matched = mate.iter().filter(|&&m| m != u32::MAX).count();
        if (matched as f64) < 0.1 * cur.nv() as f64 {
            break;
        }
        let (coarse, cmap) = cur.contract(&mate);
        if coarse.nv() as f64 > 0.97 * cur.nv() as f64 {
            break;
        }
        levels.push((cur, cmap));
        cur = coarse;
    }

    let mut side = refine::bisect(&cur, frac, cfg.ub, cfg.init_tries, cfg.fm_passes, &mut rng);

    while let Some((finer, cmap)) = levels.pop() {
        let mut fine = vec![0u8; finer.nv()];
        for v in 0..finer.nv() {
            fine[v] = side[cmap[v] as usize];
        }
        let ftot = finer.total_vwgt() as f64;
        let ftargets = [frac * ftot, (1.0 - frac) * ftot];
        refine::fm_refine(&finer, &mut fine, ftargets, cfg.ub, cfg.fm_passes);
        side = fine;
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::{grid_2d, rmat, RmatConfig};
    use sf2d_graph::Graph;

    #[test]
    fn partitions_grid_with_low_connectivity() {
        let a = grid_2d(16, 16);
        let p = partition_hypergraph_matrix(&a, 4, &HgConfig::default());
        assert_eq!(p.k, 4);
        let counts = p.part_weights(&vec![1i64; 256]);
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        // Connectivity-1 should be near the boundary size (~3*16) and far
        // below random (~everything).
        let h = Hypergraph::column_net_model(&a);
        let conn = h.connectivity_minus_one(&p.part, 4);
        assert!(conn < 260, "connectivity {conn}");
    }

    #[test]
    fn hp_beats_random_on_scale_free() {
        let a = rmat(&RmatConfig::graph500(9), 4);
        let p = partition_hypergraph_matrix(&a, 8, &HgConfig::default());
        let h = Hypergraph::column_net_model(&a);
        let conn_hp = h.connectivity_minus_one(&p.part, 8);
        let rand = crate::dist::MatrixDist::random_1d(a.nrows(), 8, 5);
        let conn_rand = h.connectivity_minus_one(rand.rpart(), 8);
        assert!(conn_hp < conn_rand, "hp {conn_hp} vs random {conn_rand}");
    }

    #[test]
    fn balances_nonzeros() {
        let a = rmat(&RmatConfig::graph500(9), 6);
        let g = Graph::from_symmetric_matrix(&a);
        let p = partition_hypergraph_matrix(&a, 4, &HgConfig::default());
        let imb = p.imbalance(&g.vwgt);
        assert!(imb < 1.6, "imbalance {imb}");
    }

    #[test]
    fn deterministic() {
        let a = rmat(&RmatConfig::graph500(8), 2);
        let cfg = HgConfig::default();
        assert_eq!(
            partition_hypergraph_matrix(&a, 4, &cfg).part,
            partition_hypergraph_matrix(&a, 4, &cfg).part
        );
    }

    #[test]
    fn connectivity_matches_partition_comm_volume() {
        // The λ−1 objective equals Partition::comm_volume on the same graph
        // when nets include the diagonal (they do in the column-net model of
        // an adjacency matrix with empty diagonal? comm_volume counts
        // distinct remote parts per vertex neighbourhood — same thing).
        let a = grid_2d(8, 8);
        let g = Graph::from_symmetric_matrix(&a);
        let p = partition_hypergraph_matrix(&a, 4, &HgConfig::default());
        let h = Hypergraph::column_net_model(&a);
        assert_eq!(
            h.connectivity_minus_one(&p.part, 4) as usize,
            p.comm_volume(&g)
        );
    }
}
