//! Matrix data layouts — the paper's Algorithms 1 and 2.
//!
//! A [`MatrixDist`] answers the two questions SpMV distribution needs:
//! *who owns vector entry `k`* and *who owns nonzero `a_ij`*. Both are
//! derived from a single 1D part vector `rpart` over the rows/columns:
//!
//! * **1D layouts** own nonzero `a_ij` at `rpart[i]` (row-wise);
//! * **2D layouts** push `rpart` through Algorithm 2's Cartesian map:
//!   nonzero `a_ij` goes to process `(φ(rpart[i]), ψ(rpart[j]))` of a
//!   `pr × pc` grid, with `φ(k) = k mod pr` and `ψ(k) = ⌊k/pr⌋`, numbered
//!   column-major: `rank = φ(rpart[i]) + ψ(rpart[j]) · pr`.
//!
//! Vector entries always live at `rpart[k]` — the paper's requirement that
//! `x` and `y` share one distribution so no remap communication is needed.
//!
//! The paper's §3.1 notes φ and ψ may be interchanged, yielding a second
//! candidate distribution to evaluate; [`DistMode::TwoD`]'s `swapped` flag
//! implements that ablation.

use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sf2d_graph::Vtx;

use crate::types::Partition;

/// How nonzeros are mapped to ranks given the 1D part vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DistMode {
    /// Row-wise: `a_ij` owned by `rpart[i]`.
    OneD,
    /// Algorithm 2's Cartesian map onto a `pr x pc` process grid.
    TwoD {
        /// Process-grid rows.
        pr: u32,
        /// Process-grid columns.
        pc: u32,
        /// Interchange φ and ψ (the paper's §3.1 alternative).
        swapped: bool,
    },
}

/// A complete data layout: vector ownership plus nonzero ownership.
///
/// ```
/// use sf2d_partition::{MatrixDist, Partition};
///
/// // Algorithm 1+2 on a 2x3 grid: part q's diagonal block lands on rank q.
/// let part = Partition::new(vec![0, 1, 2, 3, 4, 5], 6);
/// let d = MatrixDist::cartesian_2d(&part, 2, 3, false);
/// assert_eq!(d.nonzero_owner(4, 4), d.vector_owner(4));
/// // Off-diagonal nonzero (row in part 5, column in part 0):
/// // phi(5) = 5 % 2 = 1, psi(0) = 0 / 2 = 0 -> rank 1 + 0*2 = 1.
/// assert_eq!(d.nonzero_owner(5, 0), 1);
/// assert_eq!(d.message_bound(), 2 + 3 - 2);
/// ```
#[derive(Debug, Clone)]
pub struct MatrixDist {
    /// `rpart[k]` = part (process) of row/column/vector entry `k`.
    rpart: Arc<Vec<u32>>,
    /// Number of processes `p` (for 2D, `p = pr * pc`).
    p: usize,
    /// Nonzero mapping mode.
    mode: DistMode,
}

/// Picks the process-grid shape for `p` ranks: the factorization
/// `pr * pc = p` with `pr` the largest divisor `<= sqrt(p)` (so the grid is
/// as square as possible — what the ScaLAPACK-style analysis in §2.3
/// assumes).
pub fn grid_shape(p: usize) -> (u32, u32) {
    assert!(p >= 1);
    let mut pr = (p as f64).sqrt() as usize;
    while pr > 1 && !p.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr.max(1) as u32, (p / pr.max(1)) as u32)
}

impl MatrixDist {
    /// 1D block layout: `n/p` consecutive rows per process (the Epetra
    /// default the paper calls 1D-Block).
    pub fn block_1d(n: usize, p: usize) -> MatrixDist {
        MatrixDist {
            rpart: Arc::new(block_rpart(n, p)),
            p,
            mode: DistMode::OneD,
        }
    }

    /// 1D random layout: each row assigned to a uniformly random process
    /// (§2.4's randomization), deterministic in `seed`.
    pub fn random_1d(n: usize, p: usize, seed: u64) -> MatrixDist {
        let rpart = sf2d_obs::trace_span!(
            sf2d_obs::PhaseKind::Partition,
            "dist:random-rpart",
            random_rpart(n, p, seed)
        );
        MatrixDist {
            rpart: Arc::new(rpart),
            p,
            mode: DistMode::OneD,
        }
    }

    /// 1D layout from a partitioner's output (1D-GP / 1D-HP).
    pub fn from_partition_1d(part: &Partition) -> MatrixDist {
        MatrixDist {
            rpart: Arc::new(part.part.clone()),
            p: part.k,
            mode: DistMode::OneD,
        }
    }

    /// 2D block layout (Yoo et al. \[34\]): Algorithm 2 applied to a block
    /// `rpart` — the "stripes" of the paper's Figure 2.
    pub fn block_2d(n: usize, pr: u32, pc: u32) -> MatrixDist {
        let p = (pr * pc) as usize;
        MatrixDist {
            rpart: Arc::new(block_rpart(n, p)),
            p,
            mode: DistMode::TwoD {
                pr,
                pc,
                swapped: false,
            },
        }
    }

    /// 2D random layout: Algorithm 2 applied to a random `rpart`.
    pub fn random_2d(n: usize, pr: u32, pc: u32, seed: u64) -> MatrixDist {
        let p = (pr * pc) as usize;
        let rpart = sf2d_obs::trace_span!(
            sf2d_obs::PhaseKind::Partition,
            "dist:random-rpart",
            random_rpart(n, p, seed)
        );
        MatrixDist {
            rpart: Arc::new(rpart),
            p,
            mode: DistMode::TwoD {
                pr,
                pc,
                swapped: false,
            },
        }
    }

    /// **The paper's contribution** (Algorithms 1 + 2): 2D Cartesian layout
    /// driven by a graph/hypergraph partition (2D-GP / 2D-HP).
    ///
    /// # Panics
    /// Panics if `part.k != pr * pc`.
    pub fn cartesian_2d(part: &Partition, pr: u32, pc: u32, swapped: bool) -> MatrixDist {
        assert_eq!(
            part.k,
            (pr * pc) as usize,
            "partition must have pr*pc parts"
        );
        sf2d_obs::trace_span!(
            sf2d_obs::PhaseKind::Partition,
            "dist:cartesian-2d",
            MatrixDist {
                rpart: Arc::new(part.part.clone()),
                p: part.k,
                mode: DistMode::TwoD { pr, pc, swapped },
            }
        )
    }

    /// Number of processes.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.p
    }

    /// Number of rows/columns covered.
    #[inline]
    pub fn n(&self) -> usize {
        self.rpart.len()
    }

    /// The layout mode.
    #[inline]
    pub fn mode(&self) -> DistMode {
        self.mode
    }

    /// The underlying 1D part vector.
    #[inline]
    pub fn rpart(&self) -> &[u32] {
        &self.rpart
    }

    /// Owner of vector entry `k` (domain and range distributions coincide).
    ///
    /// For the swapped-(φ, ψ) variant the part→rank labelling changes (the
    /// grid is effectively transposed to `pc x pr`), so vector ownership
    /// follows the same relabelling — this keeps every diagonal nonzero
    /// `a_kk` co-resident with `x_k`, as Algorithm 2 guarantees for the
    /// unswapped map.
    #[inline]
    pub fn vector_owner(&self, k: Vtx) -> u32 {
        let q = self.rpart[k as usize];
        match self.mode {
            DistMode::OneD | DistMode::TwoD { swapped: false, .. } => q,
            DistMode::TwoD {
                pr,
                pc,
                swapped: true,
            } => psi(q, pr, pc) + phi(q, pr) * pc,
        }
    }

    /// Owner of nonzero `a_ij` — Algorithm 1 line 6.
    #[inline]
    pub fn nonzero_owner(&self, i: Vtx, j: Vtx) -> u32 {
        match self.mode {
            DistMode::OneD => self.rpart[i as usize],
            DistMode::TwoD { pr, pc, swapped } => {
                if swapped {
                    // Interchanged map: grid transposed to pc rows x pr cols.
                    let ri = psi(self.rpart[i as usize], pr, pc);
                    let cj = phi(self.rpart[j as usize], pr);
                    ri + cj * pc
                } else {
                    let ri = phi(self.rpart[i as usize], pr);
                    let cj = psi(self.rpart[j as usize], pr, pc);
                    // Column-major process numbering, as in Algorithm 1.
                    ri + cj * pr
                }
            }
        }
    }

    /// Returns the variant with φ and ψ interchanged (identity for 1D).
    /// The paper suggests evaluating both and keeping the better one.
    pub fn interchanged(&self) -> MatrixDist {
        let mode = match self.mode {
            DistMode::OneD => DistMode::OneD,
            DistMode::TwoD { pr, pc, swapped } => DistMode::TwoD {
                pr,
                pc,
                swapped: !swapped,
            },
        };
        MatrixDist {
            rpart: Arc::clone(&self.rpart),
            p: self.p,
            mode,
        }
    }

    /// Upper bound on messages per process: `p - 1` for 1D,
    /// `pr + pc - 2` for 2D (§3.2).
    pub fn message_bound(&self) -> usize {
        match self.mode {
            DistMode::OneD => self.p - 1,
            DistMode::TwoD { pr, pc, .. } => (pr + pc) as usize - 2,
        }
    }
}

/// Algorithm 2 line 2: process-grid row of part `k`.
#[inline]
fn phi(k: u32, pr: u32) -> u32 {
    k % pr
}

/// Algorithm 2 line 4: process-grid column of part `k`.
#[inline]
fn psi(k: u32, pr: u32, _pc: u32) -> u32 {
    k / pr
}

/// Contiguous block part vector: first `n mod p` parts get one extra row.
fn block_rpart(n: usize, p: usize) -> Vec<u32> {
    assert!(p >= 1 && p <= u32::MAX as usize);
    let base = n / p;
    let extra = n % p;
    let mut rpart = Vec::with_capacity(n);
    for part in 0..p {
        let size = base + usize::from(part < extra);
        rpart.extend(std::iter::repeat_n(part as u32, size));
    }
    rpart
}

/// Random-but-balanced part vector: a shuffled round-robin assignment, so
/// row counts per part differ by at most one while placement is uniform.
fn random_rpart(n: usize, p: usize, seed: u64) -> Vec<u32> {
    assert!(p >= 1 && p <= u32::MAX as usize);
    let mut rpart: Vec<u32> = (0..n).map(|i| (i % p) as u32).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    rpart.shuffle(&mut rng);
    rpart
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_prefers_square() {
        assert_eq!(grid_shape(64), (8, 8));
        assert_eq!(grid_shape(256), (16, 16));
        assert_eq!(grid_shape(12), (3, 4));
        assert_eq!(grid_shape(2), (1, 2));
        assert_eq!(grid_shape(1), (1, 1));
        assert_eq!(grid_shape(7), (1, 7)); // prime
    }

    #[test]
    fn block_rpart_is_contiguous_and_balanced() {
        let r = block_rpart(10, 3);
        assert_eq!(r, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn random_rpart_is_balanced() {
        let r = random_rpart(1000, 7, 3);
        let mut counts = vec![0usize; 7];
        for &p in &r {
            counts[p as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "{counts:?}");
        // And deterministic.
        assert_eq!(r, random_rpart(1000, 7, 3));
        assert_ne!(r, random_rpart(1000, 7, 4));
    }

    #[test]
    fn one_d_owner_is_row_part() {
        let d = MatrixDist::block_1d(8, 2);
        assert_eq!(d.nonzero_owner(1, 7), 0);
        assert_eq!(d.nonzero_owner(7, 1), 1);
        assert_eq!(d.vector_owner(5), 1);
        assert_eq!(d.message_bound(), 1);
    }

    #[test]
    fn algorithm2_mapping_matches_paper() {
        // 6 parts on a 2x3 grid; rpart[k] = k for 6 rows, so part ids map
        // directly: phi = k mod 2, psi = k div 2.
        let part = Partition::new(vec![0, 1, 2, 3, 4, 5], 6);
        let d = MatrixDist::cartesian_2d(&part, 2, 3, false);
        // Nonzero (i=0, j=0): part (0,0) -> rank 0.
        assert_eq!(d.nonzero_owner(0, 0), 0);
        // (i=1, j=0): phi(1)=1, psi(0)=0 -> rank 1 (column-major).
        assert_eq!(d.nonzero_owner(1, 0), 1);
        // (i=0, j=1): phi(0)=0, psi(1)=0 -> rank 0.
        assert_eq!(d.nonzero_owner(0, 1), 0);
        // (i=0, j=2): psi(2)=1 -> rank 0 + 1*2 = 2.
        assert_eq!(d.nonzero_owner(0, 2), 2);
        // (i=5, j=4): phi(5)=1, psi(4)=2 -> 1 + 2*2 = 5.
        assert_eq!(d.nonzero_owner(5, 4), 5);
        assert_eq!(d.message_bound(), 3); // 2 + 3 - 2
    }

    #[test]
    fn diagonal_nonzeros_stay_with_vector_owner() {
        // Key property for SpMV: a_kk lives at the rank that owns x_k,
        // because phi(q) + psi(q)*pr enumerates exactly rank q.
        let part = Partition::new(vec![3, 1, 4, 0, 2, 5, 3, 1], 6);
        let d = MatrixDist::cartesian_2d(&part, 2, 3, false);
        for k in 0..8u32 {
            assert_eq!(d.nonzero_owner(k, k), d.vector_owner(k));
        }
    }

    #[test]
    fn swapped_variant_also_keeps_diagonal_home() {
        let part = Partition::new(vec![3, 1, 4, 0, 2, 5], 6);
        let d = MatrixDist::cartesian_2d(&part, 2, 3, true);
        for k in 0..6u32 {
            assert_eq!(d.nonzero_owner(k, k), d.vector_owner(k));
        }
        // And interchanging twice is the identity.
        let d2 = d.interchanged().interchanged();
        assert_eq!(d2.nonzero_owner(1, 4), d.nonzero_owner(1, 4));
    }

    #[test]
    fn two_d_block_equals_cartesian_on_block_rpart() {
        let n = 24;
        let (pr, pc) = (2u32, 3u32);
        let d = MatrixDist::block_2d(n, pr, pc);
        let part = Partition::new(block_rpart(n, 6), 6);
        let c = MatrixDist::cartesian_2d(&part, pr, pc, false);
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                assert_eq!(d.nonzero_owner(i, j), c.nonzero_owner(i, j));
            }
        }
    }

    #[test]
    fn two_d_row_of_owner_fixed_by_i_column_by_j() {
        // Every nonzero in matrix-row i lands in the same process-grid row,
        // and every nonzero in matrix-column j in the same grid column —
        // this is what caps messages at pr + pc - 2.
        let part = Partition::new((0..60u32).map(|v| v % 6).collect(), 6);
        let d = MatrixDist::cartesian_2d(&part, 2, 3, false);
        for i in 0..60u32 {
            let row0 = d.nonzero_owner(i, 0) % 2;
            for j in 0..60u32 {
                assert_eq!(d.nonzero_owner(i, j) % 2, row0);
            }
        }
        for j in 0..60u32 {
            let col0 = d.nonzero_owner(0, j) / 2;
            for i in 0..60u32 {
                assert_eq!(d.nonzero_owner(i, j) / 2, col0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "pr*pc parts")]
    fn wrong_grid_size_rejected() {
        let part = Partition::new(vec![0, 1], 2);
        MatrixDist::cartesian_2d(&part, 2, 3, false);
    }
}
