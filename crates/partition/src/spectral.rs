//! Spectral recursive bisection — a third partitioner family, for
//! comparison against the multilevel graph and hypergraph partitioners.
//!
//! Classic spectral bisection (Fiedler, Pothen–Simon–Liou): split at the
//! weighted median of the Fiedler vector (the eigenvector of the second
//! smallest eigenvalue of the combinatorial Laplacian `L = D − A`), then
//! clean up with FM. The Fiedler vector is computed by power iteration on
//! the spectrally shifted operator `cI − L` with the constant vector
//! deflated — no external eigensolver needed, keeping this crate free of a
//! dependency cycle with `sf2d-eigen`.
//!
//! Spectral methods were the historical alternative to multilevel KL/FM;
//! on scale-free graphs they struggle (hubs dominate the spectrum), which
//! the `ablations` data quantifies.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use sf2d_graph::Graph;

use crate::gp::initpart::side_weights;
use crate::gp::refine::fm_refine;
use crate::gp::work::{WorkGraph, MAX_CON};
use crate::types::Partition;

/// Tuning knobs for spectral recursive bisection.
#[derive(Debug, Clone, Copy)]
pub struct SpectralConfig {
    /// RNG seed for the power-iteration start vector.
    pub seed: u64,
    /// Power-iteration steps per bisection.
    pub iters: usize,
    /// Imbalance allowance handed to the FM cleanup.
    pub ub: f64,
    /// FM passes after the median split.
    pub fm_passes: usize,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            seed: 0,
            iters: 120,
            ub: 1.05,
            fm_passes: 4,
        }
    }
}

/// Partitions a graph into `k` parts by spectral recursive bisection.
pub fn partition_spectral(g: &Graph, k: usize, cfg: &SpectralConfig) -> Partition {
    assert!(k >= 1);
    let wg = WorkGraph::from_graph(g);
    let mut part = vec![0u32; wg.nv()];
    if k > 1 {
        let ids: Vec<u32> = (0..wg.nv() as u32).collect();
        rec(&wg, &ids, k, 0, cfg, &mut part, 1);
    }
    Partition::new(part, k)
}

fn rec(
    wg: &WorkGraph,
    map: &[u32],
    k: usize,
    offset: u32,
    cfg: &SpectralConfig,
    out: &mut [u32],
    salt: u64,
) {
    if k == 1 {
        for &orig in map {
            out[orig as usize] = offset;
        }
        return;
    }
    let k1 = k / 2;
    let k2 = k - k1;
    let side = spectral_bisection(wg, k1 as f64 / k as f64, cfg, salt);

    let (mut keep0, mut keep1) = (Vec::new(), Vec::new());
    for (v, &s) in side.iter().enumerate() {
        if s == 0 {
            keep0.push(v as u32);
        } else {
            keep1.push(v as u32);
        }
    }
    for (keep, kk, off, s2) in [
        (keep0, k1, offset, 2 * salt),
        (keep1, k2, offset + k1 as u32, 2 * salt + 1),
    ] {
        if kk == 1 || keep.is_empty() {
            for &local in &keep {
                out[map[local as usize] as usize] = off;
            }
        } else {
            let (sub, submap) = wg.subgraph(&keep);
            let orig: Vec<u32> = submap.iter().map(|&l| map[l as usize]).collect();
            rec(&sub, &orig, kk, off, cfg, out, s2);
        }
    }
}

/// One spectral bisection: Fiedler vector → weighted split at the target
/// fraction → FM cleanup.
pub fn spectral_bisection(wg: &WorkGraph, frac: f64, cfg: &SpectralConfig, salt: u64) -> Vec<u8> {
    let nv = wg.nv();
    if nv <= 1 {
        return vec![0; nv];
    }
    let fiedler = fiedler_vector(wg, cfg, salt);

    // Weighted split: sort by Fiedler value, fill side 0 to the target.
    let tot = wg.total_wgt();
    let target0 = frac * tot[0] as f64;
    let mut order: Vec<u32> = (0..nv as u32).collect();
    order.sort_by(|&a, &b| fiedler[a as usize].total_cmp(&fiedler[b as usize]));
    let mut side = vec![1u8; nv];
    let mut acc = 0i64;
    for &v in &order {
        if (acc as f64) >= target0 {
            break;
        }
        side[v as usize] = 0;
        acc += wg.vw(v as usize, 0);
    }

    let mut targets = [[0.0f64; MAX_CON]; 2];
    for c in 0..wg.ncon {
        targets[0][c] = frac * tot[c] as f64;
        targets[1][c] = (1.0 - frac) * tot[c] as f64;
    }
    fm_refine(
        wg,
        &mut side,
        &targets,
        cfg.ub,
        cfg.fm_passes,
        &sf2d_par::Par::seq(),
    );
    // Guard: FM cannot leave a side empty unless the graph is degenerate.
    let w = side_weights(wg, &side);
    if w[0][0] == 0 || w[1][0] == 0 {
        for (i, s) in side.iter_mut().enumerate() {
            *s = u8::from(i >= nv / 2);
        }
    }
    side
}

/// Approximates the Fiedler vector by power iteration on `cI − L` with the
/// (weighted) constant vector deflated.
fn fiedler_vector(wg: &WorkGraph, cfg: &SpectralConfig, salt: u64) -> Vec<f64> {
    let nv = wg.nv();
    // Weighted degrees d_v = sum of incident edge weights.
    let deg: Vec<f64> = (0..nv)
        .map(|v| wg.neighbors(v).1.iter().map(|&w| w as f64).sum())
        .collect();
    let c = 2.0 * deg.iter().fold(0.0f64, |m, &d| m.max(d)) + 1.0;

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15));
    let mut x: Vec<f64> = (0..nv).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut y = vec![0.0f64; nv];

    for _ in 0..cfg.iters {
        // Deflate the constant vector (eigenvector of eigenvalue 0 of L).
        let mean = x.iter().sum::<f64>() / nv as f64;
        for xv in &mut x {
            *xv -= mean;
        }
        // y = (cI - L) x = (c - d_v) x_v + sum_u w_uv x_u.
        for v in 0..nv {
            let (nbrs, wgts) = wg.neighbors(v);
            let mut acc = (c - deg[v]) * x[v];
            for (&u, &w) in nbrs.iter().zip(wgts) {
                acc += w as f64 * x[u as usize];
            }
            y[v] = acc;
        }
        // Normalize.
        let nrm = y.iter().map(|t| t * t).sum::<f64>().sqrt();
        if nrm < 1e-300 {
            break;
        }
        for (xv, yv) in x.iter_mut().zip(&y) {
            *xv = yv / nrm;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf2d_gen::{grid_2d, rmat, RmatConfig};
    use sf2d_graph::Graph;

    #[test]
    fn fiedler_splits_a_path_at_the_middle() {
        // Path: Fiedler vector is monotone, so the split is contiguous.
        let edges: Vec<(u32, u32)> = (0..29).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(30, &edges);
        let wg = WorkGraph::from_graph(&g);
        let side = spectral_bisection(&wg, 0.5, &SpectralConfig::default(), 1);
        // The cut should be small (1 for a perfect contiguous split; FM may
        // keep it there).
        let cut = crate::gp::initpart::cut_of(&wg, &side);
        assert!(cut <= 3, "cut {cut}");
    }

    #[test]
    fn partitions_grid_reasonably() {
        let a = grid_2d(16, 16);
        let g = Graph::from_symmetric_matrix(&a);
        let p = partition_spectral(&g, 4, &SpectralConfig::default());
        assert_eq!(p.k, 4);
        let counts = p.part_weights(&vec![1i64; 256]);
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        // Spectral on a grid is decent: well under random cut (~75% of 480).
        assert!(p.edge_cut(&g) < 150.0, "cut {}", p.edge_cut(&g));
    }

    #[test]
    fn valid_on_scale_free_input() {
        let a = rmat(&RmatConfig::graph500(8), 3);
        let g = Graph::from_symmetric_matrix(&a);
        let p = partition_spectral(&g, 8, &SpectralConfig::default());
        assert!(p.part.iter().all(|&x| x < 8));
        assert!(
            p.imbalance(&g.vwgt) < 2.0,
            "imbalance {}",
            p.imbalance(&g.vwgt)
        );
    }

    #[test]
    fn deterministic() {
        let a = grid_2d(10, 10);
        let g = Graph::from_symmetric_matrix(&a);
        let cfg = SpectralConfig::default();
        assert_eq!(
            partition_spectral(&g, 4, &cfg).part,
            partition_spectral(&g, 4, &cfg).part
        );
    }
}
