//! Fiduccia–Mattheyses boundary refinement for bisections.
//!
//! Each pass moves vertices one at a time, always taking the most
//! profitable *allowed* move (one that does not worsen balance violation
//! beyond the tolerance), with hill-climbing: moves continue past local
//! minima and the best prefix seen is kept. Passes repeat until a pass
//! yields no improvement.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use sf2d_par::Par;

use super::initpart::{side_weights, violation};
use super::tune::{EDGE_GRAIN, VERTEX_GRAIN};
use super::work::{WorkGraph, MAX_CON};

/// Refines `side` in place. `targets[s][c]` are ideal side weights, `ub` the
/// imbalance allowance, `max_passes` the pass budget. `par` fans the
/// gain/boundary initialization and the starting cut sum out across
/// threads (sequential handles are identical); the move loop itself is
/// inherently sequential and byte-identical either way.
///
/// Returns the final cut weight and the number of moves kept.
pub fn fm_refine(
    wg: &WorkGraph,
    side: &mut [u8],
    targets: &[[f64; MAX_CON]; 2],
    ub: f64,
    max_passes: usize,
    par: &Par,
) -> (i64, usize) {
    let nv = wg.nv();
    if nv == 0 {
        return (0, 0);
    }
    let ncon = wg.ncon;

    // Per-vertex internal/external edge weights maintained incrementally.
    // The initialization is a pure per-vertex scan of the (fixed) starting
    // sides, so the parallel fill is bit-identical to the sequential loop.
    let mut ext = vec![0i64; nv];
    let mut int = vec![0i64; nv];
    {
        let side_ro: &[u8] = side;
        par.fill2(&mut ext, &mut int, EDGE_GRAIN, |v| {
            let (nbrs, wgts) = wg.neighbors(v);
            let mut e = 0i64;
            let mut i = 0i64;
            for (&u, &w) in nbrs.iter().zip(wgts) {
                if side_ro[v] == side_ro[u as usize] {
                    i += w;
                } else {
                    e += w;
                }
            }
            (e, i)
        });
    }
    // Exact integer partial sums merged through a fixed-shape tree fold:
    // associative, so any chunking yields the same total.
    let mut cut: i64 = par
        .reduce(
            nv,
            VERTEX_GRAIN,
            |_, range| range.map(|v| ext[v]).sum::<i64>(),
            |a, b| a + b,
        )
        .unwrap_or(0)
        / 2;
    let mut moves_kept = 0usize;
    let mut w = side_weights(wg, side);

    // Hill-climbing slack: a move may overshoot the balance cap by up to one
    // (largest) vertex weight. Without it FM deadlocks whenever every single
    // move crosses the cap; the best-prefix rollback below guarantees the
    // final state is never less feasible than the best state visited.
    let mut maxvw = [0i64; MAX_CON];
    for v in 0..nv {
        for c in 0..ncon {
            maxvw[c] = maxvw[c].max(wg.vw(v, c));
        }
    }

    for _pass in 0..max_passes {
        let cut_at_pass_start = cut;

        // Lazy max-heaps of candidate moves, one per source side.
        // Collect-then-heapify is O(n) where per-vertex pushes are
        // O(n log n); entries are distinct, so the pop order (hence the
        // result) is unchanged.
        let mut entries: [Vec<(i64, Reverse<u32>)>; 2] = [
            Vec::with_capacity(nv / 2 + 1),
            Vec::with_capacity(nv / 2 + 1),
        ];
        let mut locked = vec![false; nv];
        for v in 0..nv {
            entries[side[v] as usize].push((ext[v] - int[v], Reverse(v as u32)));
        }
        let [e0, e1] = entries;
        let mut heaps: [BinaryHeap<(i64, Reverse<u32>)>; 2] =
            [BinaryHeap::from(e0), BinaryHeap::from(e1)];

        // Move log for rollback to the best prefix.
        let mut log: Vec<u32> = Vec::new();
        let mut best_prefix = 0usize;
        let mut best_cut = cut;
        let mut best_viol = violation(&w, targets, ncon, ub);
        // Cap non-improving streak to bound pass cost on huge graphs.
        let max_stall = 64 + nv / 20;
        let mut stall = 0usize;

        loop {
            // Select the best fresh, allowed move across both heaps.
            let mut chosen: Option<usize> = None;
            // Try sides in order of current violation pressure: move from
            // the more overloaded side first.
            let over0 = (0..ncon)
                .map(|c| w[0][c] as f64 / targets[0][c].max(1.0))
                .fold(0.0f64, f64::max);
            let over1 = (0..ncon)
                .map(|c| w[1][c] as f64 / targets[1][c].max(1.0))
                .fold(0.0f64, f64::max);
            let order = if over0 >= over1 { [0usize, 1] } else { [1, 0] };
            'sides: for &s in &order {
                while let Some(&(g, Reverse(v))) = heaps[s].peek() {
                    let v = v as usize;
                    if locked[v] || side[v] as usize != s || g != ext[v] - int[v] {
                        heaps[s].pop();
                        continue; // stale entry
                    }
                    // Allowed if the move does not worsen the violation, or
                    // stays within the one-vertex hill-climbing slack above
                    // the cap.
                    let t = 1 - s;
                    let mut w_new = w;
                    for c in 0..ncon {
                        let vw = wg.vw(v, c);
                        w_new[s][c] -= vw;
                        w_new[t][c] += vw;
                    }
                    let viol_old = violation(&w, targets, ncon, ub);
                    let viol_new = violation(&w_new, targets, ncon, ub);
                    let within_slack = (0..ncon)
                        .all(|c| w_new[t][c] as f64 <= ub * targets[t][c] + maxvw[c] as f64);
                    if viol_new <= viol_old + 1e-12 || within_slack {
                        heaps[s].pop();
                        chosen = Some(v);
                        break 'sides;
                    }
                    // Top move not allowed: try the other side.
                    continue 'sides;
                }
            }
            let Some(v) = chosen else { break };

            // Apply the move.
            let s = side[v] as usize;
            let t = 1 - s;
            for c in 0..ncon {
                let vw = wg.vw(v, c);
                w[s][c] -= vw;
                w[t][c] += vw;
            }
            cut -= ext[v] - int[v];
            side[v] = t as u8;
            std::mem::swap(&mut ext[v], &mut int[v]);
            locked[v] = true;
            log.push(v as u32);

            let (nbrs, wgts) = wg.neighbors(v);
            for (&u, &ew) in nbrs.iter().zip(wgts) {
                let u = u as usize;
                if side[u] as usize == t {
                    // Was external to u, now internal.
                    ext[u] -= ew;
                    int[u] += ew;
                } else {
                    int[u] -= ew;
                    ext[u] += ew;
                }
                if !locked[u] {
                    heaps[side[u] as usize].push((ext[u] - int[u], Reverse(u as u32)));
                }
            }

            let viol_now = violation(&w, targets, ncon, ub);
            if (viol_now, cut as f64) < (best_viol, best_cut as f64) {
                best_viol = viol_now;
                best_cut = cut;
                best_prefix = log.len();
                stall = 0;
            } else {
                stall += 1;
                if stall > max_stall {
                    break;
                }
            }
        }

        // Roll back past the best prefix.
        for &v in log[best_prefix..].iter().rev() {
            let v = v as usize;
            let t = side[v] as usize;
            let s = 1 - t;
            for c in 0..ncon {
                let vw = wg.vw(v, c);
                w[t][c] -= vw;
                w[s][c] += vw;
            }
            cut -= ext[v] - int[v];
            side[v] = s as u8;
            std::mem::swap(&mut ext[v], &mut int[v]);
            let (nbrs, wgts) = wg.neighbors(v);
            for (&u, &ew) in nbrs.iter().zip(wgts) {
                let u = u as usize;
                if side[u] as usize == s {
                    ext[u] -= ew;
                    int[u] += ew;
                } else {
                    int[u] -= ew;
                    ext[u] += ew;
                }
            }
        }
        debug_assert_eq!(cut, best_cut);
        moves_kept += best_prefix;

        if cut >= cut_at_pass_start {
            break; // no progress this pass
        }
    }
    (cut, moves_kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gp::initpart::cut_of;
    use sf2d_gen::grid_2d;
    use sf2d_graph::Graph;

    fn even_targets(wg: &WorkGraph) -> [[f64; MAX_CON]; 2] {
        let tot = wg.total_wgt();
        let mut t = [[0.0; MAX_CON]; 2];
        for c in 0..wg.ncon {
            t[0][c] = tot[c] as f64 / 2.0;
            t[1][c] = tot[c] as f64 / 2.0;
        }
        t
    }

    #[test]
    fn improves_a_bad_bisection_of_a_path() {
        // Path 0-1-2-3-4-5 with alternating sides: cut 5. Optimal split has
        // cut 1.
        let edges: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(6, &edges);
        let wg = WorkGraph::from_graph(&g);
        let mut side = vec![0u8, 1, 0, 1, 0, 1];
        let t = even_targets(&wg);
        let (cut, moves) = fm_refine(&wg, &mut side, &t, 1.30, 8, &Par::seq());
        assert_eq!(cut, cut_of(&wg, &side));
        assert!(cut <= 2, "cut {cut} side {side:?}");
        assert!(moves > 0);
    }

    #[test]
    fn respects_balance() {
        let g = Graph::from_symmetric_matrix(&grid_2d(8, 8));
        let wg = WorkGraph::from_graph(&g);
        // Start with a vertical split (already balanced).
        let mut side: Vec<u8> = (0..64).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect();
        let t = even_targets(&wg);
        fm_refine(&wg, &mut side, &t, 1.05, 8, &Par::seq());
        let w = side_weights(&wg, &side);
        let tot = wg.total_wgt()[0] as f64;
        for s in 0..2 {
            assert!((w[s][0] as f64) < 1.08 * tot / 2.0, "{w:?}");
        }
    }

    #[test]
    fn does_not_worsen_an_optimal_cut() {
        // Two triangles joined by one edge, optimally bisected.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let wg = WorkGraph::from_graph(&g);
        let mut side = vec![0u8, 0, 0, 1, 1, 1];
        let (cut, _) = fm_refine(&wg, &mut side, &even_targets(&wg), 1.05, 4, &Par::seq());
        assert_eq!(cut, 1);
        assert_eq!(side, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(0, &[]);
        let wg = WorkGraph::from_graph(&g);
        let mut side: Vec<u8> = vec![];
        assert_eq!(
            fm_refine(&wg, &mut side, &[[0.0; 2]; 2], 1.05, 2, &Par::seq()),
            (0, 0)
        );
    }

    #[test]
    fn reduces_cut_on_grid_from_random_start() {
        let g = Graph::from_symmetric_matrix(&grid_2d(10, 10));
        let wg = WorkGraph::from_graph(&g);
        // Deterministic pseudo-random start.
        let mut side: Vec<u8> = (0..100)
            .map(|v| ((v * 2654435761usize) >> 16) as u8 & 1)
            .collect();
        let before = cut_of(&wg, &side);
        let (after, _) = fm_refine(&wg, &mut side, &even_targets(&wg), 1.10, 10, &Par::seq());
        assert!(after < before, "no improvement: {before} -> {after}");
        assert_eq!(after, cut_of(&wg, &side));
    }

    #[test]
    fn parallel_init_is_byte_identical() {
        // 100x100 grid: above EDGE_GRAIN so the init fills really chunk.
        let g = Graph::from_symmetric_matrix(&grid_2d(100, 100));
        let wg = WorkGraph::from_graph(&g);
        let init: Vec<u8> = (0..10_000)
            .map(|v| ((v * 2654435761usize) >> 13) as u8 & 1)
            .collect();
        let mut seq = init.clone();
        let seq_out = fm_refine(&wg, &mut seq, &even_targets(&wg), 1.10, 6, &Par::seq());
        for threads in [2, 4, 8] {
            let pool = sf2d_par::Pool::new(threads);
            for h in [Par::new(threads, None), Par::new(threads, Some(&pool))] {
                let mut par = init.clone();
                let par_out = fm_refine(&wg, &mut par, &even_targets(&wg), 1.10, 6, &h);
                assert_eq!(par_out, seq_out, "threads {threads}");
                assert_eq!(par, seq, "threads {threads}");
            }
        }
    }
}
