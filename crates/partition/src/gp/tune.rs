//! Granularity constants for the parallel partitioner, in one place so
//! the tuning story is auditable (see DESIGN.md §"Parallel partitioning").
//!
//! Each `*_GRAIN` is the number of loop items that justifies one thread's
//! worth of dispatch for that loop's per-item cost class — the
//! [`sf2d_par::Par::threads_for`] gate runs a loop over `work` items on
//! `min(threads, work / grain + 1)` threads. Grains only change wall
//! clock, never bytes: every gated loop is order-independent by
//! construction, so these numbers are free to be retuned per host.

/// Per-vertex loops that walk an adjacency row each item (matching
/// candidate selection, FM gain init, coarse-row construction). An R-MAT
/// row averages ~16 nonzeros, so 4096 vertices ≈ 64k edge touches —
/// comfortably above a pool wake (~5 µs) even on fast hosts.
pub const EDGE_GRAIN: usize = 4096;

/// Flat per-vertex loops that do O(1) work per item (projection through
/// `cmap`, matching accept scan, part-weight sums).
pub const VERTEX_GRAIN: usize = 16384;

/// Round cap for the mutual local-max matching. The handshaking scheme
/// matches every pointer 2-cycle per round, so rounds needed grow like
/// log(nv) on scale-free inputs; 24 covers everything the harness runs
/// with slack, and the loop also exits as soon as a round matches nothing.
pub const MATCH_ROUNDS_MAX: usize = 24;

/// Don't fork a gp bisection's children unless both subgraphs have at
/// least this many vertices. Raised from 512: with intra-bisection
/// parallelism a small subtree no longer needs its own fork to keep
/// threads busy, and each fork costs a scoped-thread spawn plus colder
/// caches for the subtree that migrates.
pub const GP_FORK_CUTOFF: usize = 2048;

/// Mondriaan fork cutoff in nonzeros (each child re-bisects a hypergraph
/// over its nonzero subset; below this the serial hypergraph work is too
/// small to amortize the fork).
pub const MONDRIAAN_FORK_CUTOFF: usize = 16384;
